"""Tests for the system and cache-design configurations (Tables II-IV)."""

import pytest

from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
    footprint_tag_array_for_capacity,
)
from repro.config.system import DramChannelConfig, SramCacheConfig, SystemConfig
from repro.utils.units import parse_size


class TestSystemConfig:
    def test_defaults_match_table_iii(self):
        config = SystemConfig()
        config.validate()
        assert config.num_cores == 16
        assert config.l2.size_bytes == 4 * 1024 ** 2
        assert config.l2.associativity == 16
        assert config.l1d.size_bytes == 64 * 1024
        assert config.stacked_dram.num_channels == 4
        assert config.stacked_dram.bus_width_bits == 128
        assert config.stacked_dram.row_buffer_bytes == 8 * 1024
        assert config.offchip_dram.frequency_mhz == 800.0
        assert config.stacked_dram.t_cas == 11
        assert config.stacked_dram.t_rc == 39
        assert config.stacked_dram.t_faw == 24

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0).validate()

    def test_sram_cache_geometry(self):
        cache = SramCacheConfig(name="L2", size="4MB", associativity=16)
        cache.validate()
        assert cache.num_blocks == 65536
        assert cache.num_sets == 4096

    def test_sram_cache_bad_block_size(self):
        with pytest.raises(ValueError):
            SramCacheConfig(name="x", size="1KB", associativity=1,
                            block_size=48).validate()

    def test_sram_cache_indivisible_assoc(self):
        with pytest.raises(ValueError):
            SramCacheConfig(name="x", size="1KB", associativity=3).validate()

    def test_dram_channel_transfer_cycles(self):
        channel = SystemConfig().stacked_dram
        # 128-bit DDR bus moves 32 bytes per cycle.
        assert channel.transfer_cycles(64) == 2
        assert channel.transfer_cycles(32) == 1
        assert channel.transfer_cycles(0) == 0

    def test_dram_channel_validation(self):
        with pytest.raises(ValueError):
            DramChannelConfig(name="bad", frequency_mhz=800, num_channels=0,
                              banks_per_rank=8, row_buffer_bytes=8192,
                              bus_width_bits=64).validate()


class TestUnisonCacheConfig:
    def test_default_organization_matches_paper(self):
        config = UnisonCacheConfig(capacity="1GB")
        config.validate()
        assert config.page_data_bytes == 960
        assert config.page_total_bytes == 968
        assert config.pages_per_row == 8
        assert config.sets_per_row == 2
        # Table II: 120-124 blocks per 8KB row; the 960B point gives 120.
        assert config.data_blocks_per_row == 120
        assert config.num_sets == (parse_size("1GB") // 8192) * 2

    def test_1984_byte_pages(self):
        config = UnisonCacheConfig(capacity="1GB", blocks_per_page=31)
        config.validate()
        assert config.page_data_bytes == 1984
        assert config.pages_per_row == 4
        assert config.data_blocks_per_row == 124

    def test_in_dram_tag_fraction_within_table_ii_range(self):
        config = UnisonCacheConfig(capacity="8GB")
        # Table II: 3.1% - 6.2% of DRAM spent on tags/overhead.
        assert 0.02 <= config.in_dram_tag_fraction <= 0.07

    def test_way_predictor_storage(self):
        config = UnisonCacheConfig(capacity="1GB")
        assert config.way_predictor_bytes == 1024

    def test_32_way_sets_span_rows(self):
        config = UnisonCacheConfig(capacity=64 * 8192, associativity=32)
        config.validate()
        assert config.sets_per_row == 0
        assert config.num_sets == config.num_pages // 32

    def test_capacity_must_be_whole_rows(self):
        with pytest.raises(ValueError):
            UnisonCacheConfig(capacity=8192 + 1).validate()

    def test_page_bigger_than_row_rejected(self):
        with pytest.raises(ValueError):
            UnisonCacheConfig(capacity="1GB", blocks_per_page=255).validate()


class TestAlloyCacheConfig:
    def test_default_organization_matches_paper(self):
        config = AlloyCacheConfig(capacity="1GB")
        config.validate()
        assert config.tad_bytes == 72
        # Table II / Section IV-C.3: 112 blocks per 8KB row.
        assert config.blocks_per_row == 112

    def test_in_dram_tag_overhead_is_an_eighth(self):
        config = AlloyCacheConfig(capacity="8GB")
        # Table II: in-DRAM tag size at 8GB is ~1GB (12.5% of capacity).
        assert config.in_dram_tag_bytes == pytest.approx(
            config.capacity_bytes / 9, rel=0.02
        )

    def test_capacity_must_be_whole_rows(self):
        with pytest.raises(ValueError):
            AlloyCacheConfig(capacity=100).validate()


class TestFootprintCacheConfig:
    def test_default_organization_matches_paper(self):
        config = FootprintCacheConfig(capacity="1GB")
        config.validate()
        assert config.blocks_per_page == 32
        assert config.blocks_per_row == 128
        assert config.num_pages == parse_size("1GB") // 2048

    def test_page_not_multiple_of_block_rejected(self):
        with pytest.raises(ValueError):
            FootprintCacheConfig(page_size=1000).validate()


class TestFootprintTagArray:
    @pytest.mark.parametrize("capacity,tag_mb,latency", [
        ("128MB", 0.8, 6),
        ("256MB", 1.58, 9),
        ("512MB", 3.12, 11),
        ("1GB", 6.2, 16),
        ("2GB", 12.5, 25),
        ("4GB", 25.0, 36),
        ("8GB", 50.0, 48),
    ])
    def test_table_iv_values(self, capacity, tag_mb, latency):
        model = footprint_tag_array_for_capacity(capacity)
        assert model.tag_megabytes == pytest.approx(tag_mb, rel=1e-6)
        assert model.lookup_latency_cycles == latency

    def test_interpolated_capacity(self):
        model = footprint_tag_array_for_capacity(parse_size("768MB"))
        assert 11 <= model.lookup_latency_cycles <= 16
        assert 3 * 1024 ** 2 < model.tag_bytes < 7 * 1024 ** 2

    def test_latency_monotonic_in_capacity(self):
        capacities = ["128MB", "256MB", "512MB", "1GB", "2GB", "4GB", "8GB"]
        latencies = [footprint_tag_array_for_capacity(c).lookup_latency_cycles
                     for c in capacities]
        assert latencies == sorted(latencies)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            footprint_tag_array_for_capacity(0)
