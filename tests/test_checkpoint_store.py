"""Tests for the on-disk warm-state checkpoint store."""

from __future__ import annotations

import os

import pytest

from repro.sampling.checkpoints import (
    CheckpointStore,
    checkpoints_enabled,
    design_token,
    trace_token,
)
from repro.sampling.runner import WindowedSampler
from repro.sampling.windows import SamplingConfig
from repro.sim.experiment import ExperimentConfig
from repro.sim.factory import make_design
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile


@pytest.fixture
def profile():
    return WorkloadProfile(
        name="ckpt-tiny", working_set="2MB", num_code_regions=32,
        footprint_density=0.5, footprint_noise=0.05, singleton_fraction=0.1,
        temporal_reuse=0.2, region_zipf_alpha=0.6, pc_locality_run=3,
        write_fraction=0.25, l2_mpki=20.0,
    )


@pytest.fixture
def config():
    return ExperimentConfig(scale=4096, num_accesses=20_000, num_cores=2,
                            seed=9)


@pytest.fixture
def sampling():
    return SamplingConfig(window_accesses=1000, warmup_accesses=500,
                          checkpoint_accesses=4000, min_windows=2,
                          max_windows=3)


def _key(store, *, trace="t", design="d", start=0, stop=100):
    return store.key(trace=trace, design=design, capacity="1GB", scale=512,
                     num_cores=4, associativity=None, checkpoint_start=start,
                     checkpoint_stop=stop)


class TestStore:
    def test_round_trip(self, tmp_path, profile):
        store = CheckpointStore(tmp_path / "ckpt")
        design = make_design("unison", "1GB", scale=4096, num_cores=2)
        trace = SyntheticWorkload(profile, num_cores=2, seed=1).generate(2000)
        design.warm_up(trace)
        snapshot = design.snapshot_state()

        key = _key(store)
        assert store.load(key) is None  # cold
        assert store.save(key, snapshot)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.design_name == "unison"
        assert set(loaded.state) == set(snapshot.state)

        # Restoring the loaded snapshot reproduces the exact same replay.
        fresh = make_design("unison", "1GB", scale=4096, num_cores=2)
        fresh.restore_state(loaded)
        design.restore_state(snapshot)
        design.run(trace[:500])
        fresh.run(trace[:500])
        assert (fresh.cache_stats.hits, fresh.cache_stats.misses) == (
            design.cache_stats.hits, design.cache_stats.misses)

    def test_key_changes_with_every_identity_field(self, tmp_path):
        store = CheckpointStore(tmp_path)
        base = _key(store)
        assert _key(store, trace="other") != base
        assert _key(store, design="other") != base
        assert _key(store, stop=200) != base

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = _key(store)
        (tmp_path / f"{key}.ckpt").write_bytes(b"not a pickle")
        assert store.load(key) is None

    def test_gc_evicts_lru(self, tmp_path, profile):
        store = CheckpointStore(tmp_path)
        design = make_design("no_cache", "1GB", scale=4096)
        snapshot = design.snapshot_state()
        keys = [_key(store, design=f"d{i}") for i in range(4)]
        for i, key in enumerate(keys):
            store.save(key, snapshot)
            os.utime(store._path(key), (1000 + i, 1000 + i))
        assert len(store) == 4
        reclaimed = store.gc(max_bytes=0)
        assert reclaimed > 0
        assert len(store) == 0

    def test_design_token_distinguishes_compositions(self):
        assert design_token("unison") != design_token("unison-nowp")
        assert design_token("alloy") != design_token("alloy+footprint")

    def test_trace_token_tracks_config(self, profile, config):
        from dataclasses import replace

        base = trace_token(profile, config)
        assert trace_token(profile, replace(config, seed=10)) != base
        assert trace_token(profile, replace(config, num_accesses=1)) != base

    def test_sequence_token_sees_every_record(self, profile):
        """A single-record difference anywhere must change the token."""
        from repro.sampling.checkpoints import sequence_token

        trace = SyntheticWorkload(profile, num_cores=2, seed=1).generate(3000)
        base = sequence_token(trace)
        mutated = list(trace)
        mutated[1717] = mutated[1717]._replace(
            address=mutated[1717].address ^ 64)
        assert sequence_token(mutated) != base
        assert sequence_token(list(trace)) == base

    def test_executor_sampled_path_uses_trace_identity(
            self, tmp_path, monkeypatch, profile, config, sampling):
        """The sweep executor injects the canonical trace and must key the
        checkpoint on the generator-versioned identity, not a hash."""
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        from repro.sim.executor import clear_caches, run_trial
        from repro.sim.spec import ExperimentSpec

        clear_caches()
        trial = ExperimentSpec(design="no_cache", workload=profile,
                               capacity="256MB", config=config,
                               sampling=sampling)
        run_trial(trial)
        store = CheckpointStore.default()
        assert len(store) == 1
        # A direct sampler run of the same (workload, config) must hit the
        # executor-written checkpoint: same authoritative key.
        WindowedSampler(sampling, config=config).compare(
            ["no_cache"], profile, "256MB")
        assert len(store) == 1


class TestSamplerIntegration:
    def test_checkpointed_run_bit_identical_to_cold_run(
            self, tmp_path, monkeypatch, profile, config, sampling):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        cold = WindowedSampler(sampling, config=config).compare(
            ["unison", "alloy"], profile, "256MB")
        store = CheckpointStore.default()
        assert store is not None and len(store) == 2  # one per design

        warm = WindowedSampler(sampling, config=config).compare(
            ["unison", "alloy"], profile, "256MB")
        for label in cold.designs:
            assert [w.miss_ratio for w in cold.designs[label].windows] == [
                w.miss_ratio for w in warm.designs[label].windows]
            assert [w.speedup_vs_no_cache
                    for w in cold.designs[label].windows] == [
                w.speedup_vs_no_cache for w in warm.designs[label].windows]

    def test_injected_trace_keys_on_content(self, tmp_path, monkeypatch,
                                            profile, config, sampling):
        """A checkpoint warmed on one injected sequence must not be reused
        for a different sequence under the same (workload, config)."""
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        from repro.workloads.generator import SyntheticWorkload

        trace_a = SyntheticWorkload(profile, num_cores=2,
                                    seed=1).generate(config.num_accesses)
        trace_b = SyntheticWorkload(profile, num_cores=2,
                                    seed=2).generate(config.num_accesses)
        sampler = WindowedSampler(sampling, config=config)
        run_a = sampler.compare(["unison"], profile, "256MB", trace=trace_a)
        store = CheckpointStore.default()
        before = len(store)
        assert before == 1
        run_b = sampler.compare(["unison"], profile, "256MB", trace=trace_b)
        # Different content -> different key -> a second checkpoint, and
        # genuinely different measurements (no silent warm-state reuse).
        assert len(store) == 2
        assert ([w.miss_ratio for w in run_a.designs["unison"].windows]
                != [w.miss_ratio for w in run_b.designs["unison"].windows])
        # Same content replays the existing checkpoint (no third entry).
        sampler.compare(["unison"], profile, "256MB", trace=list(trace_a))
        assert len(store) == 2

    def test_disabled_by_env(self, tmp_path, monkeypatch, profile, config,
                             sampling):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        assert not checkpoints_enabled()
        WindowedSampler(sampling, config=config).compare(
            ["no_cache"], profile, "256MB")
        assert not (tmp_path / "store" / "checkpoints").exists()

    def test_use_checkpoints_true_requires_store(self, monkeypatch, config,
                                                 sampling, profile):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        sampler = WindowedSampler(sampling, config=config,
                                  use_checkpoints=True)
        with pytest.raises(ValueError, match="checkpoint"):
            sampler.compare(["no_cache"], profile, "256MB")

    def test_opt_out_per_sampler(self, tmp_path, monkeypatch, profile,
                                 config, sampling):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        WindowedSampler(sampling, config=config,
                        use_checkpoints=False).compare(
            ["no_cache"], profile, "256MB")
        assert not (tmp_path / "store" / "checkpoints").exists()
