"""Tests for trace records, trace file I/O, and stream filters."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.errors import TraceFormatError
from repro.trace.filters import interleave_traces, limit_trace, split_warmup
from repro.trace.io import format_access, parse_access, read_trace, write_trace
from repro.trace.record import BLOCK_SIZE, AccessType, MemoryAccess


class TestMemoryAccess:
    def test_block_address(self):
        access = MemoryAccess(address=130, pc=0x400000)
        assert access.block_address == 2

    def test_block_aligned(self):
        access = MemoryAccess(address=130, pc=0x400000)
        aligned = access.block_aligned()
        assert aligned.address == 128
        assert aligned.pc == access.pc

    def test_block_aligned_noop_when_aligned(self):
        access = MemoryAccess(address=128, pc=0x400000)
        assert access.block_aligned() is access

    def test_page_number_and_offset(self):
        access = MemoryAccess(address=5000, pc=0)
        assert access.page_number(4096) == 1
        assert access.page_offset_blocks(4096) == (5000 - 4096) // BLOCK_SIZE

    def test_page_offset_requires_block_multiple(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, pc=0).page_offset_blocks(100)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, pc=0).page_number(0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=-1, pc=0)

    def test_negative_core_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, pc=0, core_id=-1)

    def test_is_write(self):
        read = MemoryAccess(address=0, pc=0, access_type=AccessType.READ)
        write = MemoryAccess(address=0, pc=0, access_type=AccessType.WRITE)
        assert not read.is_write
        assert write.is_write


class TestTraceIo:
    def test_format_parse_round_trip(self):
        access = MemoryAccess(address=0x1234, pc=0x400010,
                              access_type=AccessType.WRITE, core_id=3,
                              timestamp=42)
        assert parse_access(format_access(access)) == access

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_access("1 2 R 0x10")

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            parse_access("1 2 X 0x10 0x20")

    def test_file_round_trip(self, tmp_path):
        accesses = [
            MemoryAccess(address=i * 64, pc=0x400000 + i * 4, core_id=i % 4,
                         timestamp=i,
                         access_type=AccessType.WRITE if i % 3 == 0 else AccessType.READ)
            for i in range(50)
        ]
        path = tmp_path / "trace.txt"
        count = write_trace(path, accesses)
        assert count == 50
        assert read_trace(path) == accesses

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0 0 R 0x400000 0x80\n")
        loaded = read_trace(path)
        assert len(loaded) == 1
        assert loaded[0].address == 0x80

    def test_writer_requires_context_manager(self, tmp_path):
        from repro.trace.io import TraceWriter

        writer = TraceWriter(tmp_path / "x.txt")
        with pytest.raises(RuntimeError):
            writer.write(MemoryAccess(address=0, pc=0))

    def test_lowercase_type_codes_accepted(self):
        read = parse_access("1 2 r 0x10 0x20")
        write = parse_access("1 2 w 0x10 0x20")
        assert read.access_type is AccessType.READ
        assert write.access_type is AccessType.WRITE

    def test_trailing_whitespace_and_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 R 0x400000 0x80   \n\n   \n0 1 w 0x400004 0xc0\t\n")
        loaded = read_trace(path)
        assert len(loaded) == 2
        assert loaded[1].core_id == 1

    def test_malformed_line_reports_file_and_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n0 0 R 0x400000 0x80\n0 0 R 0x10\n")
        with pytest.raises(TraceFormatError) as exc_info:
            read_trace(path)
        error = exc_info.value
        assert error.line == 3
        assert error.path == str(path)
        assert f"{path}:3:" in str(error)

    def test_unknown_code_reports_file_and_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0 0 X 0x400000 0x80\n")
        with pytest.raises(TraceFormatError) as exc_info:
            read_trace(path)
        assert exc_info.value.line == 1

    def test_bad_number_field_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("zero 0 R 0x400000 0x80\n")
        with pytest.raises(TraceFormatError, match="bad field"):
            read_trace(path)

    def test_trace_format_error_is_value_error(self):
        # Backwards compatibility: pre-existing callers catch ValueError.
        with pytest.raises(ValueError):
            parse_access("garbage")

    def test_gzip_round_trip(self, tmp_path):
        accesses = [MemoryAccess(address=i * 64, pc=i) for i in range(20)]
        path = tmp_path / "trace.txt.gz"
        assert write_trace(path, accesses) == 20
        import gzip

        with gzip.open(path, "rt") as handle:  # really gzip on disk
            assert handle.readline().startswith("#")
        assert read_trace(path) == accesses

    @given(accesses=st.lists(
        st.builds(
            MemoryAccess,
            address=st.integers(0, 2 ** 40),
            pc=st.integers(0, 2 ** 48),
            access_type=st.sampled_from(list(AccessType)),
            core_id=st.integers(0, 15),
            timestamp=st.integers(0, 2 ** 32),
        ),
        max_size=30,
    ))
    def test_property_line_round_trip(self, accesses):
        for access in accesses:
            assert parse_access(format_access(access)) == access


class TestFilters:
    def _trace(self, n, core=0, start=0):
        return [MemoryAccess(address=i * 64, pc=0, core_id=core, timestamp=start + i)
                for i in range(n)]

    def test_limit_trace(self):
        assert len(list(limit_trace(self._trace(10), 3))) == 3
        assert len(list(limit_trace(self._trace(2), 10))) == 2

    def test_limit_trace_negative(self):
        with pytest.raises(ValueError):
            list(limit_trace(self._trace(1), -1))

    def test_split_warmup(self):
        warm, measure = split_warmup(self._trace(9), 2 / 3)
        assert len(warm) == 6
        assert len(measure) == 3

    def test_split_warmup_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_warmup(self._trace(3), 1.0)

    def test_interleave_orders_by_timestamp(self):
        a = [MemoryAccess(address=0, pc=0, core_id=0, timestamp=t) for t in (0, 4, 8)]
        b = [MemoryAccess(address=64, pc=0, core_id=1, timestamp=t) for t in (1, 2, 9)]
        merged = list(interleave_traces([a, b]))
        timestamps = [m.timestamp for m in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 6

    def test_interleave_empty_inputs(self):
        assert list(interleave_traces([])) == []
        assert list(interleave_traces([[], []])) == []
