"""Tests for the composable design API.

Covers the three contracts the composition refactor makes:

* **Bit-equality** -- every canonical design name resolves to a class that
  is a thin composition, and building the *same* spec through the pure
  generic engine (:meth:`DesignSpec.build_composed`) reproduces the class's
  behaviour access-for-access: hits, latencies, off-chip traffic, device
  counters, metrics.
* **Hybrids are first-class** -- the component-composed designs
  (``alloy+footprint``, ``unison-nowp``) run through sweeps, sampled
  trials, and the snapshot/rewind protocol like any canonical design.
* **The registries behave** -- spec registration validates component kinds,
  rejects duplicates, and produces stable identity tokens.
"""

from __future__ import annotations

import pytest

from repro.config.cache_configs import scaled_capacity
from repro.dramcache.composed import ComposedDramCache
from repro.dramcache.spec import ComponentSpec, DesignSpec
from repro.sim.executor import group_trials_by_trace, run_trial
from repro.sim.experiment import ExperimentConfig
from repro.sim.factory import make_design
from repro.sim.registry import DESIGNS, DesignBuildContext, DesignRegistry
from repro.sim.spec import SweepSpec
from repro.sampling.windows import SamplingConfig
from repro.utils.units import parse_size
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile

CANONICAL = ["unison", "unison-1984", "unison-dm", "unison-32way",
             "alloy", "footprint", "loh_hill", "ideal", "no_cache"]
HYBRIDS = ["alloy+footprint", "unison-nowp"]


@pytest.fixture(scope="module")
def profile():
    return WorkloadProfile(
        name="compose-tiny", working_set="2MB", num_code_regions=32,
        footprint_density=0.5, footprint_noise=0.05, singleton_fraction=0.1,
        temporal_reuse=0.2, region_zipf_alpha=0.6, pc_locality_run=3,
        write_fraction=0.25, l2_mpki=20.0,
    )


@pytest.fixture(scope="module")
def trace(profile):
    return SyntheticWorkload(profile, num_cores=4, seed=7).generate(5000)


def build_context(capacity="1GB", scale=1024, num_cores=4,
                  associativity=None) -> DesignBuildContext:
    paper = parse_size(capacity)
    return DesignBuildContext(
        paper_capacity_bytes=paper,
        scaled_capacity_bytes=scaled_capacity(paper, scale),
        scale=scale,
        num_cores=num_cores,
        associativity=associativity,
    )


def replay_fingerprint(design, trace):
    """Exact per-access behaviour plus the aggregate/device counters."""
    per_access = [
        (r.hit, r.latency_cycles, r.offchip_blocks_fetched,
         r.offchip_blocks_written)
        for r in (design.access(request) for request in trace)
    ]
    stats = design.cache_stats
    return (
        per_access,
        (stats.hits, stats.misses, stats.total_hit_latency,
         stats.total_miss_latency, stats.offchip_demand_blocks,
         stats.offchip_prefetch_blocks, stats.offchip_writeback_blocks,
         stats.pages_allocated, stats.pages_evicted,
         stats.underprediction_misses, stats.singleton_bypasses),
        (design.memory.row_activations, design.stacked.row_activations,
         design.memory.blocks_read, design.memory.blocks_written),
        design.extra_metrics(),
    )


class TestClassSpecBitEquality:
    @pytest.mark.parametrize("name", CANONICAL)
    def test_class_and_composed_spec_are_bit_identical(self, name, trace):
        """The legacy class and its DesignSpec re-expression must agree on
        every access of a shared trace."""
        entry = DESIGNS.resolve(name)
        assert entry.spec is not None, f"{name} is not spec-registered"
        via_class = make_design(name, "1GB", scale=1024, num_cores=4)
        via_spec = entry.spec.build_composed(build_context())
        assert type(via_spec) is ComposedDramCache
        assert type(via_class) is not ComposedDramCache  # a real subclass
        assert replay_fingerprint(via_class, trace) == replay_fingerprint(
            via_spec, trace)

    def test_degenerate_predictors_keep_metric_keys(self):
        """unison-dm must still report way_prediction_accuracy == 1.0 (the
        legacy perfect-knowledge value), through both build paths."""
        entry = DESIGNS.resolve("unison-dm")
        via_class = make_design("unison-dm", "1GB", scale=1024, num_cores=4)
        via_spec = entry.spec.build_composed(build_context())
        for design in (via_class, via_spec):
            assert design.extra_metrics()["way_prediction_accuracy"] == 1.0
        from repro.baselines.alloy import AlloyCache
        from repro.config.cache_configs import AlloyCacheConfig

        bare = AlloyCache(AlloyCacheConfig(capacity=64 * 8192,
                                           use_miss_predictor=False),
                          num_cores=4)
        assert bare.extra_metrics() == {
            "miss_prediction_accuracy": 0.0,
            "miss_predictor_overfetch": 0.0,
        }

    def test_class_carrier_rejects_unsupported_params(self):
        """A class-backed spec must not silently drop component params."""
        spec = DesignSpec(
            name="bad-unison",
            tags=ComponentSpec("dram-page", {"hit_path": "serialized"}),
            hit_predictor=ComponentSpec("way"),
            fetch=ComponentSpec("footprint"),
            model="unison",
        )
        with pytest.raises(ValueError, match="composed"):
            spec.build(build_context())

    def test_class_carrier_rejects_mismatched_component_kinds(self):
        """A class-backed spec naming a component kind the class cannot
        embody must fail at build, not silently build something else."""
        spec = DesignSpec(
            name="alloy-nomapi",
            tags=ComponentSpec("direct-mapped"),
            hit_predictor=ComponentSpec("none"),
            model="alloy",
        )
        with pytest.raises(ValueError, match="hit_predictor='none'"):
            spec.build(build_context())

    def test_class_carrier_honors_shared_params(self, trace):
        """Params both carriers understand must build identical models."""
        spec = DesignSpec(
            name="tuned-unison",
            tags=ComponentSpec("dram-page", {"blocks_per_page": 15,
                                             "associativity": 4}),
            hit_predictor=ComponentSpec("way", {"index_bits": 10}),
            fetch=ComponentSpec("footprint", {"table_entries": 2048}),
            model="unison",
        )
        context = build_context()
        via_class = spec.build(context)
        via_spec = spec.build_composed(context)
        assert via_class.way_predictor.index_bits == 10
        assert via_class.footprint_predictor.num_entries == 2048
        assert replay_fingerprint(via_class, trace) == replay_fingerprint(
            via_spec, trace)

    def test_associativity_override_matches(self, trace):
        entry = DESIGNS.resolve("unison")
        via_class = make_design("unison", "1GB", scale=1024, num_cores=4,
                                associativity=8)
        via_spec = entry.spec.build_composed(build_context(associativity=8))
        assert replay_fingerprint(via_class, trace) == replay_fingerprint(
            via_spec, trace)


class TestHybridDesigns:
    @pytest.mark.parametrize("name", HYBRIDS)
    def test_runs_and_caches(self, name, trace):
        design = make_design(name, "1GB", scale=1024, num_cores=4)
        design.run(trace)
        stats = design.cache_stats
        assert stats.accesses == len(trace)
        assert stats.hits + stats.misses == len(trace)
        assert 0.0 < stats.hit_ratio < 1.0  # it actually caches
        assert design.memory.blocks_read >= stats.offchip_demand_blocks

    def test_nowp_hits_slower_than_unison(self, trace):
        """Removing way prediction must cost hit latency, nothing else."""
        unison = make_design("unison", "1GB", scale=1024, num_cores=4)
        nowp = make_design("unison-nowp", "1GB", scale=1024, num_cores=4)
        unison.run(trace)
        nowp.run(trace)
        # Same organization and fetch policy: identical functional contents.
        assert nowp.cache_stats.misses == pytest.approx(
            unison.cache_stats.misses, rel=0.02)
        assert (nowp.cache_stats.average_hit_latency
                > unison.cache_stats.average_hit_latency)

    def test_alloy_footprint_outhits_alloy(self, trace):
        """Footprint fetching must lift Alloy's hit ratio on a spatial
        workload (the whole point of the hybrid)."""
        alloy = make_design("alloy", "1GB", scale=1024, num_cores=4)
        hybrid = make_design("alloy+footprint", "1GB", scale=1024,
                             num_cores=4)
        alloy.run(trace)
        hybrid.run(trace)
        assert hybrid.cache_stats.hit_ratio > alloy.cache_stats.hit_ratio

    @pytest.mark.parametrize("name", HYBRIDS)
    def test_snapshot_restore_rewinds_exactly(self, name, trace):
        design = make_design(name, "1GB", scale=2048, num_cores=4)
        design.run(trace[:2000])
        snapshot = design.snapshot_state()
        design.run(trace[2000:4000])
        first = replay_fingerprint(design, trace[4000:4500])

        design.restore_state(snapshot)
        design.run(trace[2000:4000])
        assert replay_fingerprint(design, trace[4000:4500]) == first

    def test_hybrids_sweepable(self, profile):
        spec = SweepSpec(
            designs=("alloy", "alloy+footprint", "unison-nowp"),
            workloads=(profile,),
            capacities=("256MB",),
            config=ExperimentConfig(scale=4096, num_accesses=6000,
                                    num_cores=2, seed=3),
        )
        results = spec  # validated at construction
        from repro.sim.executor import run_sweep

        table = run_sweep(results, workers=1)
        assert len(table) == 3
        names = {r.design for r in table}
        assert names == {"alloy", "alloy+footprint", "unison-nowp"}

    @pytest.mark.parametrize("name", HYBRIDS)
    def test_hybrids_sampled_measurable(self, name, profile):
        from repro.sim.spec import ExperimentSpec

        trial = ExperimentSpec(
            design=name,
            workload=profile,
            capacity="256MB",
            config=ExperimentConfig(scale=4096, num_accesses=20_000,
                                    num_cores=2, seed=3),
            sampling=SamplingConfig(
                window_accesses=1000, warmup_accesses=500,
                checkpoint_accesses=4000, min_windows=2, max_windows=3,
            ),
        )
        result = run_trial(trial)
        assert result.design == name
        assert result.accesses_measured > 0
        assert 0.0 <= result.miss_ratio <= 1.0
        assert result.extra["sampling_windows"] >= 2


class TestSpecApi:
    def test_duplicate_spec_rejected(self):
        registry = DesignRegistry()
        spec = DesignSpec(name="x", tags=ComponentSpec("no-cache"))
        registry.register_spec(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_spec(spec)
        registry.register_spec(spec, replace=True)  # explicit replace ok

    def test_unknown_component_kind_fails_at_declaration(self):
        with pytest.raises(ValueError, match="tag organization"):
            DesignSpec(name="x", tags=ComponentSpec("quantum-tags"))
        with pytest.raises(ValueError, match="fetch policy"):
            DesignSpec(name="x", tags=ComponentSpec("no-cache"),
                       fetch=ComponentSpec("telepathy"))

    def test_component_params_must_be_plain(self):
        with pytest.raises(ValueError, match="plain"):
            ComponentSpec("dram-page", {"geometry": object()})

    def test_token_tracks_composition(self):
        a = DesignSpec(name="t", tags=ComponentSpec("dram-page"))
        b = DesignSpec(name="t", tags=ComponentSpec(
            "dram-page", {"associativity": 8}))
        c = DesignSpec(name="t", tags=ComponentSpec("dram-page"),
                       fetch=ComponentSpec("full-page"))
        assert len({a.token(), b.token(), c.token()}) == 3
        # Parameter order does not matter: tokens are canonical.
        d = ComponentSpec("dram-page", {"a": 1, "b": 2})
        e = ComponentSpec("dram-page", {"b": 2, "a": 1})
        assert d.token() == e.token()

    def test_registry_token_for_spec_entries(self):
        token = DESIGNS.resolve("unison").token()
        assert "dram-page" in token and "footprint" in token
        assert token != DESIGNS.resolve("unison-dm").token()

    def test_spec_buildable_through_make_design(self, trace):
        # A spec registered at runtime is immediately constructible and
        # sweepable by name, like any shipped design.
        registry_spec = DesignSpec(
            name="test-full-page",
            tags=ComponentSpec("sram-page", {"associativity": 8}),
            fetch=ComponentSpec("full-page"),
            description="test-only: SRAM tags fetching whole pages",
        )
        DESIGNS.register_spec(registry_spec, replace=True)
        design = make_design("test-full-page", "256MB", scale=1024)
        design.run(trace[:1500])
        assert design.cache_stats.accesses == 1500
        assert design.cache_stats.hits > 0

    def test_designs_cli_lists_components(self, capsys):
        from repro.cli import main

        assert main(["designs", "--components"]) == 0
        out = capsys.readouterr().out
        assert "alloy+footprint" in out
        assert "tags=dram-page" in out
        assert "tag organization:" in out


class TestStoreAwareScheduling:
    def test_groups_partition_by_trace_key(self, profile):
        other = WorkloadProfile(
            name="compose-tiny-b", working_set="2MB", num_code_regions=32,
            footprint_density=0.5, footprint_noise=0.05,
            singleton_fraction=0.1, temporal_reuse=0.2,
            region_zipf_alpha=0.6, pc_locality_run=3,
            write_fraction=0.25, l2_mpki=20.0,
        )
        spec = SweepSpec(
            designs=("unison", "alloy"),
            workloads=(profile, other),
            capacities=("256MB",),
            config=ExperimentConfig(scale=4096, num_accesses=4000,
                                    num_cores=2),
        )
        trials = spec.trials()
        groups = group_trials_by_trace(trials)
        # Two workloads -> two groups covering all trials exactly once.
        assert len(groups) == 2
        flattened = sorted(i for group in groups for i in group)
        assert flattened == list(range(len(trials)))
        for group in groups:
            keys = {trials[i].workload for i in group}
            assert len(keys) == 1

    def test_parallel_equals_serial_with_batching(self, profile):
        from repro.sim.executor import run_sweep

        spec = SweepSpec(
            designs=("alloy", "alloy+footprint"),
            workloads=(profile,),
            capacities=("256MB",),
            config=ExperimentConfig(scale=4096, num_accesses=4000,
                                    num_cores=2, seed=11),
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.to_records() == parallel.to_records()
