"""Tests for the declarative experiment API.

Covers the design registry, ExperimentSpec/SweepSpec validation, ResultSet
round-trips, the serial/parallel sweep executor equivalence, and the CLI.
"""

import json

import pytest

from repro.dramcache.base import DramCacheModel
from repro.sim.executor import SweepExecutor, clear_caches, run_sweep, run_trial
from repro.sim.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.sim.factory import DESIGN_NAMES, make_design, unison_design_for_ways
from repro.sim.registry import DESIGNS, DesignRegistry, register_design
from repro.sim.resultset import ResultSet
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.workloads.cloudsuite import data_serving, web_search

#: Names the seed's hard-coded factory accepted; the registry must cover all.
LEGACY_DESIGN_NAMES = (
    "unison", "unison-1984", "unison-dm", "unison-32way",
    "alloy", "footprint", "loh_hill", "ideal", "no_cache",
)

FAST_CONFIG = ExperimentConfig(scale=4096, num_accesses=6_000, num_cores=4,
                               seed=11)


def make_result(design="unison", workload="Web Search", capacity="1GB",
                **overrides) -> ExperimentResult:
    """A fully-populated synthetic result for serialization tests."""
    kwargs = dict(
        design=design, workload=workload, capacity=capacity,
        scale=512, accesses_measured=1234,
        miss_ratio=0.07250000000000001, hit_ratio=0.9275,
        average_hit_latency=29.53, average_miss_latency=155.95,
        average_access_latency=38.7,
        offchip_blocks_per_access=0.8, offchip_demand_blocks=400,
        offchip_prefetch_blocks=500, offchip_writeback_blocks=66,
        offchip_row_activations=700, stacked_row_activations=2800,
        footprint_accuracy=0.91, footprint_overfetch=0.08,
        way_prediction_accuracy=None, miss_prediction_accuracy=None,
        miss_predictor_overfetch=None,
        speedup_vs_no_cache=1.19, user_ipc=0.42,
        extra={"custom_metric": 0.1 + 0.2},
    )
    kwargs.update(overrides)
    return ExperimentResult(**kwargs)


class TestRegistry:
    def test_registry_resolves_every_legacy_name(self):
        for name in LEGACY_DESIGN_NAMES:
            entry = DESIGNS.resolve(name)
            assert entry.name == name

    def test_design_names_derived_from_registry(self):
        assert set(LEGACY_DESIGN_NAMES) <= set(DESIGN_NAMES)
        assert set(DESIGN_NAMES) <= set(DESIGNS.names())

    def test_lookup_is_case_insensitive(self):
        assert DESIGNS.resolve("UNISON").name == "unison"

    def test_unknown_design_rejected_with_options(self):
        with pytest.raises(ValueError, match="options"):
            DESIGNS.resolve("missmap")

    def test_duplicate_registration_rejected(self):
        registry = DesignRegistry()
        registry.register("x", lambda ctx: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda ctx: None)
        registry.register("x", lambda ctx: None, replace=True)

    def test_custom_registration_builds(self):
        registry = DesignRegistry()

        @register_design("tiny-ideal", registry=registry, capacity_cap=64 * 1024)
        def _build(context, *, capacity_cap):
            from repro.baselines.ideal import IdealCache
            return IdealCache(min(context.scaled_capacity_bytes, capacity_cap))

        design = registry.build("tiny-ideal", "1GB", scale=1024)
        assert isinstance(design, DramCacheModel)
        assert design.capacity_bytes <= 64 * 1024

    def test_make_design_rejects_associativity_for_fixed_geometry(self):
        for name in ("alloy", "footprint", "loh_hill", "ideal", "no_cache"):
            with pytest.raises(ValueError, match="associativity"):
                make_design(name, "1GB", scale=1024, associativity=8)

    def test_make_design_accepts_associativity_for_unison(self):
        design = make_design("unison", "1GB", scale=1024, associativity=8)
        assert design.config.associativity == 8

    def test_extra_metrics_uniform_hook(self):
        unison = make_design("unison", "1GB", scale=1024)
        assert set(unison.extra_metrics()) == {
            "footprint_accuracy", "footprint_overfetch",
            "way_prediction_accuracy",
        }
        alloy = make_design("alloy", "1GB", scale=1024)
        assert set(alloy.extra_metrics()) == {
            "miss_prediction_accuracy", "miss_predictor_overfetch",
        }
        assert make_design("no_cache", "1GB").extra_metrics() == {}


class TestUnisonLabels:
    def test_canonical_ways_map_to_registered_variants(self):
        assert unison_design_for_ways(1) == ("unison-dm", "unison-dm")
        assert unison_design_for_ways(4) == ("unison", "unison")
        assert unison_design_for_ways(32) == ("unison-32way", "unison-32way")

    def test_non_canonical_ways_get_derived_label(self):
        assert unison_design_for_ways(8) == ("unison", "unison-8way")
        with pytest.raises(ValueError):
            unison_design_for_ways(0)

    def test_associativity_sweep_labels_non_canonical_ways(self):
        runner = ExperimentRunner(FAST_CONFIG)
        results = runner.associativity_sweep(web_search(), "1GB",
                                             associativities=(8,))
        assert results[8].design == "unison-8way"


class TestSpecs:
    def test_experiment_spec_normalizes_and_validates(self):
        spec = ExperimentSpec(design="UNISON", workload="web search",
                              capacity="1024MB", config=FAST_CONFIG)
        assert spec.design == "unison"
        assert spec.workload.name == "Web Search"
        assert spec.capacity == "1GB"
        assert spec.result_label == "unison"

    def test_experiment_spec_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="unknown design"):
            ExperimentSpec(design="missmap", workload="Web Search",
                           capacity="1GB")

    def test_experiment_spec_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ExperimentSpec(design="unison", workload="SPECint",
                           capacity="1GB")

    def test_experiment_spec_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            ExperimentSpec(design="alloy", workload="Web Search",
                           capacity="1GB", associativity=8)

    def test_sweep_spec_materializes_grid_in_order(self):
        spec = SweepSpec(designs=("unison", "alloy"),
                         workloads=("Web Search", "Data Serving"),
                         capacities=("256MB", "1GB"),
                         config=FAST_CONFIG)
        assert len(spec) == 8
        trials = spec.trials()
        assert [t.design for t in trials[:4]] == ["unison"] * 4
        assert trials[0].workload.name == "Web Search"
        assert trials[0].capacity == "256MB"
        assert trials[1].capacity == "1GB"

    def test_sweep_spec_validates_at_construction(self):
        with pytest.raises(ValueError, match="unknown design"):
            SweepSpec(designs=("unison", "missmap"),
                      workloads=("Web Search",), capacities=("1GB",))
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(designs=(), workloads=("Web Search",),
                      capacities=("1GB",))
        with pytest.raises(ValueError, match="unknown override keys"):
            SweepSpec(designs=("unison",), workloads=("Web Search",),
                      capacities=("1GB",), overrides=({"way_count": 8},))

    def test_sweep_spec_overrides_axis(self):
        spec = SweepSpec(designs=("unison",), workloads=("Web Search",),
                         capacities=("1GB",), config=FAST_CONFIG,
                         overrides=({"associativity": 8}, {"seed": 99}))
        trials = spec.trials()
        assert len(trials) == 2
        assert trials[0].associativity == 8
        assert trials[0].result_label == "unison-8way"
        assert trials[1].config.seed == 99
        assert trials[1].result_label == "unison"

    def test_sweep_spec_override_labels_use_canonical_variant_names(self):
        spec = SweepSpec(designs=("unison",), workloads=("Web Search",),
                         capacities=("1GB",), config=FAST_CONFIG,
                         overrides=({"associativity": 1},
                                    {"associativity": 4},
                                    {"associativity": 32}))
        assert [t.result_label for t in spec.trials()] == [
            "unison-dm", "unison", "unison-32way",
        ]

    def test_sweep_spec_normalizes_design_case(self):
        spec = SweepSpec(designs=("UNISON",), workloads=("Web Search",),
                         capacities=("1GB",), config=FAST_CONFIG)
        assert spec.designs == ("unison",)


class TestResultSet:
    def test_filter_group_metric(self):
        rs = ResultSet([
            make_result(design="unison", capacity="1GB"),
            make_result(design="alloy", capacity="1GB", miss_ratio=0.5),
            make_result(design="unison", capacity="256MB", miss_ratio=0.2),
        ])
        assert len(rs.filter(design="unison")) == 2
        assert len(rs.filter(design="unison", capacity="1GB")) == 1
        assert len(rs.filter(lambda r: r.miss_ratio > 0.1)) == 2
        groups = rs.group_by("design")
        assert set(groups) == {"unison", "alloy"}
        assert len(groups["unison"]) == 2
        assert rs.best_by("miss_ratio").design == "unison"
        assert rs.designs == ("unison", "alloy")
        with pytest.raises(ValueError, match="unknown result fields"):
            rs.filter(flavor="chocolate")

    def test_json_roundtrip_is_lossless(self, tmp_path):
        rs = ResultSet([make_result(), make_result(design="alloy",
                                                   speedup_vs_no_cache=None)])
        assert ResultSet.from_json(rs.to_json()) == rs
        path = tmp_path / "results.json"
        rs.to_json(path)
        assert ResultSet.from_json(path) == rs
        payload = json.loads(rs.to_json())
        assert payload["schema"] == "repro.resultset/v1"

    def test_csv_roundtrip_is_lossless(self, tmp_path):
        rs = ResultSet([make_result(), make_result(design="alloy",
                                                   footprint_accuracy=None,
                                                   extra={})])
        assert ResultSet.from_csv(rs.to_csv()) == rs
        path = tmp_path / "results.csv"
        rs.to_csv(path)
        assert ResultSet.from_csv(path) == rs

    def test_table_renders_every_result(self):
        rs = ResultSet([make_result(), make_result(design="alloy")])
        table = rs.table()
        assert "unison" in table and "alloy" in table
        assert len(table.splitlines()) == 4  # header + rule + 2 rows


class TestExecutor:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def grid_spec(self) -> SweepSpec:
        return SweepSpec(
            designs=("unison", "alloy"),
            workloads=(web_search(), data_serving()),
            capacities=("256MB", "1GB"),
            config=FAST_CONFIG,
        )

    def test_parallel_identical_to_serial_and_json_roundtrips(self):
        spec = self.grid_spec()
        serial = run_sweep(spec, workers=1)
        clear_caches()
        parallel = run_sweep(spec, workers=2)
        assert len(serial) == len(spec) == 8
        # Bit-identical contents, in the same deterministic order.
        assert serial.to_records() == parallel.to_records()
        assert ResultSet.from_json(parallel.to_json()) == parallel

    def test_trial_matches_legacy_runner(self):
        trial = ExperimentSpec(design="unison", workload=web_search(),
                               capacity="1GB", config=FAST_CONFIG)
        via_executor = run_trial(trial)
        legacy = ExperimentRunner(FAST_CONFIG).run_design(
            "unison", web_search(), "1GB")
        assert via_executor == legacy

    def test_trace_and_baseline_are_shared(self, tmp_path, monkeypatch):
        # A fresh store directory so no earlier test pre-stored the traces.
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        clear_caches()
        spec = self.grid_spec()
        counts = {"traces": 0}
        from repro.workloads.generator import SyntheticWorkload

        original = SyntheticWorkload.iter_chunks

        def counting(self, count, *args, **kwargs):
            counts["traces"] += 1
            return original(self, count, *args, **kwargs)

        monkeypatch.setattr(SyntheticWorkload, "iter_chunks", counting)
        SweepExecutor(workers=1).run(spec)
        # 8 cells over 2 workloads -> exactly 2 trace generations.
        assert counts["traces"] == 2

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)


class TestCli:
    def test_cli_runs_sweep_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "--designs", "unison", "alloy",
            "--workloads", "Web Search",
            "--capacities", "256MB",
            "--scale", "4096", "--accesses", "4000",
            "--json", str(json_path), "--csv", str(csv_path),
            "--quiet",
        ])
        assert code == 0
        table = capsys.readouterr().out
        assert "unison" in table and "alloy" in table
        loaded = ResultSet.from_json(json_path)
        assert loaded.designs == ("unison", "alloy")
        assert ResultSet.from_csv(csv_path) == loaded

    def test_cli_rejects_unknown_design(self, capsys):
        from repro.cli import main

        assert main(["--designs", "missmap"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_cli_listings(self, capsys):
        from repro.cli import main

        assert main(["--list-designs"]) == 0
        assert "unison" in capsys.readouterr().out
        assert main(["--list-workloads"]) == 0
        assert "Web Search" in capsys.readouterr().out
