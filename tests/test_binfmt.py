"""Tests for the struct-packed binary trace format."""

import gzip
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.binfmt import (
    HEADER,
    MAGIC,
    UNKNOWN_COUNT,
    VERSION,
    BinaryTraceReader,
    BinaryTraceWriter,
    is_binary_trace,
    read_header,
    read_trace_bin,
    write_trace_bin,
)
from repro.trace.errors import TraceFormatError
from repro.trace.io import read_trace, write_trace
from repro.trace.record import AccessType, MemoryAccess


def sample_trace(n, cores=4):
    return [
        MemoryAccess(address=i * 64 + (i % 7), pc=0x400000 + i * 4,
                     core_id=i % cores, timestamp=i,
                     access_type=AccessType.WRITE if i % 3 == 0
                     else AccessType.READ)
        for i in range(n)
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("compress", [True, False])
    def test_round_trip(self, tmp_path, compress):
        trace = sample_trace(1000)
        path = tmp_path / "t.rptr"
        count = write_trace_bin(path, trace, num_cores=4, compress=compress)
        assert count == 1000
        assert read_trace_bin(path) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rptr"
        assert write_trace_bin(path, []) == 0
        assert read_trace_bin(path) == []
        assert read_header(path).access_count == 0

    def test_large_addresses(self, tmp_path):
        trace = [
            MemoryAccess(address=2 ** 32 + 1, pc=2 ** 48 + 3,
                         timestamp=2 ** 40),
            MemoryAccess(address=2 ** 63, pc=0, core_id=65535),
        ]
        path = tmp_path / "big.rptr"
        write_trace_bin(path, trace)
        assert read_trace_bin(path) == trace

    def test_multi_core_interleave_preserved(self, tmp_path):
        trace = sample_trace(500, cores=16)
        path = tmp_path / "cores.rptr"
        write_trace_bin(path, trace, num_cores=16)
        loaded = read_trace_bin(path)
        assert [a.core_id for a in loaded] == [a.core_id for a in trace]
        assert read_header(path).num_cores == 16

    def test_binary_text_binary_equivalence(self, tmp_path):
        trace = sample_trace(300)
        bin_path = tmp_path / "a.rptr"
        text_path = tmp_path / "a.trace"
        write_trace_bin(bin_path, trace)
        write_trace(text_path, read_trace_bin(bin_path))
        assert read_trace(text_path) == trace

    @settings(max_examples=25, deadline=None)
    @given(accesses=st.lists(
        st.builds(
            MemoryAccess,
            address=st.integers(0, 2 ** 64 - 1),
            pc=st.integers(0, 2 ** 64 - 1),
            access_type=st.sampled_from(list(AccessType)),
            core_id=st.integers(0, 2 ** 16 - 1),
            timestamp=st.integers(0, 2 ** 64 - 1),
        ),
        max_size=50,
    ))
    def test_property_round_trip(self, tmp_path_factory, accesses):
        path = tmp_path_factory.mktemp("prop") / "t.rptr"
        write_trace_bin(path, accesses)
        assert read_trace_bin(path) == accesses


class TestHeader:
    def test_header_fields(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(42), num_cores=8)
        info = read_header(path)
        assert info.version == VERSION
        assert info.compressed
        assert info.num_cores == 8
        assert info.access_count == 42
        assert info.file_bytes == path.stat().st_size

    def test_header_is_uncompressed(self, tmp_path):
        """``trace info`` must work without decompressing the payload."""
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(10), compress=True)
        with path.open("rb") as handle:
            assert handle.read(4) == MAGIC

    def test_is_binary_trace(self, tmp_path):
        bin_path = tmp_path / "t.rptr"
        write_trace_bin(bin_path, [])
        text_path = tmp_path / "t.trace"
        write_trace(text_path, [])
        assert is_binary_trace(bin_path)
        assert not is_binary_trace(text_path)
        assert not is_binary_trace(tmp_path / "missing.rptr")

    def test_unknown_count_sentinel(self, tmp_path):
        path = tmp_path / "t.rptr"
        payload = gzip.compress(b"")
        path.write_bytes(
            HEADER.pack(MAGIC, VERSION, 1, 0, UNKNOWN_COUNT) + payload
        )
        assert read_header(path).access_count is None


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_header(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rptr"
        path.write_bytes(MAGIC)
        with pytest.raises(TraceFormatError, match="too short"):
            read_header(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.rptr"
        path.write_bytes(HEADER.pack(MAGIC, VERSION + 1, 0, 0, 0))
        with pytest.raises(TraceFormatError, match="version"):
            read_header(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "trunc.rptr"
        write_trace_bin(path, sample_trace(10), compress=False)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])  # cut into the last record
        with pytest.raises(TraceFormatError, match="truncated"):
            read_trace_bin(path)

    def test_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_unrepresentable_core_id(self, tmp_path):
        access = MemoryAccess(address=0, pc=0, core_id=2 ** 16)
        with pytest.raises(TraceFormatError, match="core_id"):
            write_trace_bin(tmp_path / "x.rptr", [access])

    def test_negative_timestamp_rejected_cleanly(self, tmp_path):
        # MemoryAccess never validates timestamps, so the writer must:
        # struct.error would otherwise escape as an unhandled crash.
        access = MemoryAccess(address=0, pc=0, timestamp=-1)
        with pytest.raises(TraceFormatError, match="64-bit"):
            write_trace_bin(tmp_path / "x.rptr", [access])

    def test_aborted_write_leaves_unfinalized_header(self, tmp_path):
        """An exception mid-stream must not produce a valid-looking file."""
        path = tmp_path / "aborted.rptr"
        with pytest.raises(RuntimeError, match="boom"):
            with BinaryTraceWriter(path) as writer:
                writer.write(MemoryAccess(address=0, pc=0))
                raise RuntimeError("boom")
        assert read_header(path).access_count is None  # UNKNOWN_COUNT kept

    def test_writer_requires_context_manager(self, tmp_path):
        writer = BinaryTraceWriter(tmp_path / "x.rptr")
        with pytest.raises(RuntimeError):
            writer.write(MemoryAccess(address=0, pc=0))


class TestStreaming:
    def test_iter_chunks_sizes(self, tmp_path):
        trace = sample_trace(1000)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace)
        chunks = list(BinaryTraceReader(path).iter_chunks(chunk_records=256))
        assert [len(c) for c in chunks] == [256, 256, 256, 232]
        assert [a for c in chunks for a in c] == trace

    def test_reader_is_reiterable(self, tmp_path):
        trace = sample_trace(100)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace)
        reader = BinaryTraceReader(path)
        assert list(reader) == list(reader) == trace

    def test_streaming_write_from_generator(self, tmp_path):
        """The writer never needs the trace materialized."""
        path = tmp_path / "gen.rptr"
        count = write_trace_bin(
            path, (MemoryAccess(address=i, pc=0) for i in range(50_000))
        )
        assert count == 50_000
        assert read_header(path).access_count == 50_000

    def test_record_layout_is_stable(self):
        """The on-disk record layout is a compatibility contract."""
        from repro.trace.binfmt import RECORD

        assert RECORD.format == "<QQQHB"
        assert RECORD.size == 27
        assert struct.calcsize("<4sHHIQ") == HEADER.size == 20
