"""Tests for the Unison Cache DRAM row layout (Figures 2 and 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.cache_configs import UnisonCacheConfig
from repro.core.row_layout import UnisonRowLayout


@pytest.fixture
def default_layout():
    return UnisonRowLayout(UnisonCacheConfig(capacity=64 * 8192))


class TestDefaultLayout:
    def test_geometry_matches_figure_3(self, default_layout):
        assert default_layout.pages_per_row == 8
        assert default_layout.sets_per_row == 2
        assert default_layout.page_data_bytes == 960
        assert default_layout.data_blocks_per_row == 120

    def test_presence_metadata_sizes(self, default_layout):
        # Figure 2: 8 bytes of tag metadata per page; Figure 3: a 4-way set's
        # tags transfer as a 32-byte burst.
        assert default_layout.presence_bytes_per_page == 8
        assert default_layout.presence_bytes_per_set == 32

    def test_everything_fits_in_the_row(self, default_layout):
        assert default_layout.unused_bytes_per_row >= 0
        total = (default_layout.metadata_bytes_per_row
                 + default_layout.data_bytes_per_row
                 + default_layout.unused_bytes_per_row)
        assert total == default_layout.row_bytes

    def test_frame_indexing(self, default_layout):
        assert default_layout.frame_index(0, 0) == 0
        assert default_layout.frame_index(1, 3) == 7
        assert default_layout.frame_row(0) == 0
        assert default_layout.frame_row(8) == 1
        assert default_layout.frame_slot(9) == 1

    def test_block_offsets_disjoint_across_frames(self, default_layout):
        seen = set()
        for frame in range(default_layout.pages_per_row):
            for block in range(15):
                offset = default_layout.block_offset(frame, block)
                span = range(offset, offset + 64)
                assert offset + 64 <= default_layout.row_bytes
                assert not (set(span) & seen)
                seen.update(span)

    def test_data_does_not_overlap_metadata(self, default_layout):
        first_block = default_layout.block_offset(0, 0)
        assert first_block >= default_layout.metadata_bytes_per_row

    def test_metadata_offsets_within_metadata_region(self, default_layout):
        for frame in range(default_layout.pages_per_row):
            presence = default_layout.presence_metadata_offset(frame)
            other = default_layout.other_metadata_offset(frame)
            assert presence < default_layout.presence_bytes_per_row
            assert (default_layout.presence_bytes_per_row <= other
                    < default_layout.metadata_bytes_per_row)

    def test_out_of_range_arguments(self, default_layout):
        with pytest.raises(IndexError):
            default_layout.block_offset(0, 15)
        with pytest.raises(IndexError):
            default_layout.frame_index(0, 4)
        with pytest.raises(IndexError):
            default_layout.frame_row(-1)

    def test_describe_mentions_geometry(self, default_layout):
        text = default_layout.describe()
        assert "15 blocks/page" in text
        assert "120 data blocks/row" in text


class TestAlternativeOrganizations:
    def test_1984_byte_pages(self):
        layout = UnisonRowLayout(
            UnisonCacheConfig(capacity=64 * 8192, blocks_per_page=31)
        )
        assert layout.pages_per_row == 4
        assert layout.sets_per_row == 1
        assert layout.data_blocks_per_row == 124
        assert layout.unused_bytes_per_row >= 0

    def test_direct_mapped(self):
        layout = UnisonRowLayout(
            UnisonCacheConfig(capacity=64 * 8192, associativity=1)
        )
        assert layout.sets_per_row == 8
        assert layout.presence_bytes_per_set == 8

    def test_32_way_spans_rows(self):
        layout = UnisonRowLayout(
            UnisonCacheConfig(capacity=64 * 8192, associativity=32)
        )
        assert layout.sets_per_row == 0
        # Frames of one set span multiple rows but remain addressable.
        rows = {layout.frame_row(layout.frame_index(0, way)) for way in range(32)}
        assert len(rows) == 4

    @given(st.sampled_from([15, 31]), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_property_blocks_always_inside_row(self, blocks_per_page, associativity):
        config = UnisonCacheConfig(capacity=32 * 8192,
                                   blocks_per_page=blocks_per_page,
                                   associativity=associativity)
        layout = UnisonRowLayout(config)
        for frame in range(layout.pages_per_row):
            for block in range(blocks_per_page):
                offset = layout.block_offset(frame, block)
                assert 0 <= offset
                assert offset + 64 <= layout.row_bytes
