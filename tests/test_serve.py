"""Results service tests: read model, socket-free API, figures, server.

The expensive fixture drains one sampled sweep through the durable work
queue with telemetry enabled, then *unsets* the telemetry switch -- every
assertion below runs against the stores with ``REPRO_TELEMETRY`` absent,
pinning the read-side contract (``query_root()`` semantics) end to end.

The figure tests enforce the exactness contract: each SVG bar's
``data-mean``/``data-half-width`` attributes must equal the archived
ResultSet floats under ``==``, not approximately.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.request
import xml.etree.ElementTree as ET
from types import SimpleNamespace

import pytest

from repro.obs.ledger import RunLedger, summarize
from repro.queue import SweepService
from repro.sampling.windows import SamplingConfig
from repro.serve import ReadModel, create_server, handle_request
from repro.serve.figures import Bar, BarGroup, render_grouped_bars
from repro.sim.experiment import ExperimentConfig
from repro.sim.spec import SweepSpec

SVG_NS = "{http://www.w3.org/2000/svg}"


def sampled_spec() -> SweepSpec:
    return SweepSpec(
        designs=("unison", "alloy"),
        workloads=("Web Search",),
        capacities=("512MB",),
        config=ExperimentConfig(scale=2048, num_accesses=8000),
        sampling=SamplingConfig(window_accesses=400, max_windows=8,
                                min_windows=4),
    )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One archived sampled sweep + ledger, read with telemetry unset."""
    root = tmp_path_factory.mktemp("serve-root")
    saved = {name: os.environ.get(name)
             for name in ("REPRO_TRACE_STORE", "REPRO_QUEUE_DIR",
                          "REPRO_TELEMETRY", "REPRO_TELEMETRY_DIR")}
    os.environ["REPRO_TRACE_STORE"] = str(root / "store")
    os.environ["REPRO_QUEUE_DIR"] = str(root / "queue")
    os.environ["REPRO_TELEMETRY"] = "1"
    os.environ["REPRO_TELEMETRY_DIR"] = str(root / "telemetry")
    try:
        spec = sampled_spec()
        service = SweepService()
        token = service.submit(spec).token
        resultset = service.run(spec)
        # The read side must work with the telemetry switch absent.
        del os.environ["REPRO_TELEMETRY"]
        model = ReadModel(queue_dir=root / "queue",
                          telemetry_dir=root / "telemetry")
        yield SimpleNamespace(root=root, token=token, resultset=resultset,
                              model=model)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def get_json(model, path, query=None):
    response = handle_request(model, path, query or {})
    assert response.content_type.startswith("application/json")
    return response.status, json.loads(response.body.decode("utf-8"))


def get_svg(model, path, query=None):
    response = handle_request(model, path, query or {})
    assert response.status == 200, response.body
    assert response.content_type.startswith("image/svg+xml")
    return ET.fromstring(response.body.decode("utf-8"))


# --------------------------------------------------------------------- #
# Read model
# --------------------------------------------------------------------- #
class TestReadModel:
    def test_telemetry_switch_is_unset(self, served):
        assert "REPRO_TELEMETRY" not in os.environ

    def test_sweeps_merges_archive_and_jobstore(self, served):
        data = served.model.sweeps()
        assert data["available"]
        (sweep,) = [s for s in data["sweeps"] if s["token"] == served.token]
        assert sweep["archived"] and sweep["complete"]
        assert sweep["records"] == sweep["total"] == len(served.resultset)
        assert sweep["jobs"]["counts"]["failed"] == 0
        assert sweep["jobs"]["unfinished"] == 0

    def test_sweep_detail_resolves_prefix(self, served):
        detail = served.model.sweep(served.token[:8])
        assert detail["token"] == served.token
        assert len(detail["results"]) == len(served.resultset)
        assert detail["jobs"]["counts"]["done"] == detail["jobs"]["total"]

    def test_queue_overview_and_token_views(self, served):
        overview = served.model.queue()
        assert overview["available"]
        assert served.token in [s["token"] for s in overview["sweeps"]]
        assert overview["unfinished"] == 0
        detail = served.model.queue(token=served.token[:8])
        assert detail["token"] == served.token
        assert detail["counts"]["done"] == detail["total"] > 0
        assert all(job["state"] == "done" for job in detail["jobs"])
        assert detail["workers"]["available"]

    def test_runs_listing_and_sweep_summary(self, served):
        runs = served.model.runs(limit=100)
        assert runs["available"] and runs["runs"]
        detail = served.model.run_detail(served.token)
        assert detail["scope"] == "sweep"
        assert detail["summary"]["runs"] == len(detail["runs"])
        assert detail["summary"]["errors"] == 0
        assert "measure" in detail["summary"]["phases"]
        assert detail["summary"]["accesses_per_sec"] > 0

    def test_run_detail_includes_manifest(self, served):
        run_id = served.model.runs(limit=1)["runs"][0]["run_id"]
        detail = served.model.run_detail(run_id)
        assert detail["scope"] == "run"
        assert detail["runs"][0]["phases"]
        manifest = detail["manifest"]
        assert manifest is not None and manifest["events"]

    def test_figure_source_defaults_to_latest_archived(self, served):
        meta, resultset = served.model.figure_source()
        assert meta["token"] == served.token
        assert resultset == served.resultset


# --------------------------------------------------------------------- #
# Handler-level API (no socket)
# --------------------------------------------------------------------- #
class TestApi:
    def test_health(self, served):
        status, data = get_json(served.model, "/api/health")
        assert status == 200 and data["ok"]
        assert data["stores"] == {"jobs": True, "archive": True,
                                  "ledger": True}

    def test_sweeps_endpoints(self, served):
        status, data = get_json(served.model, "/api/sweeps")
        assert status == 200 and data["sweeps"]
        status, detail = get_json(served.model,
                                  f"/api/sweeps/{served.token[:8]}")
        assert status == 200
        assert len(detail["results"]) == len(served.resultset)

    def test_runs_endpoints(self, served):
        status, data = get_json(served.model, "/api/runs",
                                {"limit": ["5"]})
        assert status == 200 and len(data["runs"]) <= 5
        status, detail = get_json(served.model,
                                  f"/api/runs/{served.token}")
        assert status == 200 and detail["scope"] == "sweep"
        status, error = get_json(served.model, "/api/runs/zzzzzz")
        assert status == 404 and "error" in error

    def test_queue_endpoint(self, served):
        status, data = get_json(served.model, "/api/queue",
                                {"token": [served.token]})
        assert status == 200
        assert data["counts"]["done"] == data["total"]

    def test_figure_catalog_and_unknown(self, served):
        status, data = get_json(served.model, "/api/figures")
        assert status == 200
        assert {f["name"] for f in data["figures"]} == {"fig6", "fig7",
                                                        "compare"}
        status, error = get_json(served.model, "/api/figures/fig99")
        assert status == 404 and "fig99" in error["error"]

    def test_bad_limit_is_400(self, served):
        status, error = get_json(served.model, "/api/runs",
                                 {"limit": ["lots"]})
        assert status == 400 and "limit" in error["error"]

    def test_dashboard_html(self, served):
        response = handle_request(served.model, "/")
        assert response.status == 200
        page = response.body.decode("utf-8")
        assert response.content_type.startswith("text/html")
        assert "/api/queue" in page and "/api/figures/" in page


# --------------------------------------------------------------------- #
# Figures: one bar per design, CI numbers exactly equal to the archive
# --------------------------------------------------------------------- #
def bars_by_series(svg):
    return {rect.get("data-series"): rect
            for rect in svg.iter(f"{SVG_NS}rect")
            if rect.get("data-series") is not None}

class TestFigures:
    def test_fig6_matches_resultset_exactly(self, served):
        svg = get_svg(served.model, "/api/figures/fig6")
        bars = bars_by_series(svg)
        assert set(bars) == set(served.resultset.designs)
        for result in served.resultset:
            rect = bars[result.design]
            assert float(rect.get("data-mean")) == result.miss_ratio
            assert (float(rect.get("data-half-width"))
                    == result.extra["sampling_miss_ratio_half_width"])
            assert result.extra["sampling_miss_ratio_half_width"] > 0

    def test_fig7_matches_resultset_exactly(self, served):
        svg = get_svg(served.model, "/api/figures/fig7")
        bars = bars_by_series(svg)
        for result in served.resultset:
            if result.speedup_vs_no_cache is None:
                continue
            rect = bars[result.design]
            assert (float(rect.get("data-mean"))
                    == result.speedup_vs_no_cache)
            assert (float(rect.get("data-half-width"))
                    == result.extra["sampling_speedup_half_width"])

    def test_fig6_has_error_bar_whiskers(self, served):
        svg = get_svg(served.model, "/api/figures/fig6")
        lines = list(svg.iter(f"{SVG_NS}line"))
        # Per sampled bar: one vertical whisker plus two caps, on top of
        # the two axes and the gridlines.
        designs = len(served.resultset.designs)
        assert len(lines) >= 3 * designs + 2

    def test_compare_figure(self, served):
        run_id = served.model.runs(limit=1)["runs"][0]["run_id"]
        svg = get_svg(served.model, "/api/figures/compare",
                      {"a": [served.token], "b": [run_id]})
        assert bars_by_series(svg)
        status, error = get_json(served.model, "/api/figures/compare")
        assert status == 400

    def test_renderer_handles_empty_and_zero(self):
        svg = render_grouped_bars("empty", "y", [])
        ET.fromstring(svg)
        svg = render_grouped_bars(
            "zeros", "y", [BarGroup("g", (Bar("s", 0.0),))])
        root = ET.fromstring(svg)
        assert bars_by_series(root)["s"].get("data-mean") == "0.0"


# --------------------------------------------------------------------- #
# Missing stores degrade instead of crashing
# --------------------------------------------------------------------- #
class TestEmptyRoot:
    def test_listing_endpoints_answer_200(self, tmp_path):
        model = ReadModel.at_root(tmp_path / "nowhere")
        for path in ("/api/sweeps", "/api/queue", "/api/runs"):
            status, data = get_json(model, path)
            assert status == 200
            assert data["available"] is False
        status, _ = get_json(model, "/api/figures/fig6")
        assert status == 404


# --------------------------------------------------------------------- #
# Ledger edge cases the server hits
# --------------------------------------------------------------------- #
def minimal_run(run_id, sweep=None, phases=None, metrics=None):
    return {
        "run_id": run_id,
        "kind": "trial",
        "labels": {"sweep": sweep, "design": "unison"},
        "started_at": 1.0,
        "finished_at": 2.0,
        "wall_seconds": 1.0,
        "status": "ok",
        "phases": phases or {},
        "metrics": metrics or {},
    }


class TestLedgerEdges:
    @pytest.fixture
    def telemetry_dir(self, tmp_path):
        return tmp_path / "telemetry"

    @pytest.fixture
    def model(self, tmp_path, telemetry_dir):
        return ReadModel(queue_dir=tmp_path / "queue",
                         telemetry_dir=telemetry_dir)

    def test_ambiguous_run_prefix_is_400(self, model, telemetry_dir):
        with RunLedger(telemetry_dir / "ledger.sqlite") as ledger:
            ledger.record_run(minimal_run("abc111"))
            ledger.record_run(minimal_run("abc222"))
            with pytest.raises(ValueError):
                ledger.resolve("abc")
        status, error = get_json(model, "/api/runs/abc")
        assert status == 400
        assert "ambiguous" in error["error"]

    def test_summarize_zero_measure_accesses(self, model, telemetry_dir):
        with RunLedger(telemetry_dir / "ledger.sqlite") as ledger:
            ledger.record_run(minimal_run(
                "idle01",
                phases={"measure": (0.5, 1, None)},
                metrics={"accesses": 0.0},
            ))
            _, rows = ledger.resolve("idle01")
            summary = summarize(ledger, rows)
        assert "accesses_per_sec" not in summary
        status, detail = get_json(model, "/api/runs/idle01")
        assert status == 200
        assert "accesses_per_sec" not in detail["summary"]

    def test_torn_manifest_tail_served(self, model, telemetry_dir):
        with RunLedger(telemetry_dir / "ledger.sqlite") as ledger:
            ledger.record_run(minimal_run("torn01"))
        manifests = telemetry_dir / "manifests"
        manifests.mkdir(parents=True)
        (manifests / "torn01.jsonl").write_text(
            json.dumps({"kind": "run_start"}) + "\n"
            + json.dumps({"kind": "window", "index": 0}) + "\n"
            + '{"kind": "run_end", "trunc',  # crashed writer
            encoding="utf-8",
        )
        status, detail = get_json(model, "/api/runs/torn01")
        assert status == 200
        events = detail["manifest"]["events"]
        assert [e["kind"] for e in events] == ["run_start", "window"]


# --------------------------------------------------------------------- #
# End to end over a real socket
# --------------------------------------------------------------------- #
class TestSocket:
    def test_serve_round_trip(self, served):
        server = create_server(host="127.0.0.1", port=0, root=served.root,
                               quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = server.url
            with urllib.request.urlopen(base + "api/sweeps") as reply:
                assert reply.status == 200
                data = json.loads(reply.read().decode("utf-8"))
            assert served.token in [s["token"] for s in data["sweeps"]]
            with urllib.request.urlopen(base + "api/figures/fig6") as reply:
                assert reply.status == 200
                assert "svg+xml" in reply.headers["Content-Type"]
                ET.fromstring(reply.read().decode("utf-8"))
            with urllib.request.urlopen(base) as reply:
                assert reply.status == 200
                assert "dashboard" in reply.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
