"""Tests for workload profiles and the synthetic trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.record import MemoryAccess
from repro.workloads.cloudsuite import (
    ALL_WORKLOADS,
    CLOUDSUITE_WORKLOADS,
    data_analytics,
    tpch_queries,
    web_search,
    workload_by_name,
)
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile


class TestWorkloadProfile:
    def test_derived_quantities(self):
        profile = WorkloadProfile(name="x", working_set="4MB")
        assert profile.working_set_bytes == 4 * 1024 ** 2
        assert profile.num_regions == 1024
        assert profile.blocks_per_region == 64

    def test_scaled_preserves_other_fields(self):
        profile = web_search().scaled("1MB")
        assert profile.working_set_bytes == 1024 ** 2
        assert profile.name == "Web Search"
        assert profile.footprint_density == web_search().footprint_density

    @pytest.mark.parametrize("field,value", [
        ("footprint_density", 0.0),
        ("footprint_density", 1.5),
        ("footprint_noise", -0.1),
        ("singleton_fraction", 2.0),
        ("temporal_reuse", -1.0),
        ("write_fraction", 1.5),
        ("region_zipf_alpha", -0.1),
        ("num_code_regions", 0),
        ("pc_locality_run", 0),
        ("l2_mpki", 0.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = {"name": "x", "working_set": "1MB", field: value}
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_region_size_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", working_set="1MB", region_size=100)


class TestCloudSuiteProfiles:
    def test_six_workloads_total(self):
        assert len(CLOUDSUITE_WORKLOADS) == 5
        assert len(ALL_WORKLOADS) == 6

    def test_lookup_by_name_case_insensitive(self):
        assert workload_by_name("web search").name == "Web Search"
        assert workload_by_name("TPC-H Queries").name == "TPC-H Queries"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("SPEC CPU")

    def test_data_analytics_has_lowest_spatial_locality(self):
        densities = {w.name: w.footprint_density for w in ALL_WORKLOADS}
        assert min(densities, key=densities.get) == "Data Analytics"

    def test_tpch_has_largest_working_set(self):
        sizes = {w.name: w.working_set_bytes for w in ALL_WORKLOADS}
        assert max(sizes, key=sizes.get) == "TPC-H Queries"
        assert tpch_queries().working_set_bytes > 8 * 1024 ** 3

    def test_all_profiles_validate(self):
        for profile in ALL_WORKLOADS:
            assert profile.num_regions > 0
            assert 0 < profile.footprint_density <= 1


class TestSyntheticWorkload:
    def test_deterministic_for_same_seed(self, tiny_profile):
        a = SyntheticWorkload(tiny_profile, num_cores=4, seed=3).generate(500)
        b = SyntheticWorkload(tiny_profile, num_cores=4, seed=3).generate(500)
        assert a == b

    def test_different_seeds_differ(self, tiny_profile):
        a = SyntheticWorkload(tiny_profile, num_cores=4, seed=3).generate(500)
        b = SyntheticWorkload(tiny_profile, num_cores=4, seed=4).generate(500)
        assert a != b

    def test_requested_count_produced(self, tiny_profile):
        assert len(SyntheticWorkload(tiny_profile).generate(777)) == 777

    def test_negative_count_rejected(self, tiny_profile):
        with pytest.raises(ValueError):
            SyntheticWorkload(tiny_profile).generate(-1)

    def test_invalid_core_count_rejected(self, tiny_profile):
        with pytest.raises(ValueError):
            SyntheticWorkload(tiny_profile, num_cores=0)

    def test_addresses_stay_within_working_set(self, tiny_profile):
        trace = SyntheticWorkload(tiny_profile, seed=1).generate(2000)
        limit = tiny_profile.num_regions * tiny_profile.region_size
        assert all(0 <= a.address < limit for a in trace)

    def test_all_cores_emit_accesses(self, tiny_profile):
        trace = SyntheticWorkload(tiny_profile, num_cores=8, seed=1).generate(4000)
        assert {a.core_id for a in trace} == set(range(8))

    def test_timestamps_non_negative_and_bounded(self, tiny_profile):
        trace = SyntheticWorkload(tiny_profile, seed=1).generate(1000)
        assert all(a.timestamp >= 0 for a in trace)

    def test_write_fraction_roughly_respected(self, tiny_profile):
        trace = SyntheticWorkload(tiny_profile, seed=1).generate(8000)
        writes = sum(1 for a in trace if a.is_write)
        assert abs(writes / len(trace) - tiny_profile.write_fraction) < 0.08

    def test_spatial_locality_scales_with_density(self):
        def page_spread(profile):
            trace = SyntheticWorkload(profile, num_cores=1, seed=5).generate(5000)
            pages = {a.address // 960 for a in trace}
            return len(pages) / len(trace)

        dense = WorkloadProfile(name="dense", working_set="2MB",
                                footprint_density=0.9, singleton_fraction=0.0)
        sparse = WorkloadProfile(name="sparse", working_set="2MB",
                                 footprint_density=0.15, singleton_fraction=0.0)
        # Dense traversals touch many blocks per page, so they visit fewer
        # distinct pages per access than sparse ones.
        assert page_spread(dense) < page_spread(sparse)

    def test_pc_footprint_correlation_exists(self, tiny_profile):
        """The same PC should touch a similar number of blocks per region visit."""
        trace = SyntheticWorkload(tiny_profile, num_cores=1, seed=2).generate(6000)
        from collections import defaultdict

        per_pc_regions = defaultdict(lambda: defaultdict(set))
        for access in trace:
            region = access.address // tiny_profile.region_size
            offset = (access.address % tiny_profile.region_size) // 64
            per_pc_regions[access.pc][region].add(offset)
        # For PCs with several traversals, footprint sizes should cluster.
        consistent = 0
        candidates = 0
        for pc, regions in per_pc_regions.items():
            sizes = [len(offsets) for offsets in regions.values()]
            if len(sizes) >= 3:
                candidates += 1
                spread = max(sizes) - min(sizes)
                if spread <= max(4, 0.5 * max(sizes)):
                    consistent += 1
        assert candidates > 0
        assert consistent / candidates > 0.5

    def test_iterator_interface_matches_generate(self, tiny_profile):
        workload_a = SyntheticWorkload(tiny_profile, seed=9)
        workload_b = SyntheticWorkload(tiny_profile, seed=9)
        assert list(workload_a.accesses(300)) == workload_b.generate(300)

    @given(st.integers(1, 6), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_property_counts_and_types(self, cores, seed):
        profile = WorkloadProfile(name="p", working_set="1MB",
                                  num_code_regions=16)
        trace = SyntheticWorkload(profile, num_cores=cores, seed=seed).generate(200)
        assert len(trace) == 200
        assert all(isinstance(a, MemoryAccess) for a in trace)
        assert all(a.core_id < cores for a in trace)
