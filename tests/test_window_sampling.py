"""Tests for window planning, the windowed sampler, and sweep wiring."""

import pytest

from repro.sampling import SamplingConfig, WindowedSampler, plan_windows
from repro.sampling.windows import PLACEMENT_RANDOM, PLACEMENT_SYSTEMATIC
from repro.sim.executor import run_sweep, run_trial
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.spec import ExperimentSpec, SweepSpec


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(scale=4096, num_accesses=24_000, num_cores=4,
                            seed=5)


@pytest.fixture(scope="module")
def fast_sampling():
    return SamplingConfig(window_accesses=1_000, warmup_accesses=1_000,
                          checkpoint_accesses=4_000, min_windows=3,
                          max_windows=6)


class TestSamplingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(window_accesses=0)
        with pytest.raises(ValueError):
            SamplingConfig(min_windows=5, max_windows=4)
        with pytest.raises(ValueError):
            SamplingConfig(placement="haphazard")
        with pytest.raises(ValueError):
            SamplingConfig(target_relative_error=0.0)

    def test_hashable_and_frozen(self):
        config = SamplingConfig()
        assert hash(config) == hash(SamplingConfig())
        with pytest.raises(AttributeError):
            config.seed = 3


class TestPlanWindows:
    def test_systematic_spans_region_without_overlap(self):
        config = SamplingConfig(window_accesses=1_000, warmup_accesses=500,
                                checkpoint_accesses=5_000, max_windows=10)
        plan = plan_windows(90_000, 2.0 / 3.0, config)
        region_start = 60_000
        assert plan.checkpoint_stop == region_start
        assert plan.checkpoint_start == region_start - 5_000
        assert len(plan.windows) == 10
        assert plan.windows[0].start == region_start
        assert plan.windows[-1].stop == 90_000
        for earlier, later in zip(plan.windows, plan.windows[1:]):
            assert earlier.stop <= later.start  # non-overlapping
        for window in plan.windows:
            assert window.warmup_start >= plan.checkpoint_stop
            assert window.warmup_start <= window.start

    def test_random_placement_is_seeded(self):
        config = SamplingConfig(placement=PLACEMENT_RANDOM, seed=7,
                                max_windows=8)
        one = plan_windows(100_000, 0.5, config)
        two = plan_windows(100_000, 0.5, config)
        assert one == two
        other = plan_windows(
            100_000, 0.5,
            SamplingConfig(placement=PLACEMENT_RANDOM, seed=8, max_windows=8),
        )
        assert one.windows != other.windows

    def test_random_placement_stays_in_region(self):
        config = SamplingConfig(placement=PLACEMENT_RANDOM, seed=3,
                                window_accesses=2_000, max_windows=12)
        plan = plan_windows(120_000, 2.0 / 3.0, config)
        for window in plan.windows:
            assert 80_000 <= window.start
            assert window.stop <= 120_000

    def test_measurement_order_is_shuffled_and_deterministic(self):
        config = SamplingConfig(max_windows=20)
        plan = plan_windows(500_000, 2.0 / 3.0, config)
        assert sorted(plan.order) == list(range(len(plan.windows)))
        assert plan.order == plan_windows(500_000, 2.0 / 3.0, config).order
        assert plan.order != tuple(range(len(plan.windows)))

    def test_degenerate_small_trace_collapses_to_one_window(self):
        config = SamplingConfig(window_accesses=50_000)
        plan = plan_windows(3_000, 2.0 / 3.0, config)
        assert len(plan.windows) == 1
        assert plan.windows[0].start == 2_000
        assert plan.windows[0].stop == 3_000

    def test_simulated_accesses_accounting(self):
        config = SamplingConfig(window_accesses=1_000, warmup_accesses=500,
                                checkpoint_accesses=4_000, max_windows=5)
        plan = plan_windows(60_000, 2.0 / 3.0, config)
        per_window = [plan.windows[i].simulated_accesses for i in plan.order]
        assert plan.simulated_accesses(0) == 4_000
        assert plan.simulated_accesses(2) == 4_000 + sum(per_window[:2])
        assert plan.sampled_fraction(len(plan.windows)) < 1.0


class TestWindowedSampler:
    def test_deterministic(self, fast_config, fast_sampling, tiny_profile):
        sampler = WindowedSampler(fast_sampling, config=fast_config)
        one = sampler.compare(["unison"], tiny_profile, "1GB")
        two = sampler.compare(["unison"], tiny_profile, "1GB")
        assert one.results()[0] == two.results()[0]
        assert one.measured == two.measured

    def test_matched_windows_across_designs(self, fast_config, fast_sampling,
                                            tiny_profile):
        run = WindowedSampler(fast_sampling, config=fast_config).compare(
            ["unison", "alloy"], tiny_profile, "1GB")
        unison = run.designs["unison"].series["miss_ratio"]
        alloy = run.designs["alloy"].series["miss_ratio"]
        assert unison.indices() == alloy.indices()
        delta = run.delta("speedup_vs_no_cache", "unison", "alloy")
        assert len(delta) == run.windows_measured

    def test_sampled_fraction_below_one(self, fast_config, fast_sampling,
                                        tiny_profile):
        run = WindowedSampler(fast_sampling, config=fast_config).compare(
            ["unison"], tiny_profile, "1GB")
        assert 0.0 < run.sampled_fraction < 1.0
        assert run.results()[0].extra["sampling_fraction"] == run.sampled_fraction

    def test_zero_variance_stops_at_min_windows(self, fast_config,
                                                tiny_profile):
        """no_cache misses every access and its speedup against itself is
        exactly 1.0, so both tracked series are constant and the adaptive
        stopper must terminate at min_windows."""
        sampling = SamplingConfig(window_accesses=500, warmup_accesses=500,
                                  checkpoint_accesses=2_000, min_windows=2,
                                  max_windows=8)
        run = WindowedSampler(sampling, config=fast_config).compare(
            ["no_cache"], tiny_profile, "1GB")
        assert run.windows_measured == 2
        assert run.converged

    def test_sampled_agrees_loosely_with_full_replay(self, fast_config,
                                                     tiny_profile):
        """Sanity at unit-test scale: the sampled estimate must land in the
        right neighbourhood of the full replay (tight agreement is the
        benchmark suite's job)."""
        runner = ExperimentRunner(fast_config)
        trace = runner.build_trace(tiny_profile)
        full = runner.run_design("unison", tiny_profile, "1GB", trace=trace)
        sampling = SamplingConfig(window_accesses=2_000,
                                  warmup_accesses=1_000,
                                  checkpoint_accesses=6_000,
                                  min_windows=4, max_windows=4)
        sampled = WindowedSampler(sampling, config=fast_config).run_design(
            "unison", tiny_profile, "1GB", trace=trace)
        assert abs(sampled.miss_ratio - full.miss_ratio) < 0.1
        assert abs(sampled.speedup_vs_no_cache - full.speedup_vs_no_cache) \
            < 0.15 * full.speedup_vs_no_cache

    def test_binary_trace_file_windows_seekably(self, fast_config,
                                                fast_sampling, tiny_profile,
                                                tmp_path):
        from repro.trace.binfmt import write_trace_bin
        from repro.workloads.tracefile import TraceFileWorkload

        runner = ExperimentRunner(fast_config)
        trace = runner.build_trace(tiny_profile)
        path = tmp_path / "w.rptr"
        write_trace_bin(path, trace, num_cores=4, compress=False)
        workload = TraceFileWorkload(path=str(path))

        sampler = WindowedSampler(fast_sampling, config=fast_config)
        from_file = sampler.compare(["unison"], workload, "1GB")
        in_memory = sampler.compare(["unison"], workload, "1GB", trace=trace)
        file_result = from_file.results()[0]
        mem_result = in_memory.results()[0]
        assert file_result.miss_ratio == mem_result.miss_ratio
        assert file_result.speedup_vs_no_cache == mem_result.speedup_vs_no_cache

    def test_label_and_duplicate_validation(self, fast_config, fast_sampling,
                                            tiny_profile):
        sampler = WindowedSampler(fast_sampling, config=fast_config)
        with pytest.raises(ValueError, match="duplicate"):
            sampler.compare(["unison", "unison"], tiny_profile, "1GB")
        run = sampler.compare(["unison", "unison"], tiny_profile, "1GB",
                              labels=["a", "b"])
        assert set(run.designs) == {"a", "b"}


class TestSweepWiring:
    def test_spec_sampling_axis(self, fast_config, fast_sampling,
                                tiny_profile):
        spec = SweepSpec(
            designs=("unison",),
            workloads=(tiny_profile,),
            capacities=("1GB",),
            config=fast_config,
            sampling=fast_sampling,
        )
        for trial in spec.trials():
            assert trial.sampling == fast_sampling

    def test_override_can_mix_full_and_sampled(self, fast_config,
                                               fast_sampling, tiny_profile):
        spec = SweepSpec(
            designs=("unison",),
            workloads=(tiny_profile,),
            capacities=("1GB",),
            config=fast_config,
            overrides=(
                {"label": "full"},
                {"label": "sampled", "sampling": fast_sampling},
            ),
        )
        trials = spec.trials()
        assert trials[0].sampling is None
        assert trials[1].sampling == fast_sampling

        results = run_sweep(spec)
        by_design = {r.design: r for r in results}
        assert "sampling_windows" not in by_design["full"].extra
        assert by_design["sampled"].extra["sampling_windows"] >= 3
        assert by_design["sampled"].accesses_measured \
            < by_design["full"].accesses_measured

    def test_sampling_mapping_coerced(self, fast_config, tiny_profile):
        spec = ExperimentSpec(
            design="unison", workload=tiny_profile, capacity="1GB",
            config=fast_config,
            sampling={"window_accesses": 500, "max_windows": 6},
        )
        assert isinstance(spec.sampling, SamplingConfig)
        assert spec.sampling.window_accesses == 500

    def test_invalid_sampling_rejected(self, fast_config, tiny_profile):
        with pytest.raises(ValueError, match="sampling"):
            ExperimentSpec(design="unison", workload=tiny_profile,
                           capacity="1GB", config=fast_config,
                           sampling="yes please")

    def test_serial_parallel_identical(self, fast_config, fast_sampling,
                                       tiny_profile):
        spec = SweepSpec(
            designs=("unison", "alloy"),
            workloads=(tiny_profile,),
            capacities=("1GB",),
            config=fast_config,
            sampling=fast_sampling,
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial == parallel

    def test_run_trial_sampled_result_round_trips(self, fast_config,
                                                  fast_sampling,
                                                  tiny_profile, tmp_path):
        from repro.sim.resultset import ResultSet

        trial = ExperimentSpec(design="unison", workload=tiny_profile,
                               capacity="1GB", config=fast_config,
                               sampling=fast_sampling)
        result = run_trial(trial)
        results = ResultSet([result])
        path = tmp_path / "sampled.json"
        results.to_json(path)
        assert ResultSet.from_json(path) == results
