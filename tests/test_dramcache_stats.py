"""Tests for the shared DRAM-cache statistics record and base-class behaviour."""

import pytest

from repro.baselines.no_cache import NoDramCache
from repro.dramcache.stats import DramCacheStats
from repro.trace.record import MemoryAccess


class TestDramCacheStats:
    def test_empty_ratios_are_zero(self):
        stats = DramCacheStats()
        assert stats.miss_ratio == 0.0
        assert stats.hit_ratio == 0.0
        assert stats.average_access_latency == 0.0
        assert stats.offchip_blocks_per_access == 0.0

    def test_hit_miss_accounting(self):
        stats = DramCacheStats()
        stats.record_hit(40, is_write=False)
        stats.record_hit(60, is_write=True)
        stats.record_miss(200, is_write=False)
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.miss_ratio == pytest.approx(1 / 3)
        assert stats.average_hit_latency == pytest.approx(50.0)
        assert stats.average_miss_latency == pytest.approx(200.0)
        assert stats.average_access_latency == pytest.approx(100.0)
        assert stats.read_accesses == 2
        assert stats.write_accesses == 1

    def test_offchip_traffic_totals(self):
        stats = DramCacheStats()
        stats.offchip_demand_blocks = 5
        stats.offchip_prefetch_blocks = 10
        stats.offchip_writeback_blocks = 3
        stats.record_miss(100, False)
        assert stats.offchip_total_blocks == 18
        assert stats.offchip_blocks_per_access == 18.0

    def test_reset_clears_everything(self):
        stats = DramCacheStats(name="x")
        stats.record_hit(10, False)
        stats.offchip_demand_blocks = 7
        stats.extra["row_hits"] = 3
        stats.reset()
        assert stats.accesses == 0
        assert stats.offchip_demand_blocks == 0
        assert stats.extra["row_hits"] == 0
        assert stats.name == "x"

    def test_stats_group_flattening(self):
        stats = DramCacheStats(name="unison")
        stats.record_hit(10, False)
        stats.extra["foo"] = 1
        group = stats.stats()
        assert group.get("hits") == 1
        assert group.get("extra.foo") == 1
        assert group.name == "unison"


class TestBaseModelBehaviour:
    def test_run_and_warm_up(self):
        design = NoDramCache()
        trace = [MemoryAccess(address=i * 64, pc=0x400000) for i in range(50)]
        design.warm_up(trace[:30])
        assert design.cache_stats.accesses == 0      # warm-up stats discarded
        stats = design.run(trace[30:])
        assert stats.accesses == 20

    def test_invalid_capacity_rejected(self):
        from repro.baselines.ideal import IdealCache

        with pytest.raises(ValueError):
            IdealCache(capacity=0)

    def test_describe_mentions_capacity(self):
        from repro.baselines.ideal import IdealCache

        assert "ideal" in IdealCache(capacity="1GB").describe()

    def test_closed_loop_clock_advances(self):
        design = NoDramCache()
        design.access(MemoryAccess(address=0, pc=0))
        first_now = design._now
        design.access(MemoryAccess(address=64, pc=0))
        assert design._now > first_now

    def test_stats_include_device_groups(self):
        design = NoDramCache()
        design.access(MemoryAccess(address=0, pc=0))
        group = design.stats()
        assert any(key.startswith("main_memory.") for key in group.as_dict())
        assert any(key.startswith("no_cache.") for key in group.as_dict())
