"""Tests for capacity parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("0B", 0),
        ("64B", 64),
        ("1KB", 1024),
        ("960B", 960),
        ("1.5KB", 1536),
        ("128MB", 128 * 1024 ** 2),
        ("1GB", 1024 ** 3),
        ("8GB", 8 * 1024 ** 3),
        ("2TB", 2 * 1024 ** 4),
        ("1GiB", 1024 ** 3),
        ("1 gb", 1024 ** 3),
    ])
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_integer_passthrough(self):
        assert parse_size(4096) == 4096

    def test_plain_number_string(self):
        assert parse_size("4096") == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            parse_size(True)

    def test_bad_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_size("3 parsecs")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("GB1")

    def test_non_integral_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3B")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            parse_size(3.5)


class TestFormatSize:
    @pytest.mark.parametrize("value,expected", [
        (0, "0B"),
        (64, "64B"),
        (1024, "1KB"),
        (1536, "1.5KB"),
        (128 * 1024 ** 2, "128MB"),
        (1024 ** 3, "1GB"),
        (8 * 1024 ** 3, "8GB"),
        (1024 ** 4, "1TB"),
    ])
    def test_exact_values(self, value, expected):
        assert format_size(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    @given(st.integers(0, 2 ** 50))
    def test_round_trip_within_rounding(self, value):
        formatted = format_size(value)
        parsed = parse_size(formatted)
        # Two-decimal formatting loses at most 1% of the magnitude.
        assert abs(parsed - value) <= max(1, value * 0.01)

    @given(st.sampled_from(["KB", "MB", "GB", "TB"]), st.integers(1, 512))
    def test_exact_units_round_trip(self, unit, count):
        text = f"{count}{unit}"
        assert format_size(parse_size(text)) == text
