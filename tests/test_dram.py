"""Tests for the DRAM timing model: timings, banks, channels, controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.system import SystemConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.bank import Bank, BankState
from repro.dram.channel import Channel
from repro.dram.controller import DramController
from repro.dram.timing import DramTimings


@pytest.fixture
def timings():
    return DramTimings()


class TestDramTimings:
    def test_defaults_match_table_iii(self, timings):
        assert timings.t_cas == 11
        assert timings.t_rcd == 11
        assert timings.t_rp == 11
        assert timings.t_ras == 28
        assert timings.t_rc == 39
        assert timings.t_faw == 24

    def test_from_channel_config(self):
        stacked = SystemConfig().stacked_dram
        timings = DramTimings.from_channel_config(stacked)
        assert timings.bus_width_bits == 128
        assert timings.frequency_mhz == 1600.0

    def test_data_cycles(self, timings):
        # 128-bit DDR bus: 32 bytes per bus cycle.
        assert timings.data_cycles(64) == 2
        assert timings.data_cycles(32) == 1
        assert timings.data_cycles(1) == 1
        assert timings.data_cycles(0) == 0

    def test_burst_bytes(self, timings):
        assert timings.burst_bytes == 128

    def test_cpu_cycle_conversion(self, timings):
        # 3 GHz CPU over 1.6 GHz DRAM: 1.875 CPU cycles per DRAM cycle.
        assert timings.cpu_cycles(16, cpu_frequency_ghz=3.0) == 30

    def test_invalid_trc(self):
        with pytest.raises(ValueError):
            DramTimings(t_rc=10, t_ras=28)

    def test_invalid_bus_width(self):
        with pytest.raises(ValueError):
            DramTimings(bus_width_bits=12)


class TestBank:
    def test_first_access_is_row_miss(self, timings):
        bank = Bank(timings)
        result = bank.access(row=5, now=0)
        assert not result.row_hit
        assert not result.row_conflict
        assert bank.state is BankState.ACTIVE
        # Activate + CAS before data appears.
        assert result.data_start_cycle >= timings.t_rcd + timings.t_cas

    def test_second_access_same_row_hits(self, timings):
        bank = Bank(timings)
        first = bank.access(row=5, now=0)
        second = bank.access(row=5, now=first.data_start_cycle + 4)
        assert second.row_hit
        assert second.data_start_cycle < first.data_start_cycle + 4 + timings.t_rcd + timings.t_cas

    def test_conflict_requires_precharge(self, timings):
        bank = Bank(timings)
        bank.access(row=5, now=0)
        later = 200
        conflict = bank.access(row=9, now=later)
        assert conflict.row_conflict
        assert conflict.data_start_cycle >= later + timings.t_rp + timings.t_rcd + timings.t_cas

    def test_activation_counting(self, timings):
        bank = Bank(timings)
        bank.access(row=1, now=0)
        bank.access(row=1, now=100)
        bank.access(row=2, now=400)
        assert bank.activations == 2
        assert bank.row_hits == 1
        assert bank.row_conflicts == 1

    def test_trc_enforced_between_activations(self, timings):
        bank = Bank(timings)
        first = bank.access(row=1, now=0)
        conflict = bank.access(row=2, now=1)
        # The second activation cannot complete before tRC from the first.
        assert conflict.data_start_cycle >= timings.t_rc

    def test_negative_row_rejected(self, timings):
        with pytest.raises(ValueError):
            Bank(timings).access(row=-1, now=0)

    def test_is_row_open(self, timings):
        bank = Bank(timings)
        assert not bank.is_row_open(3)
        bank.access(row=3, now=0)
        assert bank.is_row_open(3)
        assert not bank.is_row_open(4)


class TestChannel:
    def test_parallel_banks_independent_rows(self, timings):
        channel = Channel(timings, num_banks=8)
        a = channel.access(bank_index=0, row=1, num_bytes=64, now=0)
        b = channel.access(bank_index=1, row=1, num_bytes=64, now=0)
        # Bank 1's activate is delayed only by tRRD, not by a full access.
        assert b.data_start_cycle - a.data_start_cycle <= timings.t_rrd + timings.data_cycles(64)

    def test_faw_limits_burst_of_activates(self, timings):
        channel = Channel(timings, num_banks=8)
        results = [channel.access(bank_index=i, row=1, num_bytes=64, now=0)
                   for i in range(5)]
        # The fifth activate must wait for the tFAW window of the first four.
        assert results[4].data_start_cycle >= timings.t_faw

    def test_data_bus_serializes_transfers(self, timings):
        channel = Channel(timings, num_banks=2)
        first = channel.access(0, row=1, num_bytes=4096, now=0)
        second = channel.access(1, row=1, num_bytes=64, now=0)
        assert second.data_start_cycle >= first.completion_cycle

    def test_row_buffer_hit_tracked(self, timings):
        channel = Channel(timings, num_banks=1)
        channel.access(0, row=7, num_bytes=64, now=0)
        hit = channel.access(0, row=7, num_bytes=64, now=500)
        assert hit.row_hit
        assert channel.total_activations == 1

    def test_statistics(self, timings):
        channel = Channel(timings, num_banks=2)
        channel.access(0, row=1, num_bytes=64, now=0)
        channel.access(1, row=1, num_bytes=32, now=0, is_write=True)
        assert channel.reads == 1
        assert channel.writes == 1
        assert channel.bytes_transferred == 96

    def test_bad_bank_index(self, timings):
        with pytest.raises(IndexError):
            Channel(timings, num_banks=2).access(5, row=0, num_bytes=64, now=0)

    def test_invalid_bank_count(self, timings):
        with pytest.raises(ValueError):
            Channel(timings, num_banks=0)


class TestAddressMapping:
    def test_decompose_fields_in_range(self):
        mapping = AddressMapping(num_channels=4, banks_per_channel=8, row_bytes=8192)
        coords = mapping.decompose(123456789)
        assert 0 <= coords.channel < 4
        assert 0 <= coords.bank < 8
        assert 0 <= coords.column_byte < 8192

    def test_consecutive_rows_interleave_channels(self):
        mapping = AddressMapping(num_channels=4, banks_per_channel=8, row_bytes=8192)
        channels = [mapping.decompose(i * 8192).channel for i in range(8)]
        assert channels[:4] == [0, 1, 2, 3]

    def test_row_base_address_inverse(self):
        mapping = AddressMapping(num_channels=4, banks_per_channel=8, row_bytes=8192)
        for address in (0, 8192, 5 * 8192, 1234 * 8192):
            coords = mapping.decompose(address)
            assert mapping.row_base_address(coords) == address

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AddressMapping(num_channels=0, banks_per_channel=8, row_bytes=8192)

    @given(st.integers(0, 2 ** 45))
    @settings(max_examples=50)
    def test_property_round_trip(self, address):
        mapping = AddressMapping(num_channels=4, banks_per_channel=8, row_bytes=8192)
        coords = mapping.decompose(address)
        assert mapping.row_base_address(coords) + coords.column_byte == address


class TestDramController:
    def test_latency_reasonable_for_stacked_dram(self):
        controller = DramController(SystemConfig().stacked_dram)
        result = controller.access(address=0, num_bytes=64, now_cpu=0)
        # Row activation + CAS + transfer at 1.875 CPU cycles per DRAM cycle:
        # roughly (11 + 11 + 2) * 1.875 = 45 CPU cycles.
        assert 30 <= result.latency_cpu_cycles <= 70
        assert result.activated

    def test_row_hit_is_faster(self):
        controller = DramController(SystemConfig().stacked_dram)
        miss = controller.access(address=0, num_bytes=64, now_cpu=0)
        hit = controller.access(address=64, num_bytes=64, now_cpu=1000)
        assert hit.row_hit
        assert hit.latency_cpu_cycles < miss.latency_cpu_cycles

    def test_offchip_slower_than_stacked(self):
        system = SystemConfig()
        stacked = DramController(system.stacked_dram)
        offchip = DramController(system.offchip_dram)
        assert (offchip.access(0, 64, 0).latency_cpu_cycles
                > stacked.access(0, 64, 0).latency_cpu_cycles)

    def test_statistics_accumulate(self):
        controller = DramController(SystemConfig().stacked_dram)
        controller.access(0, 64, 0)
        controller.access(8192, 64, 0, is_write=True)
        stats = controller.stats()
        assert stats.get("requests") == 2
        assert stats.get("reads") == 1
        assert stats.get("writes") == 1
        assert stats.get("bytes_transferred") == 128

    def test_row_of_distinguishes_rows(self):
        controller = DramController(SystemConfig().stacked_dram)
        assert controller.row_of(0) == controller.row_of(4096)
        assert controller.row_of(0) != controller.row_of(8192)

    def test_invalid_bytes(self):
        controller = DramController(SystemConfig().stacked_dram)
        with pytest.raises(ValueError):
            controller.access(0, 0, 0)
