"""Cross-design property tests.

Every DRAM cache design must uphold a handful of invariants regardless of the
request stream: statistics must add up, off-chip traffic must be attributable,
latencies must be positive, and the functional contents must respect the
configured capacity.  These properties are checked over randomized traces for
all designs through the common :class:`DramCacheModel` interface.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.factory import make_design
from repro.trace.record import AccessType, MemoryAccess

DESIGNS = ("unison", "unison-dm", "unison-1984", "alloy", "footprint",
           "ideal", "no_cache")


def _random_trace(draw_data, max_blocks=4096, size=200):
    blocks = draw_data.draw(
        st.lists(st.integers(0, max_blocks), min_size=1, max_size=size)
    )
    pcs = draw_data.draw(
        st.lists(st.integers(0, 15), min_size=len(blocks), max_size=len(blocks))
    )
    writes = draw_data.draw(
        st.lists(st.booleans(), min_size=len(blocks), max_size=len(blocks))
    )
    return [
        MemoryAccess(
            address=block * 64,
            pc=0x400000 + pc * 4,
            access_type=AccessType.WRITE if write else AccessType.READ,
            core_id=index % 4,
            timestamp=index,
        )
        for index, (block, pc, write) in enumerate(zip(blocks, pcs, writes))
    ]


@pytest.mark.parametrize("design_name", DESIGNS)
class TestDesignInvariants:
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_accounting_invariants(self, design_name, data):
        trace = _random_trace(data)
        design = make_design(design_name, "128MB", scale=2048, num_cores=4)
        results = [design.access(request) for request in trace]
        stats = design.cache_stats

        # Every request is accounted exactly once.
        assert stats.accesses == len(trace)
        assert stats.hits + stats.misses == len(trace)
        assert stats.read_accesses + stats.write_accesses == len(trace)

        # Ratios stay within [0, 1] and are consistent with each other.
        assert 0.0 <= stats.miss_ratio <= 1.0
        assert stats.miss_ratio + stats.hit_ratio == pytest.approx(
            1.0 if stats.accesses else 0.0
        )

        # Latencies are non-negative, and every reported hit/miss latency sum
        # matches what the per-access results said.
        assert all(r.latency_cycles >= 0 for r in results)
        assert stats.total_hit_latency == sum(
            r.latency_cycles for r in results if r.hit
        )
        assert stats.total_miss_latency == sum(
            r.latency_cycles for r in results if not r.hit
        )

        # Off-chip traffic reported by the memory device covers what the
        # design claims to have fetched and written back.
        if design_name != "ideal":
            assert design.memory.blocks_read >= stats.offchip_demand_blocks
        assert design.memory.blocks_written >= stats.offchip_writeback_blocks

    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_warm_up_resets_only_statistics(self, design_name, data):
        trace = _random_trace(data, size=100)
        design = make_design(design_name, "128MB", scale=2048, num_cores=4)
        design.warm_up(trace)
        assert design.cache_stats.accesses == 0
        # Re-running the same trace after warm-up can only improve (or keep)
        # the hit ratio for caching designs, and keeps ratios well-formed.
        design.run(trace)
        assert design.cache_stats.accesses == len(trace)
        assert 0.0 <= design.cache_stats.miss_ratio <= 1.0

    def test_repeated_single_block_eventually_hits(self, design_name):
        design = make_design(design_name, "128MB", scale=2048, num_cores=4)
        request = MemoryAccess(address=64 * 123, pc=0x400010)
        design.access(request)
        second = design.access(request)
        if design_name == "no_cache":
            assert not second.hit
        else:
            assert second.hit

    def test_determinism_across_instances(self, design_name):
        trace = [
            MemoryAccess(address=(i * 37 % 997) * 64, pc=0x400000 + (i % 5) * 4,
                         core_id=i % 4, timestamp=i)
            for i in range(300)
        ]
        a = make_design(design_name, "128MB", scale=2048, num_cores=4)
        b = make_design(design_name, "128MB", scale=2048, num_cores=4)
        a.run(trace)
        b.run(list(trace))
        assert a.cache_stats.miss_ratio == b.cache_stats.miss_ratio
        assert a.cache_stats.offchip_total_blocks == b.cache_stats.offchip_total_blocks
