"""Durable work-queue tests: job store, sweep service, workers, crash resume.

The centerpiece is the acceptance scenario: a worker process SIGKILLed
mid-sweep, after which ``repro queue resume`` picks the sweep up from the
on-disk job store and produces a ResultSet bit-identical to the serial
executor's -- re-executing only the jobs that were in flight when the
worker died.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.queue import (
    DONE,
    FAILED,
    JobStore,
    LEASED,
    PENDING,
    PlannedJob,
    ResultArchive,
    SweepService,
    plan_sweep,
)
from repro.sampling.windows import SamplingConfig
from repro.sim.executor import SweepExecutor, run_trial
from repro.sim.experiment import ExperimentConfig
from repro.sim.spec import SweepSpec

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def queue_root(tmp_path, monkeypatch):
    """A private trace-store root per test: traces, checkpoints, and queue."""
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
    return tmp_path


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        designs=("unison", "alloy"),
        workloads=("Web Search",),
        capacities=("512MB",),
        config=ExperimentConfig(scale=4096, num_accesses=2000),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def sampled_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        designs=("unison", "alloy"),
        workloads=("Web Search",),
        capacities=("512MB",),
        config=ExperimentConfig(scale=2048, num_accesses=12_000),
        sampling=SamplingConfig(window_accesses=400, max_windows=24,
                                min_windows=4),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def planned(n: int) -> list:
    return [
        PlannedJob(key=f"key-{i}", trial_index=i, part=0, kind="trial",
                   trace_group="g", payload=b"payload-%d" % i)
        for i in range(n)
    ]


# --------------------------------------------------------------------- #
# JobStore
# --------------------------------------------------------------------- #
class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            assert store.submit("tok", "d", None, planned(3)) == 3
            assert store.submit("tok", "d", None, planned(3)) == 0
            assert store.counts("tok")[PENDING] == 3

    def test_lease_complete_lifecycle(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(1))
            job = store.lease("owner-a", lease_seconds=60)
            assert job is not None and job.state == LEASED
            assert job.attempts == 1
            assert store.lease("owner-b", lease_seconds=60) is None
            assert store.complete("tok", job.seq, b"result", "owner-a")
            done = store.done_jobs("tok")
            assert [j.result for j in done] == [b"result"]
            assert store.unfinished("tok") == 0

    def test_late_completion_after_lease_theft_is_noop(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(1))
            job = store.lease("slow", lease_seconds=0.0)
            theft = store.lease("fast", lease_seconds=60)
            assert theft is not None and theft.attempts == 2
            assert not store.complete("tok", job.seq, b"late", "slow")
            assert store.complete("tok", theft.seq, b"fresh", "fast")
            assert store.done_jobs("tok")[0].result == b"fresh"

    def test_fail_retries_with_backoff_then_fails(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(1), max_attempts=2)
            job = store.lease("w", 60, now=0.0)
            assert store.fail("tok", job.seq, "boom", "w", now=0.0)
            # Back off: not leasable immediately, leasable after the delay.
            assert store.lease("w", 60, now=0.5) is None
            job = store.lease("w", 60, now=10.0)
            assert job is not None and job.attempts == 2
            assert store.fail("tok", job.seq, "boom again", "w", now=10.0)
            assert store.counts("tok")[FAILED] == 1
            assert store.lease("w", 60, now=100.0) is None
            assert "boom again" in store.failed_jobs("tok")[0].error

    def test_recover_returns_expired_leases_to_pending(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(2))
            store.lease("crashed-elsewhere", lease_seconds=5.0, now=0.0)
            assert store.recover(now=1.0, reclaim_dead=False) == 0
            assert store.recover(now=10.0, reclaim_dead=False) == 1
            assert store.counts("tok")[PENDING] == 2

    def test_recover_reclaims_dead_local_owner_immediately(self, tmp_path):
        # A real PID that provably exited: spawn-and-reap a child.
        child = subprocess.Popen(["sleep", "0"])
        child.wait()
        import socket

        dead_owner = f"{socket.gethostname()}:{child.pid}:abc123"
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(1))
            job = store.lease(dead_owner, lease_seconds=3600.0)
            assert job.state == LEASED
            # The lease is nowhere near expiry, but the owner is dead.
            assert store.recover() == 1
            assert store.counts("tok")[PENDING] == 1

    def test_live_owner_lease_is_not_reclaimed(self, tmp_path):
        import socket

        live_owner = f"{socket.gethostname()}:{os.getpid()}:abc123"
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, planned(1))
            store.lease(live_owner, lease_seconds=3600.0)
            assert store.recover() == 0
            assert store.counts("tok")[LEASED] == 1

    def test_prefer_group_affinity(self, tmp_path):
        jobs = [
            PlannedJob(key=f"k{i}", trial_index=i, part=0, kind="trial",
                       trace_group=group, payload=b"p")
            for i, group in enumerate(["a", "b", "a"])
        ]
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit("tok", "d", None, jobs)
            first = store.lease("w", 60)
            assert first.trace_group == "a"
            # Seq order would give the "b" job next; affinity skips to "a".
            second = store.lease("w", 60, prefer_group="a")
            assert second.trace_group == "a" and second.trial_index == 2

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with JobStore(path) as store:
            store._conn.execute("UPDATE meta SET value = '999'"
                                " WHERE key = 'schema_version'")
            store._conn.commit()
        with pytest.raises(ValueError, match="schema v999"):
            JobStore(path)


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #
class TestPlanning:
    def test_plan_token_is_deterministic(self, queue_root):
        spec = tiny_spec()
        assert plan_sweep(spec).token == plan_sweep(spec).token
        other = tiny_spec(config=ExperimentConfig(scale=4096,
                                                  num_accesses=2000, seed=2))
        assert plan_sweep(other).token != plan_sweep(spec).token

    def test_full_replay_trials_plan_one_job_each(self, queue_root):
        plan = plan_sweep(tiny_spec())
        assert [job.kind for job in plan.jobs] == ["trial", "trial"]
        assert [job.trial_index for job in plan.jobs] == [0, 1]

    def test_sampled_trials_decompose_into_window_batches(self, queue_root):
        plan = plan_sweep(sampled_spec())
        kinds = {job.kind for job in plan.jobs}
        assert kinds == {"windows"}
        per_trial = {}
        for job in plan.jobs:
            per_trial[job.trial_index] = per_trial.get(job.trial_index, 0) + 1
        # Each sampled cell spreads over several jobs.
        assert all(count > 1 for count in per_trial.values())


# --------------------------------------------------------------------- #
# SweepService end to end
# --------------------------------------------------------------------- #
class TestSweepService:
    def test_run_matches_serial_bit_identical(self, queue_root):
        spec = tiny_spec()
        serial = SweepExecutor(workers=1).run(spec)
        queued = SweepService().run(spec)
        assert queued == serial

    def test_sampled_run_matches_serial_bit_identical(self, queue_root):
        spec = sampled_spec()
        serial = SweepExecutor(workers=1).run(spec)
        queued = SweepService().run(spec)
        assert queued == serial

    def test_multiworker_run_matches_serial(self, queue_root):
        spec = sampled_spec()
        serial = SweepExecutor(workers=1).run(spec)
        queued = SweepService().run(spec, workers=2)
        assert queued == serial

    def test_executor_queue_parameter_routes_to_service(self, queue_root):
        spec = tiny_spec()
        serial = SweepExecutor(workers=1).run(spec)
        queued = SweepExecutor(workers=1, queue=SweepService()).run(spec)
        assert queued == serial

    def test_resubmitting_completed_sweep_runs_zero_jobs(self, queue_root,
                                                         monkeypatch):
        spec = tiny_spec()
        service = SweepService()
        first = service.submit(spec)
        assert first.new_jobs == first.total_jobs == 2
        service.run(spec)
        again = service.submit(spec)
        assert again.new_jobs == 0

        # Nothing executes on a re-run: poison the executor to prove it.
        import repro.queue.worker as worker_module

        def explode(payload):
            raise AssertionError("a completed sweep must not re-execute jobs")

        monkeypatch.setattr(worker_module, "execute_job", explode)
        rerun = service.run(spec)
        assert rerun == service.assemble(spec)
        with service.store() as store:
            assert all(job.attempts == 1
                       for job in store.done_jobs(first.token))

    def test_progress_fires_once_per_trial(self, queue_root):
        spec = tiny_spec()
        calls = []
        SweepService().run(
            spec, progress=lambda i, n, t: calls.append((i, n)))
        assert sorted(calls) == [(0, 2), (1, 2)]

    def test_archive_roundtrips_resultset(self, queue_root):
        spec = tiny_spec()
        service = SweepService()
        results = service.run(spec)
        token = plan_sweep(spec).token
        with service.archive() as archive:
            assert archive.get(token) == results
            assert archive.count(token) == len(results) == 2

    def test_worker_retries_transient_failure(self, queue_root, monkeypatch):
        import repro.queue.worker as worker_module

        spec = tiny_spec()
        service = SweepService()
        real = worker_module.execute_job
        state = {"failed": False}

        def flaky(payload):
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("transient worker failure")
            return real(payload)

        monkeypatch.setattr(worker_module, "execute_job", flaky)
        results = service.run(spec)
        assert results == SweepExecutor(workers=1).run(spec)
        with service.store() as store:
            attempts = [job.attempts
                        for job in store.done_jobs(plan_sweep(spec).token)]
        assert sorted(attempts) == [1, 2]

    def test_permanent_failure_surfaces_in_assemble(self, queue_root,
                                                    monkeypatch):
        import repro.queue.worker as worker_module

        spec = tiny_spec()
        service = SweepService(max_attempts=1)
        monkeypatch.setattr(
            worker_module, "execute_job",
            lambda payload: (_ for _ in ()).throw(RuntimeError("always")))
        with pytest.raises(RuntimeError, match="permanently failed"):
            service.run(spec)

    def test_resume_by_token_alone(self, queue_root):
        spec = tiny_spec()
        service = SweepService()
        token = service.submit(spec).token
        serial = SweepExecutor(workers=1).run(spec)
        assert service.resume(token) == serial


# --------------------------------------------------------------------- #
# kill -9 a worker mid-sweep, then resume
# --------------------------------------------------------------------- #
class TestCrashResume:
    def _spawn_worker(self, root, throttle: float) -> subprocess.Popen:
        env = dict(os.environ, REPRO_TRACE_STORE=str(root),
                   PYTHONPATH=REPO_SRC)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "queue", "work",
             "--throttle", str(throttle)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def test_sigkilled_worker_resumes_bit_identical(self, queue_root):
        spec = sampled_spec()
        serial = SweepExecutor(workers=1).run(spec)

        service = SweepService()
        outcome = service.submit(spec)
        assert outcome.total_jobs >= 4

        worker = self._spawn_worker(queue_root, throttle=0.5)
        try:
            deadline = time.time() + 120.0
            while time.time() < deadline:
                with service.store() as store:
                    counts = store.counts(outcome.token)
                if counts[DONE] >= 1 and counts[DONE] < outcome.total_jobs:
                    break
                assert worker.poll() is None, "worker drained too fast"
                time.sleep(0.02)
            else:
                pytest.fail("worker never completed a job in time")
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.wait()

        with service.store() as store:
            before = {job.seq: job.attempts
                      for job in store.done_jobs(outcome.token)}
        assert before, "at least one job completed before the kill"

        resumed = service.run(spec)
        assert resumed == serial

        with service.store() as store:
            done = store.done_jobs(outcome.token)
            assert len(done) == outcome.total_jobs
            # Jobs finished before the kill were NOT re-executed: their
            # attempt counters are untouched.  Only in-flight jobs may
            # carry an extra (reclaimed) attempt.
            for job in done:
                if job.seq in before:
                    assert job.attempts == before[job.seq]

    def test_cli_resume_after_sigkill(self, queue_root):
        spec = tiny_spec()
        serial = SweepExecutor(workers=1).run(spec)
        service = SweepService()
        token = service.submit(spec).token

        worker = self._spawn_worker(queue_root, throttle=10.0)
        try:
            deadline = time.time() + 120.0
            while time.time() < deadline:
                with service.store() as store:
                    if store.counts(token)[DONE] >= 1:
                        break
                assert worker.poll() is None, "worker drained too fast"
                time.sleep(0.02)
            else:
                pytest.fail("worker never completed a job in time")
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.wait()

        out = queue_root / "resumed.json"
        env = dict(os.environ, REPRO_TRACE_STORE=str(queue_root),
                   PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "queue", "resume", token,
             "--quiet", "--json", str(out)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        from repro.sim.resultset import ResultSet

        assert ResultSet.from_json(out) == serial


# --------------------------------------------------------------------- #
# CLI verbs
# --------------------------------------------------------------------- #
class TestQueueCli:
    def test_submit_status_work_resume(self, queue_root, capsys):
        from repro.cli import main

        grid = ["--designs", "unison", "--workloads", "Web Search",
                "--capacities", "512MB", "--scale", "4096",
                "--accesses", "2000"]
        assert main(["queue", "submit"] + grid) == 0
        token = capsys.readouterr().out.split()[1]

        assert main(["queue", "status"]) == 0
        assert token in capsys.readouterr().out

        assert main(["queue", "work"]) == 0
        assert "executed 1 jobs" in capsys.readouterr().out

        assert main(["queue", "status", token]) == 0
        assert "all 1 jobs done" in capsys.readouterr().out

        assert main(["queue", "resume", token, "--quiet"]) == 0
        assert "unison" in capsys.readouterr().out

    def test_work_alias(self, queue_root, capsys):
        from repro.cli import main

        assert main(["work", "--max-jobs", "0"]) == 0
        assert "executed 0 jobs" in capsys.readouterr().out

    def test_status_unknown_token(self, queue_root, capsys):
        from repro.cli import main

        assert main(["queue", "status", "deadbeef"]) == 1


# --------------------------------------------------------------------- #
# Satellite: executor crash tolerance and completion-driven progress
# --------------------------------------------------------------------- #
def _exit_batch(trials):
    os._exit(1)  # simulate a worker hard-killed mid-batch


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=True) not in (None, "fork")
    or not hasattr(os, "fork"),
    reason="fork start method required to inherit monkeypatched functions",
)


class TestExecutorCrashTolerance:
    @needs_fork
    def test_broken_pool_reruns_lost_batches_serially(self, queue_root,
                                                      monkeypatch):
        import repro.sim.executor as executor_module

        spec = tiny_spec()
        serial = SweepExecutor(workers=1).run(spec)
        monkeypatch.setattr(executor_module, "_run_trial_batch", _exit_batch)
        calls = []
        results = SweepExecutor(
            workers=2, progress=lambda i, n, t: calls.append(i)).run(spec)
        assert results == serial
        assert sorted(calls) == [0, 1]

    @needs_fork
    def test_deterministic_crash_names_the_trial(self, queue_root,
                                                 monkeypatch):
        import repro.sim.executor as executor_module

        spec = tiny_spec()
        monkeypatch.setattr(executor_module, "_run_trial_batch", _exit_batch)

        def always_raises(trial):
            raise RuntimeError("simulated deterministic crash")

        monkeypatch.setattr(executor_module, "run_trial", always_raises)
        with pytest.raises(RuntimeError,
                           match=r"trial 0 .* crashed the worker pool"):
            SweepExecutor(workers=2).run(spec)

    def test_parallel_progress_is_completion_driven(self, queue_root):
        spec = tiny_spec(capacities=("256MB", "512MB"))
        calls = []
        results = SweepExecutor(
            workers=2, progress=lambda i, n, t: calls.append((i, n))).run(spec)
        assert len(results) == 4
        assert sorted(calls) == [(0, 4), (1, 4), (2, 4), (3, 4)]


# --------------------------------------------------------------------- #
# Satellite: shared trace+checkpoint GC budget
# --------------------------------------------------------------------- #
class TestSharedGc:
    def test_combined_lru_eviction_across_both_stores(self, tmp_path):
        from repro.sampling.checkpoints import CheckpointStore, shared_gc
        from repro.trace.store import TraceStore

        store = TraceStore(root=tmp_path, max_bytes=None)
        checkpoints = CheckpointStore(tmp_path / "checkpoints")
        checkpoints.root.mkdir(parents=True)

        old_trace = tmp_path / "old.rptr"
        old_trace.write_bytes(b"x" * 100)
        os.utime(old_trace, (1000, 1000))
        old_ckpt = checkpoints.root / "old.ckpt"
        old_ckpt.write_bytes(b"y" * 100)
        os.utime(old_ckpt, (2000, 2000))
        new_ckpt = checkpoints.root / "new.ckpt"
        new_ckpt.write_bytes(b"z" * 100)
        os.utime(new_ckpt, (3000, 3000))

        freed = shared_gc(store, checkpoints, max_bytes=150)
        # LRU across BOTH kinds: the old trace and the old checkpoint go,
        # the newest checkpoint stays.
        assert not old_trace.exists()
        assert not old_ckpt.exists()
        assert new_ckpt.exists()
        assert freed["trace_freed"] == 100
        assert freed["checkpoint_freed"] == 100

    def test_none_budget_only_sweeps_garbage(self, tmp_path):
        from repro.sampling.checkpoints import CheckpointStore, shared_gc
        from repro.trace.store import TraceStore

        store = TraceStore(root=tmp_path, max_bytes=None)
        checkpoints = CheckpointStore(tmp_path / "checkpoints")
        checkpoints.root.mkdir(parents=True)
        keeper = checkpoints.root / "keep.ckpt"
        keeper.write_bytes(b"k" * 50)
        stale = checkpoints.root / "stale.ckpt.tmp"
        stale.write_bytes(b"t" * 70)

        freed = shared_gc(store, checkpoints, max_bytes=None)
        assert keeper.exists()
        assert not stale.exists()
        assert freed["checkpoint_freed"] == 70

    def test_store_info_reports_both_stores(self, queue_root, capsys):
        from repro.cli import main

        assert main(["trace", "store", "info"]) == 0
        out = capsys.readouterr().out
        assert "traces:" in out
        assert "checkpoints:" in out
        assert "shared across traces and checkpoints" in out
