"""Executor <-> TraceStore integration: generate once ever, replay anywhere.

Covers the PR's acceptance criterion: a fig6-style sweep run twice
back-to-back hits the trace store on the second run with zero trace
regenerations and produces bit-identical results to the pure in-memory path,
serially and in parallel.
"""

import pytest

from repro.sim.executor import (
    clear_caches,
    get_trace_store,
    run_sweep,
)
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.spec import SweepSpec
from repro.workloads.generator import SyntheticWorkload


@pytest.fixture
def fig6_spec() -> SweepSpec:
    """A miniature Figure-6-style grid: designs x workloads x capacities."""
    return SweepSpec(
        designs=("unison", "alloy"),
        workloads=("Web Search", "Data Serving"),
        capacities=("256MB", "1GB"),
        config=ExperimentConfig(scale=8192, num_accesses=3000, num_cores=4),
    )


@pytest.fixture
def store_root(tmp_path, monkeypatch):
    root = tmp_path / "store"
    monkeypatch.setenv("REPRO_TRACE_STORE", str(root))
    clear_caches()
    yield root
    clear_caches()


@pytest.fixture
def generation_counter(monkeypatch):
    """Count how many synthetic traces are actually generated."""
    calls = []
    original = SyntheticWorkload.iter_chunks

    def counting(self, count, *args, **kwargs):
        calls.append(count)
        return original(self, count, *args, **kwargs)

    monkeypatch.setattr(SyntheticWorkload, "iter_chunks", counting)
    return calls


class TestStoreBackedSweeps:
    def test_second_run_hits_store_with_zero_regenerations(
            self, fig6_spec, store_root, generation_counter):
        store = get_trace_store()
        assert store is not None and store.root == store_root

        first = run_sweep(fig6_spec)
        distinct_traces = 2  # two workloads; capacities share traces
        assert len(generation_counter) == distinct_traces
        assert store.stats.writes == distinct_traces

        # Simulate a fresh process: in-memory caches gone, store persists.
        clear_caches()
        generation_counter.clear()
        store.stats.hits = store.stats.misses = 0

        second = run_sweep(fig6_spec)
        assert generation_counter == []  # zero regenerations
        assert store.stats.hits == distinct_traces
        assert store.stats.misses == 0
        assert second == first  # bit-identical rows

    def test_store_path_is_bit_identical_to_in_memory_path(
            self, fig6_spec, store_root, monkeypatch):
        with_store = run_sweep(fig6_spec)

        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        clear_caches()
        assert get_trace_store() is None
        without_store = run_sweep(fig6_spec)

        assert with_store == without_store

    def test_parallel_equals_serial_through_store(self, fig6_spec,
                                                  store_root):
        serial = run_sweep(fig6_spec, workers=1)
        clear_caches()
        parallel = run_sweep(fig6_spec, workers=2)
        assert serial == parallel

    def test_store_survives_cache_clear_but_not_store_clear(
            self, fig6_spec, store_root, generation_counter):
        run_sweep(fig6_spec)
        store = get_trace_store()
        assert len(store) == 2

        clear_caches()
        store.clear()
        generation_counter.clear()
        run_sweep(fig6_spec)
        assert len(generation_counter) == 2  # regenerated after wipe

    def test_unwritable_store_falls_back_to_memory(self, fig6_spec,
                                                   monkeypatch, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        monkeypatch.setenv("REPRO_TRACE_STORE", str(blocker / "nested"))
        clear_caches()
        results = run_sweep(fig6_spec)  # must not raise
        assert len(results) == len(fig6_spec)


class TestTraceFileWorkloads:
    def test_trace_file_cell_matches_synthetic_cell(self, tmp_path,
                                                    store_root, tiny_profile):
        """A synthetic trace exported to disk replays identically."""
        config = ExperimentConfig(scale=64, num_accesses=2500, num_cores=4)
        runner = ExperimentRunner(config)
        trace = runner.build_trace(tiny_profile)

        from repro.trace.binfmt import write_trace_bin

        path = tmp_path / "tiny.rptr"
        write_trace_bin(path, trace, num_cores=4)

        synthetic = runner.run_design("unison", tiny_profile, "256MB",
                                      trace=trace)

        from repro.workloads.tracefile import TraceFileWorkload

        replayed = TraceFileWorkload(path=str(path), name=tiny_profile.name,
                                     l2_mpki=tiny_profile.l2_mpki)
        from_file = runner.run_design("unison", replayed, "256MB")
        assert from_file == synthetic

    def test_trace_file_workload_in_sweep_spec(self, tmp_path, store_root,
                                               tiny_profile):
        trace = SyntheticWorkload(tiny_profile, num_cores=4,
                                  seed=1).generate(2000)
        from repro.trace.binfmt import write_trace_bin

        path = tmp_path / "external.rptr"
        write_trace_bin(path, trace, num_cores=4)

        spec = SweepSpec(
            designs=("unison",),
            workloads=(f"trace:{path}", "Web Search"),
            capacities=("256MB",),
            config=ExperimentConfig(scale=8192, num_accesses=2000,
                                    num_cores=4),
        )
        results = run_sweep(spec)
        assert len(results) == 2
        names = {r.workload for r in results}
        assert names == {"external", "Web Search"}

    def test_bare_path_coerces_to_trace_workload(self, tmp_path,
                                                 tiny_profile):
        from repro.trace.binfmt import write_trace_bin
        from repro.sim.spec import ExperimentSpec
        from repro.workloads.tracefile import TraceFileWorkload

        path = tmp_path / "bare.rptr"
        write_trace_bin(path, SyntheticWorkload(
            tiny_profile, num_cores=2, seed=5).generate(100))
        spec = ExperimentSpec(design="unison", workload=str(path),
                              capacity="256MB")
        assert isinstance(spec.workload, TraceFileWorkload)
        assert spec.workload.name == "bare"

    def test_missing_trace_file_fails_at_spec_construction(self):
        with pytest.raises(ValueError, match="not found"):
            SweepSpec(
                designs=("unison",),
                workloads=("trace:/nonexistent/missing.rptr",),
                capacities=("256MB",),
            )

    def test_unknown_name_still_reports_workload_error(self):
        with pytest.raises(ValueError, match="[Uu]nknown workload"):
            SweepSpec(designs=("unison",), workloads=("No Such Workload",),
                      capacities=("256MB",))
