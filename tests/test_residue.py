"""Tests for residue arithmetic and the block-address mapper."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.residue import BlockLocation, ResidueMapper, mod_mersenne


class TestModMersenne:
    @pytest.mark.parametrize("value,n_bits", [
        (0, 4), (14, 4), (15, 4), (16, 4), (12345, 4),
        (0, 5), (31, 5), (62, 5), (10 ** 9, 5),
    ])
    def test_matches_builtin_modulo(self, value, n_bits):
        modulus = (1 << n_bits) - 1
        assert mod_mersenne(value, n_bits) == value % modulus

    def test_invalid_n_bits(self):
        with pytest.raises(ValueError):
            mod_mersenne(10, 1)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            mod_mersenne(-1, 4)

    @given(st.integers(0, 2 ** 60), st.integers(2, 16))
    def test_property_matches_modulo(self, value, n_bits):
        assert mod_mersenne(value, n_bits) == value % ((1 << n_bits) - 1)


class TestResidueMapper:
    def test_valid_construction_for_15_blocks(self):
        mapper = ResidueMapper(blocks_per_page=15, num_sets=128)
        assert mapper.n_bits == 4

    def test_valid_construction_for_31_blocks(self):
        mapper = ResidueMapper(blocks_per_page=31, num_sets=64)
        assert mapper.n_bits == 5

    @pytest.mark.parametrize("blocks", [4, 8, 10, 14, 16, 30])
    def test_non_mersenne_block_counts_rejected(self, blocks):
        with pytest.raises(ValueError):
            ResidueMapper(blocks_per_page=blocks, num_sets=16)

    def test_zero_sets_rejected(self):
        with pytest.raises(ValueError):
            ResidueMapper(blocks_per_page=15, num_sets=0)

    def test_page_and_offset_decomposition(self):
        mapper = ResidueMapper(blocks_per_page=15, num_sets=8)
        assert mapper.page_of(0) == 0
        assert mapper.page_of(14) == 0
        assert mapper.page_of(15) == 1
        assert mapper.block_offset(14) == 14
        assert mapper.block_offset(15) == 0
        assert mapper.block_offset(31) == 1

    def test_set_mapping_wraps(self):
        mapper = ResidueMapper(blocks_per_page=15, num_sets=8)
        assert mapper.set_of_page(0) == 0
        assert mapper.set_of_page(8) == 0
        assert mapper.set_of_page(9) == 1

    def test_locate_returns_consistent_location(self):
        mapper = ResidueMapper(blocks_per_page=15, num_sets=8)
        location = mapper.locate(1234)
        assert isinstance(location, BlockLocation)
        assert location.page_number == 1234 // 15
        assert location.block_offset == 1234 % 15
        assert location.set_index == (1234 // 15) % 8

    def test_negative_addresses_rejected(self):
        mapper = ResidueMapper(blocks_per_page=15, num_sets=8)
        with pytest.raises(ValueError):
            mapper.page_of(-1)
        with pytest.raises(ValueError):
            mapper.set_of_page(-1)

    @given(st.integers(0, 2 ** 40), st.sampled_from([15, 31]), st.integers(1, 4096))
    def test_locate_round_trip(self, block_address, blocks_per_page, num_sets):
        mapper = ResidueMapper(blocks_per_page=blocks_per_page, num_sets=num_sets)
        location = mapper.locate(block_address)
        reconstructed = (location.page_number * blocks_per_page
                         + location.block_offset)
        assert reconstructed == block_address
        assert 0 <= location.block_offset < blocks_per_page
        assert 0 <= location.set_index < num_sets
