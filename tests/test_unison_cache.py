"""Functional and behavioural tests for the Unison Cache model."""

import pytest

from repro.config.cache_configs import UnisonCacheConfig
from repro.core.unison import UnisonCache
from repro.trace.record import AccessType, MemoryAccess
from repro.utils.bitvector import BitVector


def make_cache(**overrides) -> UnisonCache:
    params = dict(capacity=64 * 8192)
    params.update(overrides)
    return UnisonCache(UnisonCacheConfig(**params))


def access_for(cache: UnisonCache, page: int, offset: int, pc: int = 0x400100,
               write: bool = False, core: int = 0) -> MemoryAccess:
    """Build a request that lands on (page, offset) of the cache's mapping."""
    block = page * cache.config.blocks_per_page + offset
    return MemoryAccess(
        address=block * 64,
        pc=pc,
        access_type=AccessType.WRITE if write else AccessType.READ,
        core_id=core,
    )


class TestBasicHitMiss:
    def test_first_access_is_trigger_miss(self):
        cache = make_cache()
        result = cache.access(access_for(cache, page=3, offset=2))
        assert not result.hit
        assert cache.cache_stats.misses == 1
        assert cache.cache_stats.pages_allocated == 1

    def test_footprint_fetch_makes_whole_page_hit(self):
        cache = make_cache()
        cache.access(access_for(cache, page=3, offset=0))     # cold: fetch-all default
        for offset in range(1, 15):
            result = cache.access(access_for(cache, page=3, offset=offset))
            assert result.hit
        assert cache.cache_stats.hits == 14

    def test_hit_latency_below_miss_latency(self):
        cache = make_cache()
        miss = cache.access(access_for(cache, page=5, offset=1))
        hit = cache.access(access_for(cache, page=5, offset=2))
        assert hit.hit and not miss.hit
        assert hit.latency_cycles < miss.latency_cycles

    def test_hit_includes_tag_burst_overhead(self):
        cache = make_cache()
        cache.access(access_for(cache, page=9, offset=0))
        hit = cache.access(access_for(cache, page=9, offset=1))
        assert hit.latency_cycles >= cache.config.tag_read_overhead_cycles

    def test_trigger_miss_fetches_footprint_from_memory(self):
        cache = make_cache()
        result = cache.access(access_for(cache, page=7, offset=0))
        # Cold default prediction fetches the whole 15-block page.
        assert result.offchip_blocks_fetched == 15
        assert cache.memory.blocks_read == 15

    def test_writes_mark_dirty_and_write_back_on_eviction(self):
        cache = make_cache()
        sets = cache.config.num_sets
        victim_page = sets * 10          # maps to set 0
        cache.access(access_for(cache, page=victim_page, offset=0, write=True))
        # Fill set 0 with other pages until the dirty page is evicted.
        for i in range(1, cache.config.associativity + 1):
            cache.access(access_for(cache, page=victim_page + i * sets, offset=0))
        assert cache.memory.blocks_written > 0
        assert cache.cache_stats.offchip_writeback_blocks > 0


class TestFootprintLearning:
    def test_eviction_trains_predictor(self):
        cache = make_cache()
        sets = cache.config.num_sets
        pc = 0x400200
        page = 11
        # Touch only three blocks of the page, then evict it.
        for offset in (2, 3, 4):
            cache.access(access_for(cache, page=page, offset=offset, pc=pc))
        for i in range(1, cache.config.associativity + 1):
            cache.access(access_for(cache, page=page + i * sets, offset=0))
        prediction = cache.footprint_predictor.predict(pc, 2)
        assert prediction.from_history
        assert set(prediction.footprint.indices()) == {2, 3, 4}

    def test_underprediction_fetches_single_block(self):
        cache = make_cache()
        sets = cache.config.num_sets
        pc = 0x400300
        page = 13
        # Train the predictor that this PC touches only block 0.
        cache.access(access_for(cache, page=page, offset=0, pc=pc))
        for i in range(1, cache.config.associativity + 1):
            cache.access(access_for(cache, page=page + i * sets, offset=0))
        # Re-allocate via the trained (non-singleton-aware) PC at offset 0 and
        # then demand an unpredicted block: that is an underprediction miss.
        other_pc = 0x400400
        cache.access(access_for(cache, page=page, offset=0, pc=other_pc))
        before = cache.cache_stats.underprediction_misses
        before_fetched = cache.memory.blocks_read
        result = cache.access(access_for(cache, page=page, offset=9, pc=other_pc))
        if not result.hit:
            assert cache.cache_stats.underprediction_misses == before + 1
            assert cache.memory.blocks_read == before_fetched + 1

    def test_singleton_bypass_does_not_allocate(self):
        cache = make_cache()
        pc = 0x400500
        sets = cache.config.num_sets
        page = 17
        # Train a singleton footprint for (pc, offset 4).
        cache.footprint_predictor.update(pc, 4, BitVector.from_indices(15, [4]))
        allocated_before = cache.cache_stats.pages_allocated
        result = cache.access(access_for(cache, page=page, offset=4, pc=pc))
        assert not result.hit
        assert cache.cache_stats.singleton_bypasses == 1
        assert cache.cache_stats.pages_allocated == allocated_before
        assert result.offchip_blocks_fetched == 1

    def test_singleton_promotion_corrects_predictor(self):
        cache = make_cache()
        pc = 0x400600
        page = 19
        cache.footprint_predictor.update(pc, 4, BitVector.from_indices(15, [4]))
        cache.access(access_for(cache, page=page, offset=4, pc=pc))
        # A second block of the "singleton" page arrives: the singleton table
        # must correct the history entry to a multi-block footprint.
        cache.access(access_for(cache, page=page, offset=6, pc=pc))
        prediction = cache.footprint_predictor.predict(pc, 4)
        assert prediction.footprint.popcount() >= 2


class TestAssociativityAndWayPrediction:
    def test_set_associativity_avoids_direct_mapped_conflicts(self):
        four_way = make_cache(associativity=4)
        direct = make_cache(associativity=1)
        sets_dm = direct.config.num_sets
        # Two pages that conflict in the direct-mapped cache.
        a, b = 1, 1 + sets_dm
        for cache in (four_way, direct):
            for _ in range(4):
                cache.access(access_for(cache, page=a, offset=0))
                cache.access(access_for(cache, page=b, offset=0))
        assert four_way.cache_stats.misses <= direct.cache_stats.misses

    def test_way_predictor_trains_on_repeated_access(self):
        cache = make_cache()
        for _ in range(6):
            cache.access(access_for(cache, page=23, offset=1))
        assert cache.way_prediction_accuracy > 0.5

    def test_direct_mapped_has_no_way_predictor(self):
        cache = make_cache(associativity=1, use_way_prediction=False)
        assert cache.way_predictor is None
        assert cache.way_prediction_accuracy == 1.0

    def test_32_way_configuration_runs(self):
        cache = make_cache(associativity=32)
        for page in range(40):
            cache.access(access_for(cache, page=page, offset=0))
        assert cache.cache_stats.accesses == 40


class TestStatsAndBookkeeping:
    def test_stats_group_contains_predictor_sections(self):
        cache = make_cache()
        cache.access(access_for(cache, page=1, offset=0))
        keys = cache.stats().as_dict()
        assert any(k.startswith("footprint_predictor.") for k in keys)
        assert any(k.startswith("way_predictor.") for k in keys)
        assert any(k.startswith("singleton_table.") for k in keys)

    def test_reset_stats_preserves_contents(self):
        cache = make_cache()
        cache.access(access_for(cache, page=2, offset=0))
        cache.reset_stats()
        assert cache.cache_stats.accesses == 0
        assert cache.access(access_for(cache, page=2, offset=3)).hit

    def test_capacity_bounded_page_count(self):
        cache = make_cache()
        for page in range(cache.config.num_pages * 2):
            cache.access(access_for(cache, page=page, offset=0))
        resident = sum(
            1 for set_frames in cache._frames for f in set_frames if f.valid
        )
        assert resident <= cache.config.num_pages

    def test_stacked_dram_sees_traffic(self):
        cache = make_cache()
        cache.access(access_for(cache, page=1, offset=0))
        cache.access(access_for(cache, page=1, offset=1))
        assert cache.stacked.bytes_transferred > 0
        assert cache.stacked.row_activations > 0
