"""Tests for external-format ingestion (ChampSim, CSV, gem5) and conversion."""

import gzip

import pytest

from repro.trace.adapters import (
    FORMATS,
    convert_trace,
    detect_format,
    iter_champsim,
    iter_csv,
    iter_gem5,
    open_trace,
)
from repro.trace.binfmt import read_trace_bin, write_trace_bin
from repro.trace.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess


class TestChampSim:
    def test_basic_lines(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text(
            "# comment\n"
            "0x400000 0x1000 R\n"
            "400004 2000 W\n"          # hex without 0x prefix
            "400008 3000 L 2\n"        # load + core column
            "40000c 4000 S 3 77\n"     # store + core + cycle
        )
        accesses = list(iter_champsim(path))
        assert [a.pc for a in accesses] == [0x400000, 0x400004, 0x400008,
                                            0x40000C]
        assert [a.address for a in accesses] == [0x1000, 0x2000, 0x3000,
                                                 0x4000]
        assert [a.access_type for a in accesses] == [
            AccessType.READ, AccessType.WRITE, AccessType.READ,
            AccessType.WRITE,
        ]
        assert [a.core_id for a in accesses] == [0, 0, 2, 3]
        # auto-increment, then the explicit cycle column takes over
        assert [a.timestamp for a in accesses] == [0, 1, 2, 77]

    def test_timestamps_resume_after_explicit_cycle(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text("0 1000 R 0 50\n0 2000 R\n")
        accesses = list(iter_champsim(path))
        assert [a.timestamp for a in accesses] == [50, 51]

    def test_numeric_type_codes(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text("0 1000 0\n0 2000 1\n")
        accesses = list(iter_champsim(path))
        assert [a.is_write for a in accesses] == [False, True]

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.champsim"
        path.write_text("0x400000 0x1000 R\nonly two\n")
        with pytest.raises(TraceFormatError) as exc_info:
            list(iter_champsim(path))
        assert exc_info.value.line == 2
        assert str(path) in str(exc_info.value)

    def test_bad_access_type(self, tmp_path):
        path = tmp_path / "bad.champsim"
        path.write_text("0x400000 0x1000 X\n")
        with pytest.raises(TraceFormatError, match="access type"):
            list(iter_champsim(path))

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "t.champsim.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0x400000 0x1000 R\n")
        accesses = list(iter_champsim(path))
        assert accesses == [MemoryAccess(address=0x1000, pc=0x400000)]


class TestCsv:
    def test_full_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "timestamp,core,type,pc,address\n"
            "5,1,W,0x400000,0x1000\n"
            "9,0,read,0x400004,8192\n"
        )
        accesses = list(iter_csv(path))
        assert accesses == [
            MemoryAccess(address=0x1000, pc=0x400000,
                         access_type=AccessType.WRITE, core_id=1,
                         timestamp=5),
            MemoryAccess(address=8192, pc=0x400004, timestamp=9),
        ]

    def test_address_only(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("address\n0x1000\n0x2000\n")
        accesses = list(iter_csv(path))
        assert [a.address for a in accesses] == [0x1000, 0x2000]
        assert [a.timestamp for a in accesses] == [0, 1]  # auto-increment
        assert all(a.access_type is AccessType.READ for a in accesses)

    def test_missing_address_column(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("pc,type\n0x400000,R\n")
        with pytest.raises(TraceFormatError, match="'address' column"):
            list(iter_csv(path))

    def test_bad_cell_reports_location(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("address\n0x1000\nnot-a-number\n")
        with pytest.raises(TraceFormatError) as exc_info:
            list(iter_csv(path))
        assert exc_info.value.line == 3

    def test_blank_rows_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("address\n0x1000\n\n0x2000\n")
        assert len(list(iter_csv(path))) == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        assert list(iter_csv(path)) == []


GEM5_DUMP = """\
info: Entering event queue @ 0.  Starting simulation...
   1000: system.cpu0.dcache: ReadReq addr=0x2a40 size 64
   1005: system.ruby.seq: some unrelated debug line
   1010: system.mem_ctrls: Write of size 64 on address 0x1f80
   1020: system.cpu1.icache: IFetch address 0x400100 size 8
   1030: system.cpu3.dcache: WritebackDirty addr 0x7f00 size 64
warn: something noisy
"""


class TestGem5:
    def test_memory_access_lines(self, tmp_path):
        path = tmp_path / "run.gem5"
        path.write_text(GEM5_DUMP)
        accesses = list(iter_gem5(path))
        assert [a.address for a in accesses] == [0x2A40, 0x1F80, 0x400100,
                                                 0x7F00]
        assert [a.access_type for a in accesses] == [
            AccessType.READ, AccessType.WRITE, AccessType.READ,
            AccessType.WRITE,
        ]
        # Core ids recovered from the cpuN path component; tick = timestamp.
        assert [a.core_id for a in accesses] == [0, 0, 1, 3]
        assert [a.timestamp for a in accesses] == [1000, 1010, 1020, 1030]

    def test_response_commands_not_double_counted(self, tmp_path):
        path = tmp_path / "run.gem5"
        path.write_text(
            "  10: system.l2: ReadReq addr=0x100 size 64\n"
            "  20: system.l2: ReadResp addr=0x100 size 64\n"
            "  30: system.l2: WriteReq addr=0x200 size 64\n"
            "  40: system.l2: WriteResp addr=0x200 size 64\n"
        )
        accesses = list(iter_gem5(path))
        # One transaction each, even though both sides were logged.
        assert [a.address for a in accesses] == [0x100, 0x200]

    def test_noise_only_file_rejected(self, tmp_path):
        path = tmp_path / "run.gem5"
        path.write_text("info: banner\nwarn: no accesses here\n")
        with pytest.raises(TraceFormatError, match="no memory accesses"):
            list(iter_gem5(path))

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "run.gem5.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(GEM5_DUMP)
        assert len(list(iter_gem5(path))) == 4

    def test_round_trip_through_binary(self, tmp_path):
        src = tmp_path / "run.gem5"
        src.write_text(GEM5_DUMP)
        dst = tmp_path / "run.rptr"
        count = convert_trace(src, dst)
        assert count == 4
        assert list(read_trace_bin(dst)) == list(iter_gem5(src))

    def test_registered_and_detected(self, tmp_path):
        assert FORMATS["gem5"].writable is False
        assert detect_format(tmp_path / "x.gem5") == "gem5"
        src = tmp_path / "t.gem5"
        src.write_text(GEM5_DUMP)
        assert len(list(open_trace(src))) == 4


class TestDetection:
    def test_binary_detected_by_magic(self, tmp_path):
        path = tmp_path / "weird.csv"  # suffix lies; magic wins
        write_trace_bin(path, [MemoryAccess(address=0, pc=0)])
        assert detect_format(path) == "binary"

    @pytest.mark.parametrize("name,expected", [
        ("t.rptr", "binary"), ("t.bin", "binary"),
        ("t.trace", "text"), ("t.txt", "text"), ("t.txt.gz", "text"),
        ("t.champsim", "champsim"), ("t.champsimtrace", "champsim"),
        ("t.csv", "csv"), ("t.csv.gz", "csv"),
        ("t.unknown", "text"),
    ])
    def test_suffix_detection(self, tmp_path, name, expected):
        assert detect_format(tmp_path / name) == expected

    def test_registry_suffixes_are_disjoint(self):
        seen = {}
        for fmt in FORMATS.values():
            for suffix in fmt.suffixes:
                assert suffix not in seen
                seen[suffix] = fmt.name


class TestConvert:
    def test_champsim_to_binary_to_text(self, tmp_path):
        src = tmp_path / "t.champsim"
        src.write_text("0x400000 0x1000 R\n0x400004 0x2000 W\n")
        binary = tmp_path / "t.rptr"
        assert convert_trace(src, binary) == 2
        loaded = read_trace_bin(binary)
        assert loaded == list(iter_champsim(src))

        text = tmp_path / "t.trace"
        assert convert_trace(binary, text) == 2
        assert list(open_trace(text)) == loaded

    def test_convert_limit(self, tmp_path):
        src = tmp_path / "t.csv"
        src.write_text("address\n" + "\n".join(hex(i) for i in range(50)))
        dst = tmp_path / "t.rptr"
        assert convert_trace(src, dst, limit=10) == 10
        assert len(read_trace_bin(dst)) == 10

    def test_binary_to_binary_preserves_core_count(self, tmp_path):
        from repro.trace.binfmt import read_header

        src = tmp_path / "src.rptr"
        write_trace_bin(src, [MemoryAccess(address=i, pc=0, core_id=i % 8)
                              for i in range(16)], num_cores=8)
        dst = tmp_path / "dst.rptr"
        convert_trace(src, dst, limit=10)
        assert read_header(dst).num_cores == 8

    def test_negative_field_reports_location(self, tmp_path):
        path = tmp_path / "neg.champsim"
        path.write_text("0x400000 0x1000 R\n-beef 1000 R\n")
        with pytest.raises(TraceFormatError) as exc_info:
            list(iter_champsim(path))
        assert exc_info.value.line == 2
        assert str(path) in str(exc_info.value)

    def test_csv_negative_field_reports_location(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("address,core\n0x1000,0\n0x2000,-3\n")
        with pytest.raises(TraceFormatError) as exc_info:
            list(iter_csv(path))
        assert exc_info.value.line == 3

    def test_convert_to_readonly_format_rejected(self, tmp_path):
        src = tmp_path / "t.rptr"
        write_trace_bin(src, [MemoryAccess(address=0, pc=0)])
        with pytest.raises(ValueError, match="ingestion-only"):
            convert_trace(src, tmp_path / "out.csv")

    def test_unknown_format_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            convert_trace(tmp_path / "a", tmp_path / "b",
                          in_format="etrace")
