"""Tests for counters, ratios, groups, confidence intervals and histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval
from repro.stats.counters import Counter, RatioStat, StatGroup
from repro.stats.histogram import Histogram


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("hits").value == 0

    def test_increment(self):
        counter = Counter("hits")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("hits").increment(-1)

    def test_reset(self):
        counter = Counter("hits")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0

    def test_repr_includes_name(self):
        assert "hits" in repr(Counter("hits"))


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("acc").value == 0.0

    def test_record(self):
        ratio = RatioStat("acc")
        ratio.record(True)
        ratio.record(False)
        ratio.record(True)
        assert ratio.value == pytest.approx(2 / 3)
        assert ratio.percent == pytest.approx(200 / 3)

    def test_add(self):
        ratio = RatioStat("acc")
        ratio.add(9, 10)
        assert ratio.value == pytest.approx(0.9)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            RatioStat("acc").add(-1, 2)

    def test_reset(self):
        ratio = RatioStat("acc")
        ratio.record(True)
        ratio.reset()
        assert ratio.denominator == 0
        assert ratio.value == 0.0


class TestStatGroup:
    def test_set_get(self):
        group = StatGroup("cache")
        group.set("hits", 10)
        assert group.get("hits") == 10
        assert "hits" in group
        assert len(group) == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            StatGroup("cache").get("nope")

    def test_merge_child_prefixes_names(self):
        parent = StatGroup("system")
        child = StatGroup("l2")
        child.set("misses", 3)
        parent.merge_child(child)
        assert parent.get("l2.misses") == 3

    def test_as_dict_is_copy(self):
        group = StatGroup("cache")
        group.set("hits", 1)
        copy = group.as_dict()
        copy["hits"] = 99
        assert group.get("hits") == 1

    def test_items_order(self):
        group = StatGroup("cache")
        group.set("a", 1)
        group.set("b", 2)
        assert [k for k, _ in group.items()] == ["a", "b"]


class TestConfidence:
    def test_single_sample_zero_width(self):
        interval = mean_confidence_interval([5.0])
        assert interval.mean == 5.0
        assert interval.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_identical_samples_zero_width(self):
        interval = mean_confidence_interval([2.0] * 10)
        assert interval.half_width == pytest.approx(0.0)
        assert interval.contains(2.0)

    def test_known_small_sample(self):
        # mean 3, sample std 1, n=5 -> half width = 2.776 / sqrt(5)
        interval = mean_confidence_interval([2.0, 2.0, 3.0, 4.0, 4.0])
        assert interval.mean == pytest.approx(3.0)
        assert interval.half_width == pytest.approx(2.776 * 1.0 / 5 ** 0.5, rel=1e-3)

    def test_bounds_and_containment(self):
        interval = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert interval.lower == 8.0
        assert interval.upper == 12.0
        assert interval.contains(9.5)
        assert not interval.contains(13.0)
        assert interval.relative_error == pytest.approx(0.2)

    def test_zero_mean_relative_error(self):
        assert ConfidenceInterval(mean=0.0, half_width=1.0).relative_error == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_always_inside_interval(self, samples):
        interval = mean_confidence_interval(samples)
        assert interval.lower <= interval.mean <= interval.upper

    def test_more_samples_narrow_interval(self):
        few = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        many = mean_confidence_interval([1.0, 2.0, 3.0, 4.0] * 10)
        assert many.half_width < few.half_width


class TestHistogram:
    def test_record_and_count(self):
        hist = Histogram("footprint")
        hist.record(3)
        hist.record(3, 2)
        hist.record(7)
        assert hist.count(3) == 3
        assert hist.total == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").record(1, -1)

    def test_mean(self):
        hist = Histogram("h")
        hist.record(2, 2)
        hist.record(4, 2)
        assert hist.mean() == pytest.approx(3.0)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h").mean() == 0.0

    def test_percentile(self):
        hist = Histogram("h")
        for value in range(1, 11):
            hist.record(value)
        assert hist.percentile(0.5) == 5
        assert hist.percentile(1.0) == 10

    def test_percentile_of_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(0.5)

    def test_percentile_bad_fraction(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_merge(self):
        a = Histogram("a")
        b = Histogram("b")
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.count(1) == 2
        assert a.count(2) == 1

    def test_items_sorted(self):
        hist = Histogram("h")
        hist.record(5)
        hist.record(1)
        assert [v for v, _ in hist.items()] == [1, 5]
