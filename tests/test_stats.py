"""Tests for counters, ratios, groups, confidence intervals and histograms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval
from repro.stats.counters import Counter, RatioStat, StatGroup
from repro.stats.histogram import Histogram


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("hits").value == 0

    def test_increment(self):
        counter = Counter("hits")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("hits").increment(-1)

    def test_reset(self):
        counter = Counter("hits")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0

    def test_repr_includes_name(self):
        assert "hits" in repr(Counter("hits"))


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("acc").value == 0.0

    def test_record(self):
        ratio = RatioStat("acc")
        ratio.record(True)
        ratio.record(False)
        ratio.record(True)
        assert ratio.value == pytest.approx(2 / 3)
        assert ratio.percent == pytest.approx(200 / 3)

    def test_add(self):
        ratio = RatioStat("acc")
        ratio.add(9, 10)
        assert ratio.value == pytest.approx(0.9)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            RatioStat("acc").add(-1, 2)

    def test_reset(self):
        ratio = RatioStat("acc")
        ratio.record(True)
        ratio.reset()
        assert ratio.denominator == 0
        assert ratio.value == 0.0


class TestStatGroup:
    def test_set_get(self):
        group = StatGroup("cache")
        group.set("hits", 10)
        assert group.get("hits") == 10
        assert "hits" in group
        assert len(group) == 1

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            StatGroup("cache").get("nope")

    def test_merge_child_prefixes_names(self):
        parent = StatGroup("system")
        child = StatGroup("l2")
        child.set("misses", 3)
        parent.merge_child(child)
        assert parent.get("l2.misses") == 3

    def test_as_dict_is_copy(self):
        group = StatGroup("cache")
        group.set("hits", 1)
        copy = group.as_dict()
        copy["hits"] = 99
        assert group.get("hits") == 1

    def test_items_order(self):
        group = StatGroup("cache")
        group.set("a", 1)
        group.set("b", 2)
        assert [k for k, _ in group.items()] == ["a", "b"]


class TestConfidence:
    def test_single_sample_zero_width(self):
        interval = mean_confidence_interval([5.0])
        assert interval.mean == 5.0
        assert interval.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_identical_samples_zero_width(self):
        interval = mean_confidence_interval([2.0] * 10)
        assert interval.half_width == pytest.approx(0.0)
        assert interval.contains(2.0)

    def test_known_small_sample(self):
        # mean 3, sample std 1, n=5 -> half width = 2.776 / sqrt(5)
        interval = mean_confidence_interval([2.0, 2.0, 3.0, 4.0, 4.0])
        assert interval.mean == pytest.approx(3.0)
        assert interval.half_width == pytest.approx(2.776 * 1.0 / 5 ** 0.5, rel=1e-3)

    def test_bounds_and_containment(self):
        interval = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert interval.lower == 8.0
        assert interval.upper == 12.0
        assert interval.contains(9.5)
        assert not interval.contains(13.0)
        assert interval.relative_error == pytest.approx(0.2)

    def test_zero_mean_relative_error(self):
        # Undecidable: an unconverged measurement of a zero-mean quantity
        # must not report itself as converged (relative error 0).
        assert ConfidenceInterval(mean=0.0, half_width=1.0).relative_error == math.inf
        assert ConfidenceInterval(mean=0.0, half_width=0.0).relative_error == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_always_inside_interval(self, samples):
        interval = mean_confidence_interval(samples)
        assert interval.lower <= interval.mean <= interval.upper

    def test_more_samples_narrow_interval(self):
        few = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        many = mean_confidence_interval([1.0, 2.0, 3.0, 4.0] * 10)
        assert many.half_width < few.half_width


class TestHistogram:
    def test_record_and_count(self):
        hist = Histogram("footprint")
        hist.record(3)
        hist.record(3, 2)
        hist.record(7)
        assert hist.count(3) == 3
        assert hist.total == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").record(1, -1)

    def test_mean(self):
        hist = Histogram("h")
        hist.record(2, 2)
        hist.record(4, 2)
        assert hist.mean() == pytest.approx(3.0)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("h").mean() == 0.0

    def test_percentile(self):
        hist = Histogram("h")
        for value in range(1, 11):
            hist.record(value)
        assert hist.percentile(0.5) == 5
        assert hist.percentile(1.0) == 10

    def test_percentile_of_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(0.5)

    def test_percentile_bad_fraction(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_merge(self):
        a = Histogram("a")
        b = Histogram("b")
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.count(1) == 2
        assert a.count(2) == 1

    def test_items_sorted(self):
        hist = Histogram("h")
        hist.record(5)
        hist.record(1)
        assert [v for v, _ in hist.items()] == [1, 5]


class TestConfidenceEdgeCases:
    """Sampling-driver edge cases: n=1, zero variance, mean near zero."""

    def test_single_window_never_reports_converged_error(self):
        # n=1 yields a zero-width interval; the adaptive stopper must not
        # read that as precision (it refuses to converge below 2 windows).
        from repro.stats.sampling import AdaptiveStopper, WindowSeries

        series = WindowSeries("miss")
        series.add(0, 0.25)
        assert series.interval().half_width == 0.0
        assert not AdaptiveStopper().converged(series)

    def test_zero_variance_converges_immediately(self):
        from repro.stats.sampling import AdaptiveStopper, WindowSeries

        series = WindowSeries("miss")
        for i in range(2):
            series.add(i, 0.125)
        assert AdaptiveStopper().converged(series)

    def test_near_zero_mean_needs_absolute_floor(self):
        from repro.stats.sampling import AdaptiveStopper, WindowSeries

        deltas = WindowSeries("delta")
        for i, value in enumerate([1e-9, -1e-9, 2e-9, -2e-9]):
            deltas.add(i, value)
        # Relative criterion alone can never converge (mean ~ 0)...
        assert not AdaptiveStopper().converged(deltas)
        assert deltas.interval().relative_error > 1.0
        # ...but an absolute floor sized to the quantity decides it.
        assert AdaptiveStopper(absolute_floor=1e-6).converged(deltas)

    def test_interval_of_empty_series_rejected(self):
        from repro.stats.sampling import WindowSeries

        with pytest.raises(ValueError):
            WindowSeries("empty").interval()

    def test_duplicate_window_rejected(self):
        from repro.stats.sampling import WindowSeries

        series = WindowSeries("m")
        series.add(3, 1.0)
        with pytest.raises(ValueError):
            series.add(3, 2.0)


class TestMatchedPairOrderIndependence:
    """Property: aggregation must not depend on measurement order."""

    @given(
        values=st.lists(st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
                        min_size=2, max_size=40),
        seed=st.integers(0, 2 ** 16),
    )
    def test_shuffled_insertion_gives_identical_aggregates(self, values, seed):
        import random

        from repro.stats.sampling import WindowSeries, matched_pair_deltas

        indexed = list(enumerate(values))
        shuffled = indexed[:]
        random.Random(seed).shuffle(shuffled)

        def build(pairs, side):
            series = WindowSeries("s")
            for index, pair in pairs:
                series.add(index, pair[side])
            return series

        ordered = matched_pair_deltas(build(indexed, 0), build(indexed, 1))
        scrambled = matched_pair_deltas(build(shuffled, 0), build(shuffled, 1))
        assert ordered.values() == scrambled.values()
        assert ordered.interval() == scrambled.interval()

    @given(
        common=st.lists(st.floats(-100, 100), min_size=2, max_size=20),
        extra=st.integers(0, 5),
    )
    def test_unmatched_windows_are_ignored(self, common, extra):
        from repro.stats.sampling import WindowSeries, matched_pair_deltas

        a = WindowSeries("a")
        b = WindowSeries("b")
        for i, value in enumerate(common):
            a.add(i, value + 1.0)
            b.add(i, value)
        for j in range(extra):  # windows only one side measured
            a.add(1000 + j, 123.0)
        deltas = matched_pair_deltas(a, b)
        assert len(deltas) == len(common)
        assert all(d == pytest.approx(1.0) for d in deltas.values())
