"""Tests for the crossbar, trace-driven core, and CMP front end."""

import pytest

from repro.baselines.ideal import IdealCache
from repro.baselines.no_cache import NoDramCache
from repro.config.system import CoreConfig, SystemConfig
from repro.cpu.cmp import TraceDrivenCmp
from repro.cpu.core import TraceDrivenCore
from repro.interconnect.crossbar import Crossbar
from repro.trace.record import MemoryAccess


class TestCrossbar:
    def test_uncontended_latency_is_traversal(self):
        crossbar = Crossbar(num_inputs=16, num_outputs=4, traversal_latency=4)
        assert crossbar.route(0, 0, now=0) == 4

    def test_contended_port_adds_wait(self):
        crossbar = Crossbar(num_inputs=4, num_outputs=1, traversal_latency=4)
        first = crossbar.route(0, 0, now=0)
        second = crossbar.route(1, 0, now=0)
        assert second > first
        assert crossbar.contended_transfers == 1

    def test_distinct_ports_do_not_contend(self):
        crossbar = Crossbar(num_inputs=4, num_outputs=4)
        crossbar.route(0, 0, now=0)
        crossbar.route(1, 1, now=0)
        assert crossbar.contended_transfers == 0

    def test_port_selection_interleaves_blocks(self):
        crossbar = Crossbar(num_inputs=16, num_outputs=4)
        ports = {crossbar.output_port_for(block * 64) for block in range(8)}
        assert ports == {0, 1, 2, 3}

    def test_out_of_range_ports(self):
        crossbar = Crossbar(num_inputs=2, num_outputs=2)
        with pytest.raises(ValueError):
            crossbar.route(5, 0)
        with pytest.raises(ValueError):
            crossbar.route(0, 5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Crossbar(num_inputs=0, num_outputs=1)
        with pytest.raises(ValueError):
            Crossbar(num_inputs=1, num_outputs=1, traversal_latency=-1)

    def test_stats(self):
        crossbar = Crossbar()
        crossbar.route(0, 0)
        assert crossbar.stats().get("transfers") == 1


class TestTraceDrivenCore:
    def test_compute_window_accounting(self):
        core = TraceDrivenCore(0, CoreConfig(base_ipc=2.0),
                               instructions_per_access=100)
        core.retire_compute_window()
        assert core.progress.instructions == 100
        assert core.progress.cycles == pytest.approx(50.0)

    def test_memory_stall_divided_by_mlp(self):
        core = TraceDrivenCore(0, CoreConfig(mlp=2.0))
        core.stall_for_memory(100)
        assert core.progress.memory_stall_cycles == pytest.approx(50.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TraceDrivenCore(0).stall_for_memory(-1)

    def test_invalid_instructions_per_access(self):
        with pytest.raises(ValueError):
            TraceDrivenCore(0, instructions_per_access=0)

    def test_ipc_computation(self):
        core = TraceDrivenCore(0, CoreConfig(base_ipc=1.0), instructions_per_access=10)
        assert core.ipc == 0.0
        core.retire_compute_window()
        assert core.ipc == pytest.approx(1.0)
        core.stall_for_memory(10)
        assert core.ipc < 1.0

    def test_stats_group(self):
        core = TraceDrivenCore(3)
        core.retire_compute_window()
        stats = core.stats()
        assert stats.name == "core3"
        assert stats.get("instructions") > 0


class TestTraceDrivenCmp:
    def _trace(self, n, cores):
        return [MemoryAccess(address=i * 64 * 13, pc=0x400000 + (i % 8) * 4,
                             core_id=i % cores, timestamp=i)
                for i in range(n)]

    def test_uipc_positive_after_run(self):
        system = SystemConfig(num_cores=4)
        cmp = TraceDrivenCmp(IdealCache(), config=system)
        cmp.run(self._trace(400, 4))
        assert cmp.user_instructions_per_cycle > 0
        assert cmp.total_instructions > 0

    def test_faster_memory_gives_higher_uipc(self):
        system = SystemConfig(num_cores=4)
        fast = TraceDrivenCmp(IdealCache(), config=system)
        slow = TraceDrivenCmp(NoDramCache(), config=system)
        trace = self._trace(400, 4)
        fast.run(trace)
        slow.run(list(trace))
        assert fast.user_instructions_per_cycle > slow.user_instructions_per_cycle

    def test_total_cycles_is_slowest_core(self):
        system = SystemConfig(num_cores=2)
        cmp = TraceDrivenCmp(IdealCache(), config=system)
        cmp.run(self._trace(100, 2))
        per_core = [core.progress.cycles for core in cmp.cores]
        assert cmp.total_cycles == max(per_core)

    def test_stats_include_dram_cache_section(self):
        cmp = TraceDrivenCmp(IdealCache(), config=SystemConfig(num_cores=2))
        cmp.run(self._trace(50, 2))
        keys = cmp.stats().as_dict()
        assert any(k.startswith("crossbar.") for k in keys)
        assert any(k.startswith("ideal.") for k in keys)
