"""Tests for TraceSource pipelines and transform composition."""

import pytest

from repro.trace.binfmt import write_trace_bin
from repro.trace.filters import limit_trace
from repro.trace.io import write_trace
from repro.trace.pipeline import (
    FileSource,
    IterableSource,
    SyntheticSource,
    TraceSource,
    as_source,
)
from repro.trace.record import AccessType, MemoryAccess


def make_trace(n, cores=4):
    return [
        MemoryAccess(address=i * 64, pc=0x400000 + (i % 8) * 4,
                     core_id=i % cores, timestamp=i,
                     access_type=AccessType.WRITE if i % 5 == 0
                     else AccessType.READ)
        for i in range(n)
    ]


@pytest.fixture
def trace100():
    return make_trace(100)


@pytest.fixture
def source100(trace100):
    return IterableSource(trace100)


class TestSources:
    def test_iterable_source_reiterates(self, source100, trace100):
        assert source100.materialize() == trace100
        assert source100.materialize() == trace100

    def test_iterable_source_from_factory(self, trace100):
        source = IterableSource(lambda: iter(trace100))
        assert source.materialize() == source.materialize() == trace100

    def test_file_source_binary_autodetect(self, tmp_path, trace100):
        path = tmp_path / "t.dat"  # deliberately uninformative suffix
        write_trace_bin(path, trace100)
        source = FileSource(path)
        assert source.format == "binary"
        assert source.materialize() == trace100

    def test_file_source_text_autodetect(self, tmp_path, trace100):
        path = tmp_path / "t.trace"
        write_trace(path, trace100)
        source = FileSource(path)
        assert source.format == "text"
        assert source.materialize() == trace100

    def test_synthetic_source_deterministic(self, tiny_profile):
        a = SyntheticSource(tiny_profile, 500, num_cores=4, seed=3)
        b = SyntheticSource(tiny_profile, 500, num_cores=4, seed=3)
        assert a.materialize() == b.materialize()
        assert a.materialize() == a.materialize()

    def test_synthetic_source_matches_generator(self, tiny_profile):
        from repro.workloads.generator import SyntheticWorkload

        source = SyntheticSource(tiny_profile, 300, num_cores=4, seed=7)
        direct = SyntheticWorkload(tiny_profile, num_cores=4, seed=7)
        assert source.materialize() == direct.generate(300)

    def test_as_source_coercions(self, tmp_path, trace100):
        assert isinstance(as_source(trace100), IterableSource)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace100)
        assert isinstance(as_source(path), FileSource)
        source = IterableSource(trace100)
        assert as_source(source) is source


class TestTransforms:
    def test_limit(self, source100, trace100):
        assert source100.limit(10).materialize() == trace100[:10]

    def test_limit_composes_to_minimum(self, source100):
        assert (source100.limit(50).limit(10).materialize()
                == source100.limit(10).limit(50).materialize()
                == source100.limit(10).materialize())

    def test_window_is_slice(self, source100, trace100):
        assert source100.window(20, 30).materialize() == trace100[20:30]
        assert source100.window(90).materialize() == trace100[90:]

    def test_window_composition(self, source100):
        # window(a, b) then window(c, d) == window(a+c, min(b, a+d))
        composed = source100.window(10, 60).window(5, 20).materialize()
        direct = source100.window(15, 30).materialize()
        assert composed == direct

    def test_window_rejects_bad_bounds(self, source100):
        with pytest.raises(ValueError):
            source100.window(-1)
        with pytest.raises(ValueError):
            source100.window(10, 5)

    def test_filter_and_map(self, source100, trace100):
        writes = source100.filter(lambda a: a.is_write).materialize()
        assert writes == [a for a in trace100 if a.is_write]
        bumped = source100.map(
            lambda a: a._replace(timestamp=a.timestamp + 1)
        ).materialize()
        assert [a.timestamp for a in bumped] == [a.timestamp + 1
                                                 for a in trace100]

    def test_remap_addresses(self, source100, trace100):
        remapped = source100.remap_addresses(lambda a: a % 1024).materialize()
        assert [a.address for a in remapped] == [a.address % 1024
                                                 for a in trace100]
        # everything else untouched
        assert [a.pc for a in remapped] == [a.pc for a in trace100]

    def test_cores_select(self, source100, trace100):
        only = source100.cores(1, 3).materialize()
        assert only == [a for a in trace100 if a.core_id in (1, 3)]

    def test_downsample_deterministic_subsequence(self, source100, trace100):
        a = source100.downsample(0.3, seed=11).materialize()
        b = source100.downsample(0.3, seed=11).materialize()
        assert a == b
        # a subsequence of the original, in order
        it = iter(trace100)
        assert all(any(x == y for y in it) for x in a)

    def test_downsample_extremes(self, source100, trace100):
        assert source100.downsample(0.0).materialize() == []
        assert source100.downsample(1.0).materialize() == trace100

    def test_downsample_rejects_bad_fraction(self, source100):
        with pytest.raises(ValueError):
            source100.downsample(1.5)

    def test_transform_plugs_in_filters(self, source100, trace100):
        """The plain generator functions in trace/filters compose in."""
        assert (source100.transform(limit_trace, 25).materialize()
                == trace100[:25])

    def test_transforms_are_lazy(self, trace100):
        pulled = []

        def factory():
            for access in trace100:
                pulled.append(access)
                yield access

        source = IterableSource(factory).limit(5)
        assert source.count() == 5
        assert len(pulled) == 5  # stopped pulling after the limit

    def test_chained_pipeline(self, source100, trace100):
        result = (source100
                  .window(10, 90)
                  .cores(0, 2)
                  .remap_addresses(lambda a: a + 4096)
                  .limit(10)
                  .materialize())
        expected = [a._replace(address=a.address + 4096)
                    for a in trace100[10:90] if a.core_id in (0, 2)][:10]
        assert result == expected


class TestInterleave:
    def test_interleave_orders_by_timestamp(self):
        a = IterableSource([MemoryAccess(0, 0, core_id=0, timestamp=t)
                            for t in (0, 4, 8)])
        b = IterableSource([MemoryAccess(64, 0, core_id=1, timestamp=t)
                            for t in (1, 2, 9)])
        merged = TraceSource.interleave([a, b]).materialize()
        assert [m.timestamp for m in merged] == [0, 1, 2, 4, 8, 9]

    def test_interleave_is_reiterable(self):
        a = IterableSource(make_trace(10, cores=1))
        merged = TraceSource.interleave([a, a])
        assert merged.materialize() == merged.materialize()


class TestTerminals:
    def test_count(self, source100):
        assert source100.count() == 100
        assert source100.cores(0).count() == 25

    def test_write_binary_and_text(self, tmp_path, source100, trace100):
        bin_path = tmp_path / "out.rptr"
        assert source100.write(bin_path) == 100
        assert FileSource(bin_path).materialize() == trace100
        text_path = tmp_path / "out.trace"
        assert source100.limit(7).write(text_path) == 7
        assert FileSource(text_path).materialize() == trace100[:7]

    def test_write_carries_source_core_count(self, tmp_path, trace100):
        from repro.trace.binfmt import read_header

        src_path = tmp_path / "src.rptr"
        write_trace_bin(src_path, trace100, num_cores=4)
        out_path = tmp_path / "out.rptr"
        FileSource(src_path).limit(10).write(out_path)
        assert read_header(out_path).num_cores == 4

    def test_write_rejects_readonly_format(self, tmp_path, source100):
        with pytest.raises(ValueError, match="ingestion-only"):
            source100.write(tmp_path / "out.csv")
