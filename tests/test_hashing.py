"""Tests for XOR folding and the deterministic mixer."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.hashing import fold_xor, mix64


class TestFoldXor:
    def test_small_value_unchanged(self):
        assert fold_xor(0x5, 12) == 0x5

    def test_folding_is_xor_of_chunks(self):
        # value = 0xABC123 folded to 12 bits -> 0xABC ^ 0x123
        assert fold_xor(0xABC123, 12) == (0xABC ^ 0x123)

    def test_zero(self):
        assert fold_xor(0, 12) == 0

    def test_result_fits_output_bits(self):
        for value in (0, 1, 0xFFFF, 0x123456789ABCDEF):
            assert 0 <= fold_xor(value, 12) < (1 << 12)

    def test_invalid_output_bits(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            fold_xor(-1, 12)

    @given(st.integers(0, 2 ** 64 - 1), st.integers(1, 24))
    def test_fold_is_deterministic_and_bounded(self, value, bits):
        first = fold_xor(value, bits)
        assert first == fold_xor(value, bits)
        assert 0 <= first < (1 << bits)

    @given(st.integers(0, 2 ** 24 - 1))
    def test_identity_when_value_fits(self, value):
        assert fold_xor(value, 24) == value


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_different_inputs_differ(self):
        assert mix64(1) != mix64(2)

    def test_result_is_64_bit(self):
        for value in (0, 1, 2 ** 63, 2 ** 64 - 1):
            assert 0 <= mix64(value) < 2 ** 64

    @given(st.integers(0, 2 ** 64 - 1))
    def test_output_range_property(self, value):
        assert 0 <= mix64(value) < 2 ** 64

    def test_avalanche_spreads_low_bits(self):
        # Consecutive inputs should not produce consecutive outputs.
        outputs = [mix64(i) for i in range(16)]
        deltas = {b - a for a, b in zip(outputs, outputs[1:])}
        assert len(deltas) > 1

    def test_distribution_over_buckets(self):
        buckets = [0] * 16
        for i in range(4096):
            buckets[mix64(i) % 16] += 1
        assert min(buckets) > 150  # roughly uniform (expected 256 each)
