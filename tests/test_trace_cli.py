"""Smoke tests for the ``repro trace`` CLI subcommands."""

import pytest

from repro.cli import main
from repro.trace.binfmt import read_header, read_trace_bin
from repro.trace.io import read_trace


class TestTraceGen:
    def test_gen_binary(self, tmp_path, capsys):
        out = tmp_path / "ws.rptr"
        code = main(["trace", "gen", "--workload", "Web Search",
                     "--accesses", "2000", "--cores", "4",
                     "--scale", "8192", "--seed", "3", "--out", str(out)])
        assert code == 0
        assert "wrote 2000 accesses" in capsys.readouterr().out
        header = read_header(out)
        assert header.access_count == 2000
        assert header.num_cores == 4

    def test_gen_matches_executor_trace(self, tmp_path):
        """``trace gen`` writes exactly what a sweep cell would replay."""
        from repro.sim.experiment import ExperimentConfig, ExperimentRunner
        from repro.workloads.cloudsuite import workload_by_name

        out = tmp_path / "ws.rptr"
        main(["trace", "gen", "--workload", "Web Search",
              "--accesses", "1500", "--cores", "4", "--scale", "8192",
              "--out", str(out)])
        runner = ExperimentRunner(ExperimentConfig(
            scale=8192, num_accesses=1500, num_cores=4, seed=1))
        assert read_trace_bin(out) == runner.build_trace(
            workload_by_name("Web Search"))

    def test_gen_text_format(self, tmp_path):
        out = tmp_path / "ws.trace"
        assert main(["trace", "gen", "--accesses", "100",
                     "--scale", "8192", "--out", str(out)]) == 0
        assert len(read_trace(out)) == 100

    def test_gen_unknown_workload(self, tmp_path, capsys):
        code = main(["trace", "gen", "--workload", "nope",
                     "--out", str(tmp_path / "x.rptr")])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_gen_rejects_nonpositive_accesses(self, tmp_path, capsys):
        code = main(["trace", "gen", "--accesses", "0",
                     "--out", str(tmp_path / "x.rptr")])
        assert code == 2


class TestTraceInfo:
    def test_info_binary(self, tmp_path, capsys):
        out = tmp_path / "t.rptr"
        main(["trace", "gen", "--accesses", "500", "--cores", "2",
              "--scale", "8192", "--out", str(out)])
        capsys.readouterr()
        assert main(["trace", "info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "format=binary" in printed
        assert "accesses=500" in printed
        assert "cores=2" in printed

    def test_info_text_with_count(self, tmp_path, capsys):
        out = tmp_path / "t.trace"
        main(["trace", "gen", "--accesses", "50", "--scale", "8192",
              "--out", str(out)])
        capsys.readouterr()
        assert main(["trace", "info", "--count", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "format=text" in printed and "accesses=50" in printed

    def test_info_missing_file(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "no.rptr")]) == 1
        assert "not a file" in capsys.readouterr().err


class TestTraceConvert:
    def test_convert_csv_to_binary(self, tmp_path, capsys):
        src = tmp_path / "in.csv"
        src.write_text("address,type\n0x1000,R\n0x2000,W\n")
        dst = tmp_path / "out.rptr"
        assert main(["trace", "convert", str(src), str(dst)]) == 0
        assert "wrote 2 accesses" in capsys.readouterr().out
        assert len(read_trace_bin(dst)) == 2

    def test_convert_reports_malformed_input(self, tmp_path, capsys):
        src = tmp_path / "in.champsim"
        src.write_text("bad\n")
        dst = tmp_path / "out.rptr"
        assert main(["trace", "convert", str(src), str(dst)]) == 1
        err = capsys.readouterr().err
        assert "in.champsim" in err and ":1:" in err

    def test_formats_listing(self, capsys):
        assert main(["trace", "formats"]) == 0
        printed = capsys.readouterr().out
        for name in ("binary", "text", "champsim", "csv"):
            assert name in printed


class TestSweepBackCompat:
    def test_top_level_sweep_flags_still_work(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["--designs", "unison", "--workloads", "Web Search",
                     "--capacities", "256MB", "--scale", "8192",
                     "--accesses", "2000", "--cores", "2",
                     "--json", "-", "--quiet"])
        assert code == 0
        assert "unison" in capsys.readouterr().out

    def test_explicit_sweep_subcommand(self, capsys):
        assert main(["sweep", "--list-designs"]) == 0
        assert "unison" in capsys.readouterr().out


class TestTraceConvertCodec:
    def test_codec_none_yields_uncompressed(self, tmp_path):
        from repro.trace.binfmt import read_header

        src = tmp_path / "in.csv"
        src.write_text("address,type\n0x1000,R\n0x2000,W\n")
        dst = tmp_path / "out.rptr"
        assert main(["trace", "convert", str(src), str(dst),
                     "--codec", "none"]) == 0
        assert read_header(dst).codec == "none"
        assert len(read_trace_bin(dst)) == 2

    def test_codec_zstd_round_trips_or_fails_cleanly(self, tmp_path, capsys):
        from repro.trace.binfmt import read_header, zstd_available

        src = tmp_path / "in.csv"
        src.write_text("address,type\n0x1000,R\n")
        dst = tmp_path / "out.rptr"
        code = main(["trace", "convert", str(src), str(dst),
                     "--codec", "zstd"])
        if zstd_available():
            assert code == 0
            assert read_header(dst).codec == "zstd"
            assert len(read_trace_bin(dst)) == 1
        else:
            assert code == 1
            assert "zstd" in capsys.readouterr().err

    def test_codec_rejected_for_text_output(self, tmp_path, capsys):
        src = tmp_path / "in.csv"
        src.write_text("address,type\n0x1000,R\n")
        code = main(["trace", "convert", str(src), str(tmp_path / "out.trace"),
                     "--codec", "gzip"])
        assert code == 1
        assert "binary" in capsys.readouterr().err


class TestTraceStoreCli:
    def test_info_reports_configured_store(self, capsys):
        assert main(["trace", "store", "info"]) == 0
        out = capsys.readouterr().out
        assert "root:" in out and "budget:" in out

    def test_gc_reclaims_orphans_and_reports_bytes(self, tmp_path,
                                                   monkeypatch, capsys):
        import os as _os

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        (tmp_path / "store").mkdir()
        orphan = tmp_path / "store" / "gone.rptr.rpti"
        orphan.write_bytes(b"x" * 100)
        stale = tmp_path / "store" / "t.rptr.tmp.123"
        stale.write_bytes(b"y" * 50)
        _os.utime(stale, (1, 1))  # ancient: no live writer owns it
        fresh = tmp_path / "store" / "u.rptr.tmp.456"
        fresh.write_bytes(b"z" * 25)  # a live writer's in-flight temp
        assert main(["trace", "store", "gc"]) == 0
        assert "reclaimed 150 bytes" in capsys.readouterr().out
        assert not orphan.exists() and not stale.exists()
        assert fresh.exists()

    def test_gc_evicts_to_explicit_budget(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.trace.store import TraceStore
        from repro.workloads.cloudsuite import workload_by_name

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        store = TraceStore(root=tmp_path / "store")
        from tests.test_binfmt import sample_trace
        for seed in (1, 2):
            store.put(store.key(workload_by_name("Web Search"), 128, 4,
                                seed, 400), sample_trace(400))
        assert main(["trace", "store", "gc", "--max-bytes", "1KB"]) == 0
        assert "reclaimed" in capsys.readouterr().out
        assert len(store) <= 1

    def test_disabled_store_errors(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        assert main(["trace", "store", "info"]) == 1
        assert "disabled" in capsys.readouterr().err


class TestSampleCli:
    def test_sample_two_designs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["sample", "--designs", "unison", "alloy",
                     "--workload", "Web Search", "--capacity", "1GB",
                     "--scale", "8192", "--accesses", "12000",
                     "--windows", "3", "--window-accesses", "800",
                     "--warmup-accesses", "800",
                     "--checkpoint-accesses", "2000",
                     "--json", "sample.json"])
        assert code == 0
        out = capsys.readouterr().out
        assert "95% CI" in out
        assert "Matched-pair deltas" in out
        assert (tmp_path / "sample.json").exists()

    def test_sample_trace_file_workload(self, tmp_path, capsys):
        trace_path = tmp_path / "t.rptr"
        main(["trace", "gen", "--accesses", "9000", "--cores", "2",
              "--scale", "8192", "--out", str(trace_path)])
        capsys.readouterr()
        code = main(["sample", "--designs", "unison",
                     "--workload", str(trace_path), "--capacity", "1GB",
                     "--scale", "8192", "--accesses", "9000",
                     "--windows", "2", "--window-accesses", "500",
                     "--warmup-accesses", "500",
                     "--checkpoint-accesses", "1000", "--quiet"])
        assert code == 0
        assert "unison" in capsys.readouterr().out

    def test_sample_rejects_unknown_design(self, capsys):
        assert main(["sample", "--designs", "nope"]) == 2
        assert "error:" in capsys.readouterr().err
