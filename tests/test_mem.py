"""Tests for the main-memory and stacked-DRAM device wrappers."""

import pytest

from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram


class TestMainMemory:
    def test_read_and_write_latencies_positive(self):
        memory = MainMemory()
        assert memory.read_block(10) > 0
        assert memory.write_block(11) > 0

    def test_traffic_counters(self):
        memory = MainMemory()
        memory.read_block(1)
        memory.write_block(2)
        memory.fetch_blocks([3, 4, 5])
        memory.write_blocks([6, 7])
        assert memory.blocks_read == 4
        assert memory.blocks_written == 3
        assert memory.blocks_transferred == 7

    def test_fetch_blocks_returns_critical_latency(self):
        memory = MainMemory()
        single = MainMemory().read_block(100)
        batch = memory.fetch_blocks([100, 101, 102, 103])
        # The critical (first) block determines the reported latency, so it is
        # in the same ballpark as a single read, not the sum of all blocks.
        assert batch < single * 3

    def test_fetch_blocks_empty(self):
        assert MainMemory().fetch_blocks([]) == 0

    def test_footprint_fetch_uses_few_activations(self):
        memory = MainMemory()
        # 8 contiguous blocks live in one DRAM row -> one activation.
        memory.fetch_blocks(list(range(8)))
        assert memory.row_activations == 1

    def test_scattered_fetch_uses_many_activations(self):
        memory = MainMemory()
        # One block per 8 KB row -> one activation per block.
        memory.fetch_blocks([i * 1024 for i in range(8)])
        assert memory.row_activations >= 2

    def test_stats_group(self):
        memory = MainMemory()
        memory.read_block(0)
        stats = memory.stats()
        assert stats.get("blocks_read") == 1
        assert stats.get("row_activations") >= 1


class TestStackedDram:
    def test_row_address_computation(self):
        stacked = StackedDram()
        assert stacked.row_address(0, 0) == 0
        assert stacked.row_address(1, 32) == 8192 + 32
        with pytest.raises(ValueError):
            stacked.row_address(0, 9000)

    def test_read_returns_access_result(self):
        stacked = StackedDram()
        result = stacked.read(row_index=3, offset=0, num_bytes=32)
        assert result.latency_cpu_cycles > 0
        assert result.activated

    def test_same_row_reads_hit_row_buffer(self):
        stacked = StackedDram()
        first = stacked.read(5, 0, 64, now_cpu=0)
        second = stacked.read(5, 1024, 64, now_cpu=500)
        assert second.row_hit
        assert second.latency_cpu_cycles <= first.latency_cpu_cycles

    def test_read_block_is_64_bytes(self):
        stacked = StackedDram()
        stacked.read_block(0, 128)
        assert stacked.bytes_transferred == 64

    def test_fill_blocks_counts_traffic(self):
        stacked = StackedDram()
        stacked.fill_blocks(0, [0, 64, 128])
        assert stacked.bytes_transferred == 3 * 64
        assert stacked.row_activations >= 1

    def test_stats_group(self):
        stacked = StackedDram()
        stacked.read(0, 0, 32)
        stats = stacked.stats()
        assert stats.get("requests") == 1
        assert stats.get("bytes_transferred") == 32
