"""Telemetry subsystem tests: no-op contract, ledger, sinks, CLI views.

The two load-bearing guarantees:

1. **Bit-identity** -- enabling telemetry must not change a single byte of
   any ResultSet; the sinks are strictly on the side.
2. **No-op cheapness** -- with ``REPRO_TELEMETRY`` unset, the instrumented
   code paths go through shared null singletons whose total cost is far
   below 2% of a 100k-access replay.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.obs.core import (NULL_RUN, PHASE_ORDER, current, emit_event,
                            job_context, ledger_path, query_root, start_run,
                            telemetry_enabled)
from repro.obs.heartbeat import NULL_HEARTBEAT, worker_heartbeat
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, RunLedger, summarize
from repro.obs.manifest import find_manifest, read_manifest
from repro.obs.profiling import maybe_profile, profiling_enabled
from repro.queue import JobStore, PlannedJob, SweepService
from repro.sampling.windows import SamplingConfig
from repro.sim.executor import SweepExecutor, run_trial
from repro.sim.experiment import ExperimentConfig
from repro.sim.spec import SweepSpec


@pytest.fixture
def obs_off(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)


@pytest.fixture
def obs_on(tmp_path, monkeypatch):
    """Telemetry enabled into a private directory (own trace store too)."""
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "telemetry"))
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    return tmp_path / "telemetry"


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        designs=("unison",),
        workloads=("Web Search",),
        capacities=("512MB",),
        config=ExperimentConfig(scale=4096, num_accesses=2000),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def sampled_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        designs=("unison", "alloy"),
        workloads=("Web Search",),
        capacities=("512MB",),
        config=ExperimentConfig(scale=2048, num_accesses=8000),
        sampling=SamplingConfig(window_accesses=400, max_windows=8,
                                min_windows=4),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


# --------------------------------------------------------------------- #
# The no-op contract
# --------------------------------------------------------------------- #
class TestDisabled:
    def test_start_run_returns_shared_null_run(self, obs_off):
        assert not telemetry_enabled()
        run = start_run("trial", design="unison")
        assert run is NULL_RUN
        assert current() is NULL_RUN
        with run as active:
            with active.span("measure") as span:
                span.add("windows", 1)
            active.counter("accesses", 100)
            active.event("window", index=0)

    def test_disabled_run_writes_nothing(self, obs_off, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        with start_run("trial") as run:
            run.counter("accesses", 1)
        assert not (tmp_path / "telemetry").exists()
        assert ledger_path() is None

    def test_emit_event_without_ledger_only_logs(self, obs_off):
        emit_event("lease_theft", sweep="tok", seq=1, owner="w")

    def test_worker_heartbeat_degrades_to_null(self, obs_off):
        assert worker_heartbeat("owner") is NULL_HEARTBEAT
        NULL_HEARTBEAT.idle()
        NULL_HEARTBEAT.finished(True)
        NULL_HEARTBEAT.exited()

    def test_profiling_disabled_yields_none(self, obs_off):
        assert not profiling_enabled()
        with maybe_profile("unit") as artifact:
            assert artifact is None

    def test_noop_overhead_under_two_percent_of_replay(self, obs_off,
                                                       tmp_path,
                                                       monkeypatch):
        """The disabled instrumentation is budgeted per *phase*, never per
        access: one trial performs ~10 null span/counter calls.  Time a
        real 100k-access replay, then 10_000 null telemetry operations --
        a 1000x exaggeration of what a trial pays -- and require even that
        to stay under 2% of the replay."""
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        from repro.sim.spec import ExperimentSpec

        trial = ExperimentSpec(
            design="unison", workload="Web Search", capacity="512MB",
            config=ExperimentConfig(scale=4096, num_accesses=100_000),
        )
        started = time.perf_counter()
        run_trial(trial)
        replay_seconds = time.perf_counter() - started

        run = start_run("trial", design="unison")
        started = time.perf_counter()
        for _ in range(10_000):
            with run.span("measure") as span:
                span.add("windows", 1)
            run.counter("accesses", 100)
        noop_seconds = time.perf_counter() - started
        assert noop_seconds < 0.02 * replay_seconds, (
            f"10k no-op telemetry calls took {noop_seconds:.4f}s against a "
            f"{replay_seconds:.2f}s replay"
        )


# --------------------------------------------------------------------- #
# Bit-identity
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def _run_twice(self, spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        plain = SweepExecutor(workers=1).run(spec)
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "obs"))
        observed = SweepExecutor(workers=1).run(spec)
        return plain, observed

    def test_full_replay_identical_with_and_without(self, tmp_path,
                                                    monkeypatch):
        plain, observed = self._run_twice(tiny_spec(), tmp_path, monkeypatch)
        assert observed == plain
        assert observed.to_json() == plain.to_json()

    def test_sampled_identical_with_and_without(self, tmp_path, monkeypatch):
        plain, observed = self._run_twice(sampled_spec(), tmp_path,
                                          monkeypatch)
        assert observed == plain
        assert observed.to_json() == plain.to_json()
        # ... and the observed pass really did record runs.
        with RunLedger(tmp_path / "obs" / "ledger.sqlite") as ledger:
            assert ledger.runs(limit=5)


# --------------------------------------------------------------------- #
# Runs, spans, manifests
# --------------------------------------------------------------------- #
class TestRunRecording:
    def test_run_records_phases_metrics_and_manifest(self, obs_on):
        with job_context(sweep="feedc0de" * 4, job_seq=3, worker="w1"):
            with start_run("trial", design="unison",
                           workload="Web Search") as run:
                with run.span("measure") as span:
                    span.add("windows", 2)
                run.counter("accesses", 1000)
                run.event("window", index=0, measured=1)
                run_id = run.run_id

        with RunLedger(obs_on / "ledger.sqlite") as ledger:
            row = ledger.run(run_id)
            assert row["kind"] == "trial"
            assert row["design"] == "unison"
            assert row["sweep"] == "feedc0de" * 4
            assert row["job_seq"] == 3
            assert row["status"] == "ok"
            phases = ledger.phases_for([run_id])
            assert "measure" in phases
            metrics = ledger.metrics_for([run_id])
            assert metrics["accesses"] == 1000
            assert metrics["accesses_per_sec"] > 0

        path = find_manifest(obs_on, run_id)
        assert path is not None
        lines = read_manifest(path)
        kinds = [line.get("event") for line in lines]
        assert kinds[0] == "start"
        assert "window" in kinds
        assert kinds[-1] == "end"

    def test_failed_run_records_error_status(self, obs_on):
        with pytest.raises(RuntimeError):
            with start_run("trial", design="unison") as run:
                run_id = run.run_id
                raise RuntimeError("boom")
        with RunLedger(obs_on / "ledger.sqlite") as ledger:
            row = ledger.run(run_id)
            assert row["status"] == "error"
            assert "boom" in row["error"]

    def test_query_root_ignores_enable_switch(self, obs_on, monkeypatch):
        enabled_root = query_root()
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert query_root() == enabled_root

    def test_profile_artifact_is_loadable(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with maybe_profile("unit-test") as artifact:
            sum(range(10_000))
        assert artifact is not None and artifact.is_file()
        import pstats

        stats = pstats.Stats(str(artifact))
        assert stats.total_calls >= 1


# --------------------------------------------------------------------- #
# The ledger itself
# --------------------------------------------------------------------- #
class TestRunLedger:
    def test_schema_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunLedger(path) as ledger:
            with ledger._conn:
                ledger._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(LEDGER_SCHEMA_VERSION + 1),),
                )
        with pytest.raises(ValueError, match="schema"):
            RunLedger(path)

    def _record(self, ledger, run_id, sweep=None, accesses=0.0,
                measure=0.0):
        ledger.record_run({
            "run_id": run_id, "kind": "trial", "started_at": 1.0,
            "finished_at": 2.0, "wall_seconds": 1.0, "status": "ok",
            "labels": {"sweep": sweep},
            "phases": {"measure": (measure, 1, None)},
            "metrics": {"accesses": accesses,
                        "trace_store_hits": 3, "trace_store_misses": 1},
        })

    def test_resolve_run_sweep_ambiguous_and_missing(self, tmp_path):
        with RunLedger(tmp_path / "l.sqlite") as ledger:
            self._record(ledger, "aaa-1", sweep="feed01")
            self._record(ledger, "aaa-2", sweep="feed01")
            self._record(ledger, "bbb-1", sweep="0ther")
            assert ledger.resolve("bbb")[0] == "run"
            scope, rows = ledger.resolve("feed")
            assert scope == "sweep" and len(rows) == 2
            with pytest.raises(ValueError, match="ambiguous"):
                ledger.resolve("aaa")
            with pytest.raises(KeyError):
                ledger.resolve("zzz")

    def test_summarize_recomputes_rates_from_sums(self, tmp_path):
        with RunLedger(tmp_path / "l.sqlite") as ledger:
            self._record(ledger, "r1", sweep="s", accesses=1000, measure=2.0)
            self._record(ledger, "r2", sweep="s", accesses=3000, measure=2.0)
            _, rows = ledger.resolve("s")
            summary = summarize(ledger, rows)
        assert summary["runs"] == 2
        assert summary["accesses_per_sec"] == pytest.approx(1000.0)
        assert summary["trace_store_hit_rate"] == pytest.approx(6 / 8)
        # Summed per-run rates are dropped, not reported as metrics.
        assert "accesses_per_sec" not in summary["metrics"]

    def test_heartbeat_upsert_preserves_missing_fields(self, tmp_path):
        with RunLedger(tmp_path / "l.sqlite") as ledger:
            ledger.heartbeat("w1", status="running", job_seq=7,
                             job_kind="trial")
            ledger.heartbeat("w1", status="idle")
            row = ledger.heartbeats()[0]
            assert row["status"] == "idle"
            assert row["job_seq"] == 7  # untouched by the second upsert
            ledger.heartbeat("w1", status="exited")
            assert ledger.heartbeats() == []
            assert len(ledger.heartbeats(include_exited=True)) == 1


# --------------------------------------------------------------------- #
# Queue integration: ledger from a queued sampled sweep, queue events
# --------------------------------------------------------------------- #
class TestQueueTelemetry:
    def test_queued_sampled_sweep_populates_ledger(self, obs_on, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        service = SweepService()
        spec = sampled_spec()
        token = service.submit(spec).token
        service.run(spec)

        with RunLedger(obs_on / "ledger.sqlite") as ledger:
            scope, rows = ledger.resolve(token)
            assert scope == "sweep"
            kinds = {row["kind"] for row in rows}
            assert "windows" in kinds and "assemble" in kinds
            assert all(row["status"] == "ok" for row in rows)
            # Window jobs carry their job_seq from the worker's context.
            assert any(row["job_seq"] is not None for row in rows
                       if row["kind"] == "windows")
            summary = summarize(ledger, rows)
            heartbeats = ledger.heartbeats(include_exited=True)

        for phase in ("trace_load", "warmup", "measure", "assemble"):
            assert phase in summary["phases"], phase
        assert summary["accesses_per_sec"] > 0
        assert "checkpoint_hit_rate" in summary
        assert heartbeats and heartbeats[0]["jobs_done"] >= 1

    def test_backoff_failed_and_reclaim_events_reach_ledger(self, obs_on,
                                                            tmp_path):
        def one_job():
            return [PlannedJob(key="k0", trial_index=0, part=0, kind="trial",
                               trace_group="g", payload=b"p")]

        now = 1000.0
        with JobStore(tmp_path / "jobs.sqlite") as store:
            # Sweep 1: one job failed twice -> backoff, then permanent.
            store.submit("sweep-retry", "desc", None, one_job(),
                         max_attempts=2)
            job = store.lease("w1", 60.0, now=now)
            store.fail(job.sweep, job.seq, "first failure", "w1", now=now)
            job = store.lease("w1", 60.0, now=now + 3600)  # past backoff
            store.fail(job.sweep, job.seq, "second failure", "w1",
                       now=now + 3600)
            # Sweep 2: a lease left to expire, reclaimed by recover().
            store.submit("sweep-lost", "desc", None, one_job())
            store.lease("w2", 60.0, sweep="sweep-lost", now=now)
            store.recover(now=now + 7200, reclaim_dead=False)

        with RunLedger(obs_on / "ledger.sqlite") as ledger:
            events = ledger.events_for(limit=50)
            kinds = {row["kind"] for row in events}
            reclaimed = [row for row in events
                         if row["kind"] == "lease_reclaimed"]
        assert "job_backoff" in kinds
        assert "job_failed" in kinds
        assert reclaimed and reclaimed[0]["sweep"] == "sweep-lost"


# --------------------------------------------------------------------- #
# CLI views
# --------------------------------------------------------------------- #
class TestCli:
    def _drain_tiny_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "queue"))
        service = SweepService()
        spec = tiny_spec()
        token = service.submit(spec).token
        service.run(spec)
        return token

    def test_queue_status_json_machine_readable(self, obs_on, tmp_path,
                                                monkeypatch, capsys):
        from repro.cli import main

        token = self._drain_tiny_sweep(tmp_path, monkeypatch)
        assert main(["queue", "status", token, "--json", "--jobs"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["token"] == token
        assert data["counts"]["done"] == data["total"]
        assert data["timing"]["jobs_timed"] == data["total"]
        job = data["jobs"][0]
        assert job["state"] == "done"
        assert job["run_seconds"] > 0
        assert job["attempts"] == 1

        assert main(["queue", "status", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["sweeps"][0]["token"] == token

    def test_queue_status_jobs_renders_hidden_fields(self, obs_on, tmp_path,
                                                     monkeypatch, capsys):
        from repro.cli import main

        token = self._drain_tiny_sweep(tmp_path, monkeypatch)
        assert main(["queue", "status", token, "--jobs"]) == 0
        out = capsys.readouterr().out
        assert "seq" in out and "seconds" in out

    def test_runs_list_show_and_compare(self, obs_on, tmp_path, monkeypatch,
                                        capsys):
        from repro.cli import main

        token = self._drain_tiny_sweep(tmp_path, monkeypatch)
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "trial" in out and token[:8] in out

        assert main(["runs", "show", token]) == 0
        out = capsys.readouterr().out
        assert "accesses_per_sec" in out
        for phase in ("trace_load", "warmup", "measure"):
            assert phase in out

        assert main(["runs", "show", token, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scope"] == "sweep"
        assert data["runs"] >= 1

        assert main(["runs", "compare", token, token]) == 0
        assert "wall_seconds" in capsys.readouterr().out

    def test_runs_show_unknown_ref_fails_cleanly(self, obs_on, capsys):
        from repro.cli import main

        with RunLedger(Path(query_root()) / "ledger.sqlite"):
            pass  # materialize an empty ledger
        assert main(["runs", "show", "nonexistent"]) == 1
        assert "no run or sweep" in capsys.readouterr().err

    def test_top_renders_heartbeats(self, obs_on, tmp_path, monkeypatch,
                                    capsys):
        from repro.cli import main

        self._drain_tiny_sweep(tmp_path, monkeypatch)
        with RunLedger(Path(query_root()) / "ledger.sqlite") as ledger:
            ledger.heartbeat("w-live", status="running", job_seq=1,
                             job_kind="trial", jobs_done=2,
                             jobs_per_second=0.5)
        assert main(["top"]) == 0
        out = capsys.readouterr().out
        assert "w-live" in out and "running" in out

    def test_sample_telemetry_flag_records_run(self, obs_on, tmp_path,
                                               monkeypatch, capsys):
        from repro.cli import main

        code = main(["sample", "--telemetry", "--designs", "unison",
                     "--capacity", "512MB", "--accesses", "6000",
                     "--scale", "4096", "--windows", "4", "--quiet"])
        assert code == 0
        capsys.readouterr()
        with RunLedger(Path(query_root()) / "ledger.sqlite") as ledger:
            rows = ledger.runs(limit=5, kind="trial")
            assert rows
            phases = ledger.phases_for([rows[0]["run_id"]])
        assert "measure" in phases
