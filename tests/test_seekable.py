"""Tests for the seekable trace layer: chunk index, mmap and window readers."""

import struct

import pytest

from repro.trace.binfmt import (
    DEFAULT_CHUNK_RECORDS,
    HEADER,
    RECORD,
    BinaryTraceReader,
    BinaryTraceWriter,
    ChunkIndex,
    index_path_for,
    read_trace_bin,
    write_trace_bin,
    zstd_available,
)
from repro.trace.errors import TraceFormatError
from repro.sampling.seekable import (
    FileWindows,
    IndexedWindowReader,
    InMemoryWindows,
    MmapTraceReader,
    open_window_reader,
)
from tests.test_binfmt import sample_trace


N_MULTI_CHUNK = DEFAULT_CHUNK_RECORDS * 2 + 500


class TestChunkIndexSidecar:
    @pytest.mark.parametrize("compress", [True, False])
    def test_writer_emits_loadable_sidecar(self, tmp_path, compress):
        trace = sample_trace(N_MULTI_CHUNK)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, compress=compress)
        assert index_path_for(path).exists()
        index = ChunkIndex.load(path)
        assert index is not None
        assert index.access_count == N_MULTI_CHUNK
        assert list(index.starts) == [0, DEFAULT_CHUNK_RECORDS,
                                      2 * DEFAULT_CHUNK_RECORDS]
        assert index.offsets[0] == HEADER.size
        assert list(index.offsets) == sorted(index.offsets)

    def test_write_index_false_writes_no_sidecar(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(100), write_index=False)
        assert not index_path_for(path).exists()

    def test_empty_trace_sidecar(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, [])
        index = ChunkIndex.load(path)
        assert index is not None and len(index) == 0

    def test_reconstruct_uncompressed_is_arithmetic(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(N_MULTI_CHUNK), compress=False)
        index_path_for(path).unlink()
        index = ChunkIndex.reconstruct(path)
        assert list(index.starts) == [0, DEFAULT_CHUNK_RECORDS,
                                      2 * DEFAULT_CHUNK_RECORDS]
        assert index.offsets[1] == HEADER.size + DEFAULT_CHUNK_RECORDS * RECORD.size

    def test_reconstruct_scans_gzip_members(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(N_MULTI_CHUNK), compress=True)
        written = ChunkIndex.load(path)
        index_path_for(path).unlink()
        rebuilt = ChunkIndex.reconstruct(path)
        assert rebuilt.starts == written.starts
        assert rebuilt.offsets == written.offsets

    def test_ensure_saves_reconstruction(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(500), write_index=False)
        index = ChunkIndex.ensure(path)
        assert index_path_for(path).exists()
        assert ChunkIndex.load(path) is not None
        assert index.access_count == 500

    def test_stale_sidecar_rejected(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(500))
        write_trace_bin(path, sample_trace(300), write_index=False)
        # Sidecar still describes the 500-record file: must not load.
        assert ChunkIndex.load(path) is None
        assert ChunkIndex.ensure(path).access_count == 300

    def test_corrupt_sidecar_rejected(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(200))
        index_path_for(path).write_bytes(b"garbage!")
        assert ChunkIndex.load(path) is None

    def test_chunk_containing(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(N_MULTI_CHUNK))
        index = ChunkIndex.load(path)
        assert index.chunk_containing(0) == 0
        assert index.chunk_containing(DEFAULT_CHUNK_RECORDS - 1) == 0
        assert index.chunk_containing(DEFAULT_CHUNK_RECORDS) == 1
        assert index.chunk_containing(N_MULTI_CHUNK - 1) == 2
        with pytest.raises(IndexError):
            index.chunk_containing(N_MULTI_CHUNK)

    def test_aborted_stream_has_no_sidecar(self, tmp_path):
        path = tmp_path / "t.rptr"
        try:
            with BinaryTraceWriter(path) as writer:
                writer.write_all(sample_trace(10))
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert not index_path_for(path).exists()


class TestMmapTraceReader:
    def test_windows_match_streaming_reader(self, tmp_path):
        trace = sample_trace(N_MULTI_CHUNK)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, compress=False)
        with MmapTraceReader(path) as reader:
            assert reader.access_count == N_MULTI_CHUNK
            for start, stop in [(0, 10), (100, 100), (16000, 17000),
                                (N_MULTI_CHUNK - 5, N_MULTI_CHUNK)]:
                assert reader.read_window(start, stop) == trace[start:stop]
            # Clipping past the end, and read_all equivalence.
            assert reader.read_window(N_MULTI_CHUNK - 2, N_MULTI_CHUNK + 50) \
                == trace[-2:]
            assert reader.read_all() == trace

    def test_rejects_compressed_trace(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(10), compress=True)
        with pytest.raises(TraceFormatError, match="uncompressed"):
            MmapTraceReader(path)

    def test_rejects_bad_window_bounds(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(10), compress=False)
        with MmapTraceReader(path) as reader:
            with pytest.raises(ValueError):
                reader.read_window(-1, 5)
            with pytest.raises(ValueError):
                reader.read_window(5, 3)

    def test_iteration_still_streams(self, tmp_path):
        trace = sample_trace(300)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, compress=False)
        assert list(MmapTraceReader(path)) == trace


class TestIndexedWindowReader:
    @pytest.mark.parametrize("with_sidecar", [True, False])
    def test_windows_match_trace(self, tmp_path, with_sidecar):
        trace = sample_trace(N_MULTI_CHUNK)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, compress=True)
        if not with_sidecar:
            index_path_for(path).unlink()
        with IndexedWindowReader(path) as reader:
            assert reader.access_count == N_MULTI_CHUNK
            for start, stop in [(0, 64), (DEFAULT_CHUNK_RECORDS - 3,
                                          DEFAULT_CHUNK_RECORDS + 3),
                                (N_MULTI_CHUNK - 100, N_MULTI_CHUNK)]:
                assert reader.read_window(start, stop) == trace[start:stop]

    def test_legacy_single_member_file(self, tmp_path):
        """A pre-sidecar gzip file (one member) still windows correctly."""
        import gzip

        trace = sample_trace(2000)
        path = tmp_path / "legacy.rptr"
        write_trace_bin(path, trace, compress=False, write_index=False)
        raw = path.read_bytes()
        header = bytearray(raw[:HEADER.size])
        # Patch the flags to FLAG_GZIP and re-wrap the payload as a single
        # gzip member, exactly like the pre-chunk-member writer did.
        struct.pack_into("<H", header, 6, 0x0001)
        path.write_bytes(bytes(header) + gzip.compress(raw[HEADER.size:],
                                                       mtime=0))
        reader = IndexedWindowReader(path)
        assert len(reader.index) == 1
        assert reader.read_window(500, 700) == trace[500:700]


class TestZstdCodec:
    pytestmark = pytest.mark.skipif(
        not zstd_available(), reason="no zstd implementation available")

    def test_round_trip(self, tmp_path):
        trace = sample_trace(N_MULTI_CHUNK)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, codec="zstd")
        assert read_trace_bin(path) == trace

    def test_header_reports_codec(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_bin(path, sample_trace(10), codec="zstd")
        assert BinaryTraceReader(path).info().codec == "zstd"

    def test_windows(self, tmp_path):
        trace = sample_trace(N_MULTI_CHUNK)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, codec="zstd")
        with IndexedWindowReader(path) as reader:
            assert reader.read_window(17000, 17500) == trace[17000:17500]


class TestZstdUnavailable:
    pytestmark = pytest.mark.skipif(
        zstd_available(), reason="zstd is available here")

    def test_writer_raises_cleanly(self, tmp_path):
        with pytest.raises(TraceFormatError, match="zstd"):
            BinaryTraceWriter(tmp_path / "t.rptr", codec="zstd")


class TestOpenWindowReader:
    def test_dispatches_by_codec(self, tmp_path):
        plain = tmp_path / "plain.rptr"
        packed = tmp_path / "packed.rptr"
        write_trace_bin(plain, sample_trace(50), compress=False)
        write_trace_bin(packed, sample_trace(50), compress=True)
        assert isinstance(open_window_reader(plain), MmapTraceReader)
        assert isinstance(open_window_reader(packed), IndexedWindowReader)


class TestWindowProviders:
    def test_in_memory_windows(self):
        trace = sample_trace(100)
        provider = InMemoryWindows(trace)
        assert provider.total == 100
        assert list(provider.read(10, 20)) == trace[10:20]
        assert list(provider.read(90, 200)) == trace[90:]

    @pytest.mark.parametrize("compress", [True, False])
    def test_file_windows(self, tmp_path, compress):
        trace = sample_trace(400)
        path = tmp_path / "t.rptr"
        write_trace_bin(path, trace, compress=compress)
        provider = FileWindows(path, limit=300)
        assert provider.total == 300
        assert list(provider.read(100, 150)) == trace[100:150]
        # The limit truncates exactly like ExperimentConfig.num_accesses.
        assert list(provider.read(250, 400)) == trace[250:300]
        provider.close()

    def test_file_windows_rejects_text(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("not binary\n")
        with pytest.raises(TraceFormatError):
            FileWindows(path)
