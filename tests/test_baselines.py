"""Tests for the Alloy, Footprint, Ideal and NoCache baseline designs."""

import pytest

from repro.baselines.alloy import AlloyCache
from repro.baselines.footprint import FootprintCache
from repro.baselines.ideal import IdealCache
from repro.baselines.no_cache import NoDramCache
from repro.config.cache_configs import AlloyCacheConfig, FootprintCacheConfig
from repro.trace.record import AccessType, MemoryAccess
from repro.utils.bitvector import BitVector


def read(block: int, pc: int = 0x400100, core: int = 0) -> MemoryAccess:
    return MemoryAccess(address=block * 64, pc=pc, core_id=core)


def write(block: int, pc: int = 0x400100, core: int = 0) -> MemoryAccess:
    return MemoryAccess(address=block * 64, pc=pc, core_id=core,
                        access_type=AccessType.WRITE)


class TestAlloyCache:
    def make(self, **overrides) -> AlloyCache:
        params = dict(capacity=64 * 8192)
        params.update(overrides)
        return AlloyCache(AlloyCacheConfig(**params), num_cores=4)

    def test_miss_then_hit_same_block(self):
        cache = self.make()
        assert not cache.access(read(10)).hit
        assert cache.access(read(10)).hit

    def test_no_spatial_prefetch(self):
        cache = self.make()
        cache.access(read(100))
        # The neighbouring block is NOT brought in: block-based caches only
        # capture temporal reuse (Section II-A).
        assert not cache.access(read(101)).hit

    def test_direct_mapped_conflict(self):
        cache = self.make()
        conflicting = 5 + cache.num_blocks
        cache.access(read(5))
        cache.access(read(conflicting))
        assert not cache.access(read(5)).hit

    def test_miss_fetches_exactly_one_block(self):
        cache = self.make()
        result = cache.access(read(42))
        assert result.offchip_blocks_fetched == 1
        assert cache.memory.blocks_read == 1

    def test_dirty_victim_written_back(self):
        cache = self.make()
        cache.access(write(7))
        cache.access(read(7 + cache.num_blocks))
        assert cache.memory.blocks_written == 1

    def test_predicted_miss_bypasses_lookup_latency(self):
        cache = self.make()
        pc = 0x400900
        # Train the miss predictor with a stream of misses from one PC.
        for i in range(16):
            cache.access(read(1000 + i * cache.num_blocks, pc=pc))
        trained_miss = cache.access(read(5000 + cache.num_blocks * 3, pc=pc))
        # Compare against a fresh cache whose predictor predicts "hit".
        fresh = self.make(use_miss_predictor=False)
        unpredicted_miss = fresh.access(read(5000 + fresh.num_blocks * 3, pc=pc))
        assert trained_miss.latency_cycles < unpredicted_miss.latency_cycles

    def test_false_miss_prediction_creates_extra_traffic(self):
        cache = self.make()
        pc = 0x400A00
        for i in range(16):
            cache.access(read(2000 + i * cache.num_blocks, pc=pc))   # all misses
        # Now access a block that IS cached using the same (miss-biased) PC.
        cache.access(read(2000, pc=pc))
        hit = cache.access(read(2000, pc=pc))
        assert hit.hit
        assert cache.cache_stats.offchip_prefetch_blocks >= 1

    def test_miss_predictor_accuracy_reported(self):
        cache = self.make()
        for i in range(200):
            cache.access(read(i * 3, pc=0x400000 + (i % 8) * 4))
        assert 0.0 <= cache.miss_prediction_accuracy <= 1.0

    def test_without_miss_predictor(self):
        cache = self.make(use_miss_predictor=False)
        cache.access(read(1))
        assert cache.miss_predictor is None
        assert cache.miss_prediction_accuracy == 0.0


class TestFootprintCache:
    def make(self, **overrides) -> FootprintCache:
        tag_latency = overrides.pop("tag_latency_cycles", None)
        params = dict(capacity=64 * 8192, associativity=8)
        params.update(overrides)
        return FootprintCache(FootprintCacheConfig(**params),
                              tag_latency_cycles=tag_latency)

    def test_page_allocation_gives_spatial_hits(self):
        cache = self.make()
        cache.access(read(32 * 5 + 0))        # trigger miss for page 5
        for offset in range(1, 32):
            assert cache.access(read(32 * 5 + offset)).hit

    def test_tag_latency_added_to_every_access(self):
        fast = self.make(tag_latency_cycles=1)
        slow = self.make(tag_latency_cycles=48)
        # Warm the page and let the fill traffic drain before comparing hits.
        for offset in range(4):
            fast.access(read(offset))
            slow.access(read(offset))
        hit_fast = fast.access(read(4))
        hit_slow = slow.access(read(4))
        assert hit_fast.hit and hit_slow.hit
        assert hit_slow.latency_cycles - hit_fast.latency_cycles >= 40

    def test_default_tag_latency_follows_table_iv(self):
        cache = FootprintCache(FootprintCacheConfig(capacity="1GB"))
        assert cache.tag_latency_cycles == 16

    def test_eviction_trains_footprint_predictor(self):
        cache = self.make()
        pc = 0x400700
        page = 3
        sets = cache.num_sets
        for offset in (0, 1, 2):
            cache.access(read(32 * page + offset, pc=pc))
        for i in range(1, cache.associativity + 1):
            cache.access(read(32 * (page + i * sets), pc=pc + 64))
        prediction = cache.footprint_predictor.predict(pc, 0)
        assert prediction.from_history
        assert set(prediction.footprint.indices()) == {0, 1, 2}

    def test_singleton_bypass(self):
        cache = self.make()
        pc = 0x400800
        cache.footprint_predictor.update(pc, 9, BitVector.from_indices(32, [9]))
        allocated = cache.cache_stats.pages_allocated
        result = cache.access(read(32 * 40 + 9, pc=pc))
        assert not result.hit
        assert cache.cache_stats.pages_allocated == allocated
        assert cache.cache_stats.singleton_bypasses == 1

    def test_dirty_blocks_written_back_on_eviction(self):
        cache = self.make(associativity=2)
        sets = cache.num_sets
        cache.access(write(32 * 1))
        for i in range(1, 4):
            cache.access(read(32 * (1 + i * sets)))
        assert cache.memory.blocks_written >= 1

    def test_footprint_metrics_exposed(self):
        cache = self.make()
        for i in range(300):
            cache.access(read(i, pc=0x400000 + (i % 4) * 4))
        assert 0.0 <= cache.footprint_accuracy <= 1.0
        assert 0.0 <= cache.footprint_overfetch <= 1.0


class TestIdealCache:
    def test_every_access_hits(self):
        cache = IdealCache(capacity="1GB")
        for i in range(100):
            assert cache.access(read(i * 17)).hit
        assert cache.cache_stats.miss_ratio == 0.0

    def test_no_offchip_traffic(self):
        cache = IdealCache()
        for i in range(50):
            cache.access(read(i))
        assert cache.memory.blocks_transferred == 0

    def test_latency_is_one_stacked_access(self):
        cache = IdealCache()
        result = cache.access(read(0))
        assert 20 <= result.latency_cycles <= 80


class TestNoDramCache:
    def test_every_access_misses_offchip(self):
        cache = NoDramCache()
        for i in range(20):
            assert not cache.access(read(i)).hit
        assert cache.cache_stats.miss_ratio == 1.0
        assert cache.memory.blocks_read == 20

    def test_writes_counted_as_writebacks(self):
        cache = NoDramCache()
        cache.access(write(3))
        assert cache.cache_stats.offchip_writeback_blocks == 1
        assert cache.memory.blocks_written == 1

    def test_latency_reflects_offchip_dram(self):
        cache = NoDramCache()
        result = cache.access(read(0))
        assert result.latency_cycles >= 80
