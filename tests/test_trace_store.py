"""Tests for the on-disk TraceStore."""

import os

import pytest

from repro.trace.binfmt import read_header
from repro.trace.store import (
    TraceStore,
    configured_root,
    default_root,
    trace_key_string,
)
from repro.workloads.generator import GENERATOR_VERSION
from repro.workloads.profile import WorkloadProfile


def make_trace(n):
    from repro.trace.record import MemoryAccess

    return [MemoryAccess(address=i * 64, pc=0x400000 + i, timestamp=i)
            for i in range(n)]


@pytest.fixture
def profile(tiny_profile) -> WorkloadProfile:
    return tiny_profile


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(root=tmp_path / "store")


class TestKeys:
    def test_key_is_deterministic(self, store, profile):
        assert (store.key(profile, 128, 4, 1, 1000)
                == store.key(profile, 128, 4, 1, 1000))

    @pytest.mark.parametrize("kwargs", [
        dict(scale=256), dict(num_cores=8), dict(seed=2),
        dict(num_accesses=2000),
    ])
    def test_key_depends_on_every_run_parameter(self, store, profile, kwargs):
        base = dict(scale=128, num_cores=4, seed=1, num_accesses=1000)
        changed = dict(base, **kwargs)
        assert (store.key(profile, **base) != store.key(profile, **changed))

    def test_key_depends_on_profile_fields(self, store, profile):
        import dataclasses

        other = dataclasses.replace(profile, footprint_density=0.9)
        assert (store.key(profile, 128, 4, 1, 1000)
                != store.key(other, 128, 4, 1, 1000))

    def test_key_embeds_generator_version(self, profile):
        identity = trace_key_string(profile, 128, 4, 1, 1000)
        assert f"generator=v{GENERATOR_VERSION}" in identity

    def test_key_is_a_safe_filename(self, store, profile):
        key = store.key(profile, 128, 4, 1, 1000)
        assert "/" not in key and " " not in key
        assert store.path_for(key).parent == store.root


class TestHitMiss:
    def test_miss_then_hit(self, store, profile):
        key = store.key(profile, 128, 4, 1, 100)
        assert store.load(key) is None
        assert store.stats.misses == 1 and store.stats.hits == 0

        trace = make_trace(100)
        store.put(key, trace, num_cores=4)
        assert store.stats.writes == 1
        assert store.contains(key)
        assert store.load(key) == trace
        assert store.stats.hits == 1

    def test_put_chunks_collect(self, store, profile):
        key = store.key(profile, 128, 4, 1, 100)
        trace = make_trace(100)
        chunks = [trace[:40], trace[40:80], trace[80:]]
        collected = store.put_chunks(key, chunks, num_cores=4, collect=True)
        assert collected == trace
        assert store.load(key) == trace

    def test_put_chunks_without_collect(self, store, profile):
        key = store.key(profile, 128, 4, 1, 10)
        assert store.put_chunks(key, [make_trace(10)]) is None
        assert store.contains(key)

    def test_open_reader_streams(self, store, profile):
        key = store.key(profile, 128, 4, 1, 50)
        trace = make_trace(50)
        store.put(key, trace)
        reader = store.open_reader(key)
        assert list(reader) == trace

    def test_corrupt_entry_treated_as_miss(self, store, profile):
        key = store.key(profile, 128, 4, 1, 10)
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"garbage that is not a trace")
        assert store.load(key) is None
        assert not store.path_for(key).exists()  # quarantined

    def test_corrupt_payload_treated_as_miss(self, store, profile):
        """Valid header + truncated gzip payload must not crash a sweep."""
        key = store.key(profile, 128, 4, 1, 50)
        store.put(key, make_trace(50))
        path = store.path_for(key)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # keep header, cut payload
        hits_before = store.stats.hits
        assert store.load(key) is None
        assert store.stats.hits == hits_before  # counted as a miss
        assert not path.exists()  # quarantined

    def test_no_partial_files_after_put(self, store, profile):
        key = store.key(profile, 128, 4, 1, 10)
        store.put(key, make_trace(10))
        # Only the entry and its chunk-index sidecar may remain -- never a
        # temp file from the atomic-rename dance.
        leftovers = [p for p in store.root.iterdir()
                     if p.suffix not in (".rptr", ".rpti")]
        assert leftovers == []
        assert (store.root / f"{key}.rptr.rpti").exists()


class TestEviction:
    def test_lru_eviction_under_budget(self, tmp_path, profile):
        store = TraceStore(root=tmp_path / "store")
        keys = [store.key(profile, 128, 4, seed, 200) for seed in (1, 2, 3)]
        for index, key in enumerate(keys):
            store.put(key, make_trace(200))
            os.utime(store.path_for(key), (1000 + index, 1000 + index))
        entry_bytes = store.total_bytes() // 3

        # Touch the first entry so it is most recently used, then shrink.
        os.utime(store.path_for(keys[0]), (2000, 2000))
        store.evict_to(entry_bytes * 2)
        assert store.contains(keys[0])
        assert not store.contains(keys[1])
        assert store.stats.evictions >= 1

    def test_budget_enforced_on_write(self, tmp_path, profile):
        store = TraceStore(root=tmp_path / "store", max_bytes=1)
        key1 = store.key(profile, 128, 4, 1, 100)
        key2 = store.key(profile, 128, 4, 2, 100)
        store.put(key1, make_trace(100))
        store.put(key2, make_trace(100))
        # The just-written entry survives even when over budget.
        assert store.contains(key2)
        assert not store.contains(key1)

    def test_clear(self, store, profile):
        for seed in range(3):
            store.put(store.key(profile, 128, 4, seed, 10), make_trace(10))
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0 and store.total_bytes() == 0


class TestEnvironment:
    def test_default_root_used_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        assert configured_root() == default_root()

    def test_env_overrides_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "custom"))
        assert configured_root() == tmp_path / "custom"
        assert TraceStore().root == tmp_path / "custom"

    @pytest.mark.parametrize("value", ["off", "OFF", "none", "0", "disabled"])
    def test_env_disables_store(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_STORE", value)
        assert configured_root() is None
        with pytest.raises(ValueError, match="disabled"):
            TraceStore()

    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_root() == tmp_path / "xdg" / "repro" / "traces"

    def test_entries_num_cores_header(self, store, profile):
        key = store.key(profile, 128, 4, 1, 20)
        store.put(key, make_trace(20), num_cores=4)
        assert read_header(store.path_for(key)).num_cores == 4
