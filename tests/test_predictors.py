"""Tests for the footprint, singleton, way and miss predictors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.footprint import FootprintPredictor
from repro.predictors.miss import MissPredictor
from repro.predictors.singleton import SingletonTable
from repro.predictors.way import WayPredictor
from repro.utils.bitvector import BitVector


class TestFootprintPredictor:
    def test_untrained_default_predicts_whole_page(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        prediction = predictor.predict(pc=0x400000, offset=3)
        assert not prediction.from_history
        assert prediction.footprint.all()

    def test_untrained_default_single_block_mode(self):
        predictor = FootprintPredictor(blocks_per_page=15, default_all_blocks=False)
        prediction = predictor.predict(pc=0x400000, offset=3)
        assert prediction.footprint.indices() == [3]
        assert prediction.is_singleton

    def test_trained_prediction_returned(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        footprint = BitVector.from_indices(15, [2, 3, 4])
        predictor.update(pc=0x400000, offset=2, actual_footprint=footprint)
        prediction = predictor.predict(pc=0x400000, offset=2)
        assert prediction.from_history
        assert prediction.footprint.indices() == [2, 3, 4]

    def test_trigger_block_always_included(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predictor.update(0x400000, 5, BitVector.from_indices(15, [1]))
        prediction = predictor.predict(0x400000, 5)
        assert prediction.footprint.get(5)

    def test_singleton_detection(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predictor.update(0x400000, 7, BitVector.from_indices(15, [7]))
        assert predictor.predict(0x400000, 7).is_singleton

    def test_different_offsets_are_independent_keys(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predictor.update(0x400000, 0, BitVector.from_indices(15, [0, 1]))
        assert predictor.predict(0x400000, 1).from_history is False

    def test_capacity_eviction_lru(self):
        predictor = FootprintPredictor(blocks_per_page=15, num_entries=4,
                                       associativity=4)
        # All keys that collide into the same (single) set; the oldest entry
        # should be displaced once a fifth is trained.
        for pc in range(5):
            predictor.update(pc, 0, BitVector.from_indices(15, [0]))
        trained = sum(
            1 for pc in range(5) if predictor.predict(pc, 0).from_history
        )
        assert trained <= 4

    def test_offset_out_of_range(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        with pytest.raises(ValueError):
            predictor.predict(0, 15)

    def test_update_width_mismatch(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        with pytest.raises(ValueError):
            predictor.update(0, 0, BitVector(31))

    def test_outcome_accounting(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predicted = BitVector.from_indices(15, [0, 1, 2, 3])
        actual = BitVector.from_indices(15, [0, 1, 5])
        predictor.record_outcome(predicted, actual, from_history=True)
        # 2 of 3 actual blocks predicted; 2 of 4 fetched blocks wasted.
        assert predictor.accuracy_ratio == pytest.approx(2 / 3)
        assert predictor.overfetch_ratio == pytest.approx(2 / 4)
        assert predictor.underpredicted_blocks == 1

    def test_cold_outcomes_separated_from_trained(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predictor.record_outcome(BitVector.ones(15),
                                 BitVector.from_indices(15, [0]),
                                 from_history=False)
        predictor.record_outcome(BitVector.from_indices(15, [0, 1]),
                                 BitVector.from_indices(15, [0, 1]),
                                 from_history=True)
        # Headline metrics reflect the trained prediction only.
        assert predictor.accuracy_ratio == pytest.approx(1.0)
        assert predictor.overfetch_ratio == pytest.approx(0.0)
        assert predictor.overall_overfetch_ratio > 0.5

    def test_reset_stats_keeps_training(self):
        predictor = FootprintPredictor(blocks_per_page=15)
        predictor.update(0x400000, 2, BitVector.from_indices(15, [2, 3]))
        predictor.record_outcome(BitVector.ones(15), BitVector.ones(15))
        predictor.reset_stats()
        assert predictor.fetched_blocks == 0
        assert predictor.predict(0x400000, 2).from_history

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_trained_prediction_reproduces_footprint(self, data):
        predictor = FootprintPredictor(blocks_per_page=15)
        pc = data.draw(st.integers(0, 2 ** 40))
        offset = data.draw(st.integers(0, 14))
        indices = data.draw(st.lists(st.integers(0, 14), unique=True, min_size=1))
        footprint = BitVector.from_indices(15, indices)
        predictor.update(pc, offset, footprint)
        prediction = predictor.predict(pc, offset)
        expected = footprint.copy()
        expected.set(offset)
        assert prediction.footprint == expected


class TestSingletonTable:
    def test_insert_and_lookup(self):
        table = SingletonTable(num_entries=4, blocks_per_page=15)
        table.insert(page_number=10, trigger_pc=0x400000, trigger_offset=3)
        assert table.lookup(10) is not None
        assert table.lookup(11) is None

    def test_promotion_on_second_block(self):
        table = SingletonTable(num_entries=4, blocks_per_page=15)
        table.insert(10, 0x400000, 3)
        assert table.record_access(10, 3) is None       # same block: still singleton
        correction = table.record_access(10, 7)
        assert correction is not None
        pc, offset, observed = correction
        assert (pc, offset) == (0x400000, 3)
        assert observed.indices() == [3, 7]
        assert table.lookup(10) is None                 # removed after promotion

    def test_untracked_page_ignored(self):
        table = SingletonTable(num_entries=4, blocks_per_page=15)
        assert table.record_access(99, 0) is None

    def test_lru_eviction(self):
        table = SingletonTable(num_entries=2, blocks_per_page=15)
        table.insert(1, 0, 0)
        table.insert(2, 0, 0)
        table.insert(3, 0, 0)
        assert table.lookup(1) is None
        assert table.evictions == 1
        assert table.occupancy == 2

    def test_remove(self):
        table = SingletonTable(num_entries=2, blocks_per_page=15)
        table.insert(1, 0, 0)
        assert table.remove(1)
        assert not table.remove(1)

    def test_invalid_offsets(self):
        table = SingletonTable(num_entries=2, blocks_per_page=15)
        with pytest.raises(ValueError):
            table.insert(1, 0, 15)
        table.insert(1, 0, 0)
        with pytest.raises(ValueError):
            table.record_access(1, 20)

    def test_stats(self):
        table = SingletonTable(num_entries=2, blocks_per_page=15)
        table.insert(1, 0, 0)
        assert table.stats().get("insertions") == 1


class TestWayPredictor:
    def test_learns_single_mapping(self):
        predictor = WayPredictor(index_bits=12, associativity=4)
        predictor.update(page_address=100, actual_way=3)
        assert predictor.predict(100) == 3

    def test_record_tracks_accuracy(self):
        predictor = WayPredictor(index_bits=12, associativity=4)
        assert not predictor.record(200, 2)     # cold entry predicts way 0
        assert predictor.record(200, 2)         # trained now
        assert predictor.accuracy.value == pytest.approx(0.5)

    def test_repeated_page_accesses_predict_well(self):
        predictor = WayPredictor(index_bits=12, associativity=4)
        pages = [(page, page % 4) for page in range(64)]
        for _ in range(4):
            for page, way in pages:
                predictor.record(page, way)
        assert predictor.accuracy.value > 0.7

    def test_for_capacity_sizing_rule(self):
        small = WayPredictor.for_capacity(1 * 1024 ** 3)
        large = WayPredictor.for_capacity(8 * 1024 ** 3)
        assert small.index_bits == 12
        assert large.index_bits == 16
        # Table II: 1 KB (12-bit) up to 16 KB (16-bit) of storage.
        assert small.storage_bytes == 1024
        assert large.storage_bytes == 16 * 1024

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WayPredictor(index_bits=0)
        with pytest.raises(ValueError):
            WayPredictor(associativity=1)
        predictor = WayPredictor()
        with pytest.raises(ValueError):
            predictor.update(0, 7)

    def test_reset_stats_keeps_table(self):
        predictor = WayPredictor()
        predictor.record(5, 1)
        predictor.reset_stats()
        assert predictor.accuracy.denominator == 0
        assert predictor.predict(5) == 1


class TestMissPredictor:
    def test_learns_persistent_misses(self):
        predictor = MissPredictor(num_cores=1, entries_per_core=64)
        pc = 0x400100
        for _ in range(8):
            predictor.record(0, pc, was_miss=True)
        assert predictor.predict_miss(0, pc)

    def test_learns_persistent_hits(self):
        predictor = MissPredictor(num_cores=1, entries_per_core=64)
        pc = 0x400200
        for _ in range(8):
            predictor.record(0, pc, was_miss=False)
        assert not predictor.predict_miss(0, pc)

    def test_miss_identification_metric(self):
        predictor = MissPredictor(num_cores=1)
        pc = 0x400300
        for _ in range(10):
            predictor.record(0, pc, was_miss=True)
        # After warm-up nearly all misses are identified.
        assert predictor.miss_identification.value > 0.5

    def test_false_prediction_counters(self):
        predictor = MissPredictor(num_cores=1)
        pc = 0x400400
        for _ in range(8):
            predictor.record(0, pc, was_miss=True)
        predictor.record(0, pc, was_miss=False)     # a hit predicted as miss
        assert predictor.false_misses == 1

    def test_per_core_isolation(self):
        predictor = MissPredictor(num_cores=2, entries_per_core=64)
        pc = 0x400500
        for _ in range(8):
            predictor.record(0, pc, was_miss=True)
        assert predictor.predict_miss(0, pc)
        assert not predictor.predict_miss(1, pc)

    def test_storage_matches_table_ii(self):
        predictor = MissPredictor(num_cores=16, entries_per_core=256, counter_bits=3)
        assert predictor.storage_bytes_per_core == 96
        assert predictor.storage_bytes_total == 1536

    def test_invalid_core(self):
        predictor = MissPredictor(num_cores=2)
        with pytest.raises(ValueError):
            predictor.predict_miss(5, 0)
        with pytest.raises(ValueError):
            predictor.update(5, 0, True)

    def test_reset_stats_keeps_counters(self):
        predictor = MissPredictor(num_cores=1)
        pc = 0x400600
        for _ in range(8):
            predictor.record(0, pc, was_miss=True)
        predictor.reset_stats()
        assert predictor.predictions == 0
        assert predictor.predict_miss(0, pc)
