"""Integration tests: end-to-end flows across multiple subsystems.

These tests exercise the same paths the benchmark harness uses, at a much
smaller scale, and assert the *qualitative* relationships the paper's
evaluation is built on (who hits, who pays tag latency, who wastes bandwidth).
"""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.config.system import SystemConfig
from repro.cpu.cmp import TraceDrivenCmp
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.factory import make_design
from repro.sim.performance import PerformanceModel
from repro.workloads.cloudsuite import data_analytics, web_search
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        ExperimentConfig(scale=2048, num_accesses=16_000, num_cores=8, seed=5)
    )


@pytest.fixture(scope="module")
def comparison(runner):
    """All four designs over the same Web Search trace."""
    return runner.compare_designs(
        ["unison", "alloy", "footprint", "ideal"], web_search(), "1GB"
    )


class TestDesignComparison:
    def test_miss_ratio_ordering(self, comparison):
        # Alloy (block-based) has by far the highest miss ratio; the
        # page-based designs exploit spatial locality (Figure 6).
        assert comparison["alloy"].miss_ratio > comparison["unison"].miss_ratio
        assert comparison["alloy"].miss_ratio > comparison["footprint"].miss_ratio
        assert comparison["ideal"].miss_ratio == 0.0

    def test_page_based_hit_rate_is_high(self, comparison):
        assert comparison["unison"].hit_ratio > 0.75
        assert comparison["footprint"].hit_ratio > 0.75

    def test_speedup_ordering(self, comparison):
        # Ideal >= Unison > Alloy, and every design beats no-DRAM-cache.
        assert comparison["ideal"].speedup_vs_no_cache >= comparison["unison"].speedup_vs_no_cache
        assert comparison["unison"].speedup_vs_no_cache > comparison["alloy"].speedup_vs_no_cache
        for result in comparison.values():
            assert result.speedup_vs_no_cache > 1.0

    def test_unison_hit_latency_close_to_alloy(self, comparison):
        # The overlapped tag+data read keeps Unison's hit latency within a few
        # cycles of Alloy's single TAD read (Section III-A).
        assert (comparison["unison"].average_hit_latency
                <= comparison["alloy"].average_hit_latency + 15)

    def test_footprint_pays_sram_tag_latency_on_hits(self, comparison):
        assert (comparison["footprint"].average_hit_latency
                >= comparison["unison"].average_hit_latency)

    def test_predictor_accuracies_in_plausible_ranges(self, comparison):
        assert comparison["unison"].way_prediction_accuracy > 0.85
        assert comparison["unison"].footprint_accuracy > 0.5
        assert comparison["alloy"].miss_prediction_accuracy > 0.5

    def test_bandwidth_efficiency(self, comparison):
        # Page-based designs fetch footprints, not whole pages: per-access
        # off-chip traffic stays within a small factor of the block-based one.
        assert comparison["unison"].offchip_blocks_per_access < 6.0
        assert comparison["alloy"].offchip_blocks_per_access < 3.0

    def test_row_activation_energy_proxy(self, comparison):
        # Unison performs off-chip transfers at footprint granularity, so it
        # needs fewer off-chip row activations per transferred block than the
        # block-at-a-time Alloy Cache (Section V-D).
        unison = comparison["unison"]
        alloy = comparison["alloy"]
        unison_blocks = max(1, unison.offchip_demand_blocks + unison.offchip_prefetch_blocks)
        alloy_blocks = max(1, alloy.offchip_demand_blocks + alloy.offchip_prefetch_blocks)
        assert (unison.offchip_row_activations / unison_blocks
                < alloy.offchip_row_activations / alloy_blocks)


class TestCapacityTrends:
    def test_larger_cache_never_much_worse(self, runner):
        small = runner.run_design("unison", data_analytics(), "128MB")
        large = runner.run_design("unison", data_analytics(), "1GB")
        assert large.miss_ratio <= small.miss_ratio + 0.05

    def test_footprint_tag_latency_grows_with_capacity(self, runner):
        small = runner.run_design("footprint", web_search(), "128MB")
        large = runner.run_design("footprint", web_search(), "8GB")
        assert large.average_hit_latency > small.average_hit_latency

    def test_unison_hit_latency_capacity_independent(self, runner):
        small = runner.run_design("unison", web_search(), "128MB")
        large = runner.run_design("unison", web_search(), "8GB")
        assert abs(large.average_hit_latency - small.average_hit_latency) < 12


class TestFullSystemPath:
    def test_hierarchy_feeds_dram_cache(self):
        profile = WorkloadProfile(name="mini", working_set="2MB",
                                  num_code_regions=16, l2_mpki=20.0)
        system = SystemConfig(num_cores=4)
        hierarchy = CacheHierarchy(system)
        raw = SyntheticWorkload(profile, num_cores=4, seed=2).generate(4000)
        l2_misses = list(hierarchy.filter_stream(raw))
        assert l2_misses
        design = make_design("unison", "128MB", scale=1024, num_cores=4)
        stats = design.run(l2_misses)
        assert stats.accesses == len(l2_misses)

    def test_cmp_throughput_metric(self):
        profile = WorkloadProfile(name="mini", working_set="2MB",
                                  num_code_regions=16, l2_mpki=20.0)
        system = SystemConfig(num_cores=4)
        trace = SyntheticWorkload(profile, num_cores=4, seed=2).generate(2000)
        cmp_fast = TraceDrivenCmp(make_design("ideal", "1GB", scale=1024),
                                  config=system)
        cmp_slow = TraceDrivenCmp(make_design("no_cache", "1GB", scale=1024),
                                  config=system)
        cmp_fast.run(trace)
        cmp_slow.run(list(trace))
        assert (cmp_fast.user_instructions_per_cycle
                > cmp_slow.user_instructions_per_cycle)

    def test_performance_model_agrees_with_cmp_ordering(self):
        profile = web_search()
        runner = ExperimentRunner(
            ExperimentConfig(scale=4096, num_accesses=8_000, num_cores=4, seed=9)
        )
        results = runner.compare_designs(["unison", "no_cache"], profile, "1GB")
        model = PerformanceModel()
        assert results["unison"].speedup_vs_no_cache > 1.0
        assert results["no_cache"].speedup_vs_no_cache == pytest.approx(1.0, abs=0.05)
