"""Tests for the Loh-Hill baseline (extension beyond the paper's three designs)."""

import pytest

from repro.baselines.alloy import AlloyCache
from repro.baselines.loh_hill import LohHillCache
from repro.config.cache_configs import AlloyCacheConfig
from repro.sim.factory import make_design
from repro.trace.record import AccessType, MemoryAccess


def read(block: int, pc: int = 0x400100) -> MemoryAccess:
    return MemoryAccess(address=block * 64, pc=pc)


def write(block: int) -> MemoryAccess:
    return MemoryAccess(address=block * 64, pc=0x400100,
                        access_type=AccessType.WRITE)


@pytest.fixture
def cache() -> LohHillCache:
    return LohHillCache(capacity=64 * 8192)


class TestOrganization:
    def test_set_per_row_geometry(self, cache):
        # An 8KB row holds 128 block slots; 11 hold tags, 117 hold data.
        assert cache.tag_blocks_per_row == 11
        assert cache.associativity == 117
        assert cache.num_sets == 64

    def test_original_2kb_row_organization(self):
        # The original Loh-Hill design: 2KB rows -> 3 tag blocks + 29 ways.
        cache = LohHillCache(capacity=64 * 2048, row_buffer_size=2048)
        assert cache.tag_blocks_per_row == 3
        assert cache.associativity == 29

    def test_invalid_row_size(self):
        with pytest.raises(ValueError):
            LohHillCache(capacity=64 * 8192, row_buffer_size=1000)

    def test_capacity_too_small(self):
        with pytest.raises(ValueError):
            LohHillCache(capacity=1024)


class TestBehaviour:
    def test_miss_then_hit(self, cache):
        assert not cache.access(read(5)).hit
        assert cache.access(read(5)).hit

    def test_missmap_bypasses_lookup_on_misses(self, cache):
        # A miss goes straight to memory: only the MissMap latency plus the
        # off-chip access, with no stacked-DRAM tag read.
        before = cache.stacked.controller.total_requests
        result = cache.access(read(77))
        assert not result.hit
        # The install writes the tag block and data block, but no tag *read*
        # happened before the off-chip request was issued.
        assert cache.stacked.controller.total_requests >= before

    def test_hit_pays_serialized_tag_then_data(self, cache):
        alloy = AlloyCache(AlloyCacheConfig(capacity=64 * 8192), num_cores=4)
        cache.access(read(9))
        alloy.access(read(9))
        lh_hit = cache.access(read(9))
        alloy_hit = alloy.access(read(9))
        # Tag-then-data serialization makes the Loh-Hill hit clearly slower
        # than Alloy's single TAD read (the motivation for Alloy Cache).
        assert lh_hit.latency_cycles > alloy_hit.latency_cycles + 10

    def test_set_associativity_within_row(self, cache):
        # Many blocks mapping to the same set coexist (29-way associativity).
        conflicting = [5 + i * cache.num_sets for i in range(10)]
        for block in conflicting:
            cache.access(read(block))
        hits = sum(cache.access(read(block)).hit for block in conflicting)
        assert hits == len(conflicting)

    def test_eviction_and_dirty_writeback(self, cache):
        victim = 3
        cache.access(write(victim))
        # Overflow the set so the dirty victim is evicted.
        for i in range(1, cache.associativity + 2):
            cache.access(read(victim + i * cache.num_sets))
        assert cache.memory.blocks_written >= 1
        assert cache.cache_stats.pages_evicted >= 1

    def test_missmap_tracked_in_stats(self, cache):
        cache.access(read(1))
        assert cache.stats().get("missmap_entries") == 1

    def test_factory_constructs_loh_hill(self):
        design = make_design("loh_hill", "1GB", scale=1024)
        assert isinstance(design, LohHillCache)
        assert design.cache_stats.accesses == 0
