"""Tests for the performance model, design factory, experiment runner, sampling."""

import pytest

from repro.baselines.footprint import FootprintCache
from repro.baselines.alloy import AlloyCache
from repro.core.unison import UnisonCache
from repro.dramcache.stats import DramCacheStats
from repro.sim.experiment import ExperimentConfig, ExperimentResult, ExperimentRunner
from repro.sim.factory import DESIGN_NAMES, make_design
from repro.sim.performance import PerformanceModel
from repro.sim.sampling import SamplingRunner
from repro.workloads.cloudsuite import web_search
from repro.workloads.profile import WorkloadProfile


def synthetic_stats(hit_ratio: float, hit_latency: float, miss_latency: float,
                    accesses: int = 1000) -> DramCacheStats:
    stats = DramCacheStats()
    stats.hits = int(accesses * hit_ratio)
    stats.misses = accesses - stats.hits
    stats.total_hit_latency = int(stats.hits * hit_latency)
    stats.total_miss_latency = int(stats.misses * miss_latency)
    return stats


class TestPerformanceModel:
    def test_lower_latency_means_higher_ipc(self):
        model = PerformanceModel()
        profile = web_search()
        fast = model.estimate(synthetic_stats(0.95, 40, 160), profile)
        slow = model.estimate(synthetic_stats(0.50, 40, 160), profile)
        assert fast.user_ipc > slow.user_ipc

    def test_speedup_of_identical_stats_is_one(self):
        model = PerformanceModel()
        profile = web_search()
        stats = synthetic_stats(0.9, 40, 160)
        assert model.speedup(stats, stats, profile) == pytest.approx(1.0)

    def test_speedup_ordering_matches_latency(self):
        model = PerformanceModel()
        profile = web_search()
        baseline = model.offchip_baseline_stats(1000)
        good = model.speedup(synthetic_stats(0.95, 40, 160), baseline, profile)
        bad = model.speedup(synthetic_stats(0.50, 40, 160), baseline, profile)
        assert good > bad > 1.0

    def test_memory_bound_workload_more_sensitive(self):
        model = PerformanceModel()
        low_mpki = WorkloadProfile(name="low", working_set="1GB", l2_mpki=5.0)
        high_mpki = WorkloadProfile(name="high", working_set="1GB", l2_mpki=50.0)
        baseline = model.offchip_baseline_stats(1000)
        design = synthetic_stats(0.95, 40, 160)
        assert (model.speedup(design, baseline, high_mpki)
                > model.speedup(design, baseline, low_mpki))

    def test_memory_boundedness_fraction(self):
        model = PerformanceModel()
        estimate = model.estimate(synthetic_stats(0.9, 40, 160), web_search())
        assert 0.0 < estimate.memory_boundedness < 1.0

    def test_request_overhead_constant(self):
        model = PerformanceModel()
        assert model.request_overhead_cycles() == (
            model.config.interconnect_latency_cycles
            + model.config.l2.hit_latency_cycles
        )


class TestFactory:
    def test_all_names_constructible(self):
        for name in DESIGN_NAMES:
            design = make_design(name, "1GB", scale=1024)
            assert design.cache_stats.accesses == 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_design("missmap", "1GB")

    def test_scale_shrinks_capacity(self):
        big = make_design("unison", "1GB", scale=1)
        small = make_design("unison", "1GB", scale=256)
        assert isinstance(big, UnisonCache)
        assert small.capacity_bytes < big.capacity_bytes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_design("unison", "1GB", scale=0)

    def test_unison_variants(self):
        dm = make_design("unison-dm", "1GB", scale=1024)
        wide = make_design("unison-1984", "1GB", scale=1024)
        assert dm.config.associativity == 1
        assert wide.config.blocks_per_page == 31

    def test_footprint_tag_latency_uses_paper_capacity(self):
        small = make_design("footprint", "128MB", scale=64)
        large = make_design("footprint", "8GB", scale=64)
        assert isinstance(small, FootprintCache)
        assert small.tag_latency_cycles == 6
        assert large.tag_latency_cycles == 48

    def test_unison_way_predictor_sized_by_paper_capacity(self):
        small = make_design("unison", "1GB", scale=256)
        large = make_design("unison", "8GB", scale=256)
        assert small.way_predictor.index_bits == 12
        assert large.way_predictor.index_bits == 16

    def test_alloy_has_miss_predictor(self):
        design = make_design("alloy", "1GB", scale=1024, num_cores=4)
        assert isinstance(design, AlloyCache)
        assert design.miss_predictor is not None


@pytest.fixture(scope="module")
def fast_runner():
    return ExperimentRunner(ExperimentConfig(scale=2048, num_accesses=12_000,
                                             num_cores=4, seed=3))


@pytest.fixture(scope="module")
def fast_profile():
    return web_search()


class TestExperimentRunner:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_accesses=0)

    def test_run_design_produces_result(self, fast_runner, fast_profile):
        result = fast_runner.run_design("unison", fast_profile, "1GB")
        assert isinstance(result, ExperimentResult)
        assert 0.0 <= result.miss_ratio <= 1.0
        assert result.miss_ratio_percent == pytest.approx(100 * result.miss_ratio)
        assert result.speedup_vs_no_cache > 0
        assert result.average_hit_latency > 0
        assert result.capacity == "1GB"
        assert result.workload == fast_profile.name

    def test_compare_designs_uses_same_trace(self, fast_runner, fast_profile):
        results = fast_runner.compare_designs(["unison", "alloy"], fast_profile, "1GB")
        assert set(results) == {"unison", "alloy"}
        assert (results["unison"].accesses_measured
                == results["alloy"].accesses_measured)

    def test_page_based_beats_block_based_hit_ratio(self, fast_runner, fast_profile):
        results = fast_runner.compare_designs(["unison", "alloy"], fast_profile, "1GB")
        assert results["unison"].miss_ratio < results["alloy"].miss_ratio

    def test_capacity_sweep_miss_ratio_non_increasing_on_average(self, fast_profile):
        runner = ExperimentRunner(ExperimentConfig(scale=2048, num_accesses=12_000,
                                                   num_cores=4, seed=3))
        results = runner.sweep_capacities("unison", fast_profile,
                                          ["128MB", "1GB"])
        assert results[0].miss_ratio >= results[1].miss_ratio - 0.02

    def test_associativity_sweep_shape(self, fast_runner, fast_profile):
        results = fast_runner.associativity_sweep(fast_profile, "1GB",
                                                  associativities=(1, 4))
        assert set(results) == {1, 4}
        assert results[4].miss_ratio <= results[1].miss_ratio + 0.02

    def test_ideal_design_reports_zero_miss(self, fast_runner, fast_profile):
        result = fast_runner.run_design("ideal", fast_profile, "1GB")
        assert result.miss_ratio == 0.0
        assert result.speedup_vs_no_cache > 1.0


class TestSamplingRunner:
    def test_construction_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="WindowedSampler"):
            SamplingRunner(num_samples=2)

    def test_measure_miss_ratio_aggregates(self, fast_profile):
        with pytest.warns(DeprecationWarning):
            sampler = SamplingRunner(
                ExperimentConfig(scale=4096, num_accesses=6_000, num_cores=4, seed=11),
                num_samples=3,
            )
        measurement = sampler.measure_miss_ratio("unison", fast_profile, "1GB")
        assert len(measurement.samples) == 3
        assert 0.0 <= measurement.mean <= 1.0
        assert measurement.interval.lower <= measurement.mean <= measurement.interval.upper

    def test_aggregate_external_samples(self):
        measurement = SamplingRunner.aggregate([1.0, 1.1, 0.9], "speedup")
        assert measurement.metric == "speedup"
        assert measurement.mean == pytest.approx(1.0, abs=0.05)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            SamplingRunner(num_samples=0)
