"""Tests for the StateSnapshot protocol on the DRAM-cache designs."""

import pytest

from repro.dramcache.base import StateSnapshot
from repro.sim.factory import make_design
from repro.workloads.generator import SyntheticWorkload


DESIGNS = ["unison", "alloy", "footprint", "loh_hill", "ideal", "no_cache"]


def _make(design_name):
    return make_design(design_name, "1GB", scale=4096, num_cores=4)


def _stats_tuple(design):
    stats = design.cache_stats
    return (stats.hits, stats.misses, stats.total_hit_latency,
            stats.total_miss_latency, stats.offchip_demand_blocks,
            stats.offchip_prefetch_blocks, stats.offchip_writeback_blocks,
            design.memory.row_activations, design.stacked.row_activations)


@pytest.fixture(scope="module")
def replay(tiny_profile_module):
    workload = SyntheticWorkload(tiny_profile_module, num_cores=4, seed=3)
    return workload.generate(6000)


@pytest.fixture(scope="module")
def tiny_profile_module():
    from repro.workloads.profile import WorkloadProfile

    return WorkloadProfile(
        name="tiny", working_set="2MB", num_code_regions=32,
        footprint_density=0.5, footprint_noise=0.05, singleton_fraction=0.1,
        temporal_reuse=0.2, region_zipf_alpha=0.6, pc_locality_run=3,
        write_fraction=0.25, l2_mpki=20.0,
    )


class TestSnapshotRestore:
    @pytest.mark.parametrize("design_name", DESIGNS)
    def test_restore_rewinds_exactly(self, design_name, replay):
        """Replay A, snapshot, replay B; restore must reproduce B exactly."""
        design = _make(design_name)
        design.run(replay[:2000])
        snapshot = design.snapshot_state()

        design.run(replay[2000:4000])
        first = _stats_tuple(design)

        design.restore_state(snapshot)
        design.run(replay[2000:4000])
        assert _stats_tuple(design) == first

    @pytest.mark.parametrize("design_name", DESIGNS)
    def test_snapshot_is_isolated_from_live_model(self, design_name, replay):
        """Replaying after a snapshot must not mutate the snapshot."""
        design = _make(design_name)
        design.run(replay[:1500])
        snapshot = design.snapshot_state()
        at_snapshot = _stats_tuple(design)

        design.run(replay[1500:4000])
        assert _stats_tuple(design) != at_snapshot  # sanity: state advanced

        design.restore_state(snapshot)
        assert _stats_tuple(design) == at_snapshot

    def test_snapshot_reusable_many_times(self, replay):
        """One warm checkpoint must serve many downstream windows."""
        design = _make("unison")
        design.warm_up(replay[:3000])
        checkpoint = design.snapshot_state()
        outcomes = []
        for _ in range(3):
            design.restore_state(checkpoint)
            design.reset_stats()
            design.run(replay[4000:5000])
            outcomes.append(_stats_tuple(design))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_restore_wrong_design_rejected(self, replay):
        unison = _make("unison")
        alloy = _make("alloy")
        with pytest.raises(ValueError, match="snapshot of design"):
            alloy.restore_state(unison.snapshot_state())

    def test_restore_mismatched_state_keys_rejected(self):
        design = _make("unison")
        bad = StateSnapshot(design_name="unison", state={"_frames": []})
        with pytest.raises(ValueError, match="state keys"):
            design.restore_state(bad)

    def test_snapshot_covers_declared_design_state(self):
        """Every declared state attribute exists and lands in the snapshot."""
        for design_name in DESIGNS:
            design = _make(design_name)
            snapshot = design.snapshot_state()
            attrs = type(design)._snapshot_attrs()
            assert set(snapshot.state) == set(attrs)
            # Base state is always present.
            for name in ("_now", "cache_stats", "memory", "stacked"):
                assert name in snapshot.state

    def test_predictor_training_is_checkpointed(self, replay):
        """Restoring rewinds predictor tables, not just cache contents.

        Extra training between snapshot and restore must leave no residue:
        a restored replay matches a replay taken straight from the
        snapshot, including the predictor-driven metrics.
        """
        design = _make("unison")
        design.run(replay[:3000])
        snapshot = design.snapshot_state()

        design.restore_state(snapshot)
        design.reset_stats()
        design.run(replay[3000:6000])
        fresh = (_stats_tuple(design), design.extra_metrics())

        design.run(replay[:3000])  # extra training the snapshot predates
        design.restore_state(snapshot)
        design.reset_stats()
        design.run(replay[3000:6000])
        assert (_stats_tuple(design), design.extra_metrics()) == fresh
