"""Shared fixtures for the test suite.

Fixtures build deliberately tiny configurations (a few DRAM rows, short
traces) so each test runs in milliseconds while still exercising the same
code paths the full-scale experiments use.
"""

from __future__ import annotations

import os

import pytest

from repro.config.cache_configs import (
    AlloyCacheConfig,
    FootprintCacheConfig,
    UnisonCacheConfig,
)
from repro.trace.record import AccessType, MemoryAccess
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_store(tmp_path_factory):
    """Point the on-disk trace store at a per-session temp directory.

    Unit tests must not read from or write into the user's persistent
    ``~/.cache/repro/traces`` (a stale entry there could mask a generator
    change; writes would pollute it with tiny test traces).
    """
    root = tmp_path_factory.mktemp("trace-store")
    previous = os.environ.get("REPRO_TRACE_STORE")
    os.environ["REPRO_TRACE_STORE"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_TRACE_STORE", None)
    else:
        os.environ["REPRO_TRACE_STORE"] = previous


@pytest.fixture
def small_unison_config() -> UnisonCacheConfig:
    """A Unison Cache of 64 DRAM rows (512 KB): 128 sets, 4 ways, 960 B pages."""
    return UnisonCacheConfig(capacity=64 * 8192)


@pytest.fixture
def small_alloy_config() -> AlloyCacheConfig:
    """An Alloy Cache of 64 DRAM rows (512 KB)."""
    return AlloyCacheConfig(capacity=64 * 8192)


@pytest.fixture
def small_footprint_config() -> FootprintCacheConfig:
    """A Footprint Cache of 512 KB with 2 KB pages and 8 ways."""
    return FootprintCacheConfig(capacity=64 * 8192, associativity=8)


@pytest.fixture
def tiny_profile() -> WorkloadProfile:
    """A small, fast workload profile for functional tests."""
    return WorkloadProfile(
        name="tiny",
        working_set="2MB",
        num_code_regions=32,
        footprint_density=0.5,
        footprint_noise=0.05,
        singleton_fraction=0.1,
        temporal_reuse=0.2,
        region_zipf_alpha=0.6,
        pc_locality_run=3,
        write_fraction=0.25,
        l2_mpki=20.0,
    )


@pytest.fixture
def tiny_trace(tiny_profile) -> list:
    """A short deterministic trace from the tiny profile."""
    workload = SyntheticWorkload(tiny_profile, num_cores=4, seed=7)
    return workload.generate(2000)


def make_access(address: int, pc: int = 0x400100, write: bool = False,
                core: int = 0, timestamp: int = 0) -> MemoryAccess:
    """Helper used across test modules to build one request."""
    return MemoryAccess(
        address=address,
        pc=pc,
        access_type=AccessType.WRITE if write else AccessType.READ,
        core_id=core,
        timestamp=timestamp,
    )


@pytest.fixture
def access_factory():
    """Expose :func:`make_access` as a fixture."""
    return make_access
