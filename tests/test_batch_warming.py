"""Tests for the vectorized batch engine (repro.engine).

The batch engine's contract is *bit identity*: warming a design through the
fused kernels must leave it in exactly the state the scalar
``warm_up``-then-reset path produces, for every registered composition,
regardless of how the warm stream is chopped into batches.  These tests
enforce the contract with pickled :class:`StateSnapshot` comparison (the
strictest equality the models expose), and cover the enablement switches,
the bulk ``read_array`` decode paths, and graceful degradation without
numpy.
"""

from __future__ import annotations

import gzip
import json
import pickle
import random

import pytest

from repro.engine import (
    batch_enabled,
    numpy_available,
    select_kernel,
    set_batch_enabled,
    warm_design,
)
from repro.engine.trace_array import require_numpy
from repro.sim.factory import design_names, make_design
from repro.trace.binfmt import write_trace_bin

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")

#: Paper capacity / scale used by the equivalence tests: large enough that
#: pages conflict, evict, and write back within the tiny trace.
CAPACITY = "256MB"
SCALE = 4096


@pytest.fixture(autouse=True)
def _reset_batch_override(monkeypatch):
    """Leave the process-wide batch switch untouched by each test."""
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    yield
    set_batch_enabled(None)


def _snapshot_bytes(design) -> bytes:
    return pickle.dumps(design.snapshot_state().state)


def _warm_stream(trace):
    """The batch input: a structured array when numpy is available."""
    if numpy_available():
        from repro.engine import records_to_array
        return records_to_array(trace)
    return list(trace)


class TestSnapshotEquivalence:
    """Batch warming is bit-identical to scalar warming, per composition."""

    @pytest.mark.parametrize("name", design_names())
    def test_batch_matches_scalar(self, name, tiny_trace):
        scalar = make_design(name, CAPACITY, scale=SCALE)
        batch = make_design(name, CAPACITY, scale=SCALE)

        scalar.warm_up(tiny_trace)
        engine = warm_design(batch, _warm_stream(tiny_trace))

        assert engine in ("batch", "scalar")
        if select_kernel(batch) is not None:
            assert engine == "batch"
        assert _snapshot_bytes(scalar) == _snapshot_bytes(batch)

    @pytest.mark.parametrize("splits_seed", [0, 1, 2])
    def test_batch_boundaries_do_not_matter(self, splits_seed, tiny_trace):
        """Chopping the warm stream at arbitrary points changes nothing."""
        whole = make_design("unison", CAPACITY, scale=SCALE)
        chunked = make_design("unison", CAPACITY, scale=SCALE)

        warm_design(whole, _warm_stream(tiny_trace))

        rng = random.Random(splits_seed)
        cuts = sorted(rng.sample(range(1, len(tiny_trace)),
                                 rng.randint(1, 7)))
        bounds = [0] + cuts + [len(tiny_trace)]
        for lo, hi in zip(bounds, bounds[1:]):
            warm_design(chunked, _warm_stream(tiny_trace[lo:hi]))

        assert _snapshot_bytes(whole) == _snapshot_bytes(chunked)

    def test_empty_stream_is_a_no_op(self):
        design = make_design("unison", CAPACITY, scale=SCALE)
        before = _snapshot_bytes(design)
        warm_design(design, _warm_stream([]))
        assert _snapshot_bytes(design) == before


class TestEnablement:
    """REPRO_BATCH and set_batch_enabled gate the fused kernels."""

    def test_enabled_by_default(self):
        assert batch_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " Off "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert not batch_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        set_batch_enabled(True)
        assert batch_enabled()
        set_batch_enabled(None)
        assert not batch_enabled()

    def test_disabled_falls_back_to_scalar(self, tiny_trace):
        set_batch_enabled(False)
        design = make_design("unison", CAPACITY, scale=SCALE)
        assert warm_design(design, list(tiny_trace)) == "scalar"

    def test_scalar_fallback_is_still_correct(self, tiny_trace):
        set_batch_enabled(False)
        scalar = make_design("alloy", CAPACITY, scale=SCALE)
        fallback = make_design("alloy", CAPACITY, scale=SCALE)
        scalar.warm_up(tiny_trace)
        warm_design(fallback, _warm_stream(tiny_trace))
        assert _snapshot_bytes(scalar) == _snapshot_bytes(fallback)


@needs_numpy
class TestReadArray:
    """Bulk decode paths return exactly what the scalar decode returns."""

    def _written(self, tmp_path, tiny_trace, codec):
        path = tmp_path / f"trace-{codec}.rptr"
        write_trace_bin(path, tiny_trace, codec=codec)
        return path

    @pytest.mark.parametrize("codec", ["none", "gzip"])
    def test_window_readers(self, tmp_path, tiny_trace, codec):
        from repro.engine import array_to_records, records_to_array
        from repro.sampling.seekable import open_window_reader

        path = self._written(tmp_path, tiny_trace, codec)
        with open_window_reader(path) as reader:
            for start, stop in [(0, 50), (123, 1234), (1990, 2000),
                                (0, 2000), (1500, 99999), (40, 40)]:
                arr = reader.read_array(start, stop)
                records = reader.read_window(start, stop)
                assert arr.tobytes() == records_to_array(records).tobytes()
                assert array_to_records(arr) == list(records)

    def test_window_providers(self, tmp_path, tiny_trace):
        from repro.engine import records_to_array
        from repro.sampling.seekable import FileWindows, InMemoryWindows

        path = self._written(tmp_path, tiny_trace, "none")
        memory = InMemoryWindows(tiny_trace)
        disk = FileWindows(path, limit=1800)
        assert (memory.read_array(100, 900).tobytes()
                == records_to_array(tiny_trace[100:900]).tobytes())
        # The provider honours its limit when clipping array reads too.
        assert (disk.read_array(1700, 5000).tobytes()
                == records_to_array(tiny_trace[1700:1800]).tobytes())
        disk.close()

    def test_decode_roundtrip(self, tiny_trace):
        from repro.engine import (array_to_records, decode_array,
                                  records_to_array)
        from repro.trace.binfmt import RECORD
        from repro.trace.record import AccessType

        blob = b"".join(
            RECORD.pack(r.address, r.pc, r.timestamp, r.core_id,
                        1 if r.access_type is AccessType.WRITE else 0)
            for r in tiny_trace[:64]
        )
        arr = decode_array(blob)
        assert array_to_records(arr) == tiny_trace[:64]
        assert records_to_array(tiny_trace[:64]).tobytes() == blob


class TestWithoutNumpy:
    """Everything degrades gracefully when numpy is absent."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.engine.trace_array as trace_array
        monkeypatch.setattr(trace_array, "_np", None)

    def test_require_numpy_names_the_controls(self, no_numpy):
        with pytest.raises(RuntimeError) as excinfo:
            require_numpy("bulk record decode")
        message = str(excinfo.value)
        assert "--no-batch-warming" in message
        assert "REPRO_BATCH=0" in message

    def test_read_array_raises_the_clear_error(self, no_numpy, tmp_path,
                                               tiny_trace):
        from repro.sampling.seekable import MmapTraceReader

        path = tmp_path / "trace.rptr"
        write_trace_bin(path, tiny_trace, codec="none")
        with MmapTraceReader(path) as reader:
            with pytest.raises(RuntimeError, match="no-batch-warming"):
                reader.read_array(0, 10)

    def test_warming_records_still_works(self, no_numpy, tiny_trace):
        """Record-list warming needs no numpy, whatever engine runs."""
        import repro.engine.trace_array as trace_array
        assert not trace_array.numpy_available()
        scalar = make_design("unison", CAPACITY, scale=SCALE)
        other = make_design("unison", CAPACITY, scale=SCALE)
        scalar.warm_up(tiny_trace)
        warm_design(other, list(tiny_trace))
        assert _snapshot_bytes(scalar) == _snapshot_bytes(other)

    def test_sampler_read_falls_back_to_records(self, no_numpy, tiny_trace):
        from repro.sampling.runner import WindowedSampler
        from repro.sampling.seekable import InMemoryWindows

        sampler = WindowedSampler.__new__(WindowedSampler)
        window = sampler._read_warm(InMemoryWindows(tiny_trace), 5, 25)
        assert list(window) == tiny_trace[5:25]


class TestSampledSweepByteEquality:
    """The sampled hot path yields byte-identical results either way."""

    @pytest.fixture
    def sampler(self):
        from repro.sampling import SamplingConfig, WindowedSampler
        from repro.sim.experiment import ExperimentConfig

        config = ExperimentConfig(scale=4096, num_accesses=24_000,
                                  num_cores=4, seed=5)
        sampling = SamplingConfig(window_accesses=1_000,
                                  warmup_accesses=1_000,
                                  checkpoint_accesses=4_000,
                                  min_windows=3, max_windows=4)
        return WindowedSampler(sampling, config=config)

    def test_resultsets_byte_equal_with_telemetry(self, sampler, tiny_profile,
                                                  tmp_path, monkeypatch):
        from repro.obs.core import start_run

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "obs"))

        set_batch_enabled(True)
        with start_run("trial", kind_detail="sample-batch"):
            with_batch = sampler.compare(["unison", "alloy"], tiny_profile,
                                         "1GB")
        set_batch_enabled(False)
        with start_run("trial", kind_detail="sample-scalar"):
            without = sampler.compare(["unison", "alloy"], tiny_profile,
                                      "1GB")

        assert with_batch == without
        batch_json = tmp_path / "batch.json"
        scalar_json = tmp_path / "scalar.json"
        with_batch.to_resultset().to_json(batch_json)
        without.to_resultset().to_json(scalar_json)
        assert batch_json.read_bytes() == scalar_json.read_bytes()

        # The spans carry the engine tag and the batch-size counter: the
        # checkpoint prologue tags the "warmup" phase, the per-window
        # re-warms tag the enclosing "measure" phase.
        counters = []
        for manifest in (tmp_path / "obs" / "manifests").glob("*.jsonl"):
            for line in manifest.read_text().splitlines():
                record = json.loads(line)
                if (record.get("event") == "phase"
                        and record.get("name") in ("warmup", "measure")):
                    counters.append(record.get("counters") or {})
        assert counters, "no warmup/measure spans reached the manifests"
        if numpy_available():
            batched = [c for c in counters if c.get("engine_batch")]
            assert batched
            assert any(c.get("batch_accesses", 0) > 0 for c in batched)
        assert any(c.get("engine_scalar") for c in counters)
