"""Unit and property tests for :mod:`repro.utils.bitvector`."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitvector import BitVector


class TestConstruction:
    def test_new_vector_is_empty(self):
        vec = BitVector(15)
        assert vec.popcount() == 0
        assert not vec.any()
        assert len(vec) == 15

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-3)

    def test_initial_value_is_masked(self):
        vec = BitVector(4, value=0xFF)
        assert vec.value == 0xF

    def test_from_indices(self):
        vec = BitVector.from_indices(15, [0, 3, 14])
        assert vec.indices() == [0, 3, 14]

    def test_ones(self):
        vec = BitVector.ones(8)
        assert vec.all()
        assert vec.popcount() == 8


class TestBitAccess:
    def test_set_and_get(self):
        vec = BitVector(15)
        vec.set(7)
        assert vec.get(7)
        assert not vec.get(6)

    def test_clear(self):
        vec = BitVector.ones(15)
        vec.clear(0)
        assert not vec.get(0)
        assert vec.popcount() == 14

    def test_assign(self):
        vec = BitVector(8)
        vec.assign(2, True)
        assert vec.get(2)
        vec.assign(2, False)
        assert not vec.get(2)

    def test_getitem_setitem(self):
        vec = BitVector(8)
        vec[5] = True
        assert vec[5]
        vec[5] = False
        assert not vec[5]

    def test_out_of_range_index_raises(self):
        vec = BitVector(15)
        with pytest.raises(IndexError):
            vec.get(15)
        with pytest.raises(IndexError):
            vec.set(-1)

    def test_set_is_idempotent(self):
        vec = BitVector(15)
        vec.set(3)
        vec.set(3)
        assert vec.popcount() == 1


class TestWholeVectorOps:
    def test_clear_all_and_set_all(self):
        vec = BitVector(15)
        vec.set_all()
        assert vec.all()
        vec.clear_all()
        assert not vec.any()

    def test_indices_sorted(self):
        vec = BitVector.from_indices(15, [14, 0, 7])
        assert vec.indices() == [0, 7, 14]

    def test_copy_is_independent(self):
        vec = BitVector.from_indices(15, [1])
        clone = vec.copy()
        clone.set(2)
        assert not vec.get(2)
        assert clone.get(2)

    def test_iteration_yields_all_bits(self):
        vec = BitVector.from_indices(4, [1, 3])
        assert list(vec) == [False, True, False, True]


class TestSetAlgebra:
    def test_union(self):
        a = BitVector.from_indices(15, [0, 1])
        b = BitVector.from_indices(15, [1, 2])
        assert (a | b).indices() == [0, 1, 2]

    def test_intersection(self):
        a = BitVector.from_indices(15, [0, 1])
        b = BitVector.from_indices(15, [1, 2])
        assert (a & b).indices() == [1]

    def test_difference(self):
        a = BitVector.from_indices(15, [0, 1])
        b = BitVector.from_indices(15, [1, 2])
        assert (a - b).indices() == [0]

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(8).union(BitVector(15))

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitVector(8).union("not a vector")

    def test_equality_and_hash(self):
        a = BitVector.from_indices(15, [3, 4])
        b = BitVector.from_indices(15, [3, 4])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector.from_indices(15, [3])

    def test_repr_mentions_width(self):
        assert "width=15" in repr(BitVector(15))


class TestProperties:
    @given(st.integers(1, 64), st.data())
    def test_popcount_matches_indices(self, width, data):
        indices = data.draw(st.lists(st.integers(0, width - 1), unique=True))
        vec = BitVector.from_indices(width, indices)
        assert vec.popcount() == len(indices)
        assert vec.indices() == sorted(indices)

    @given(st.integers(1, 48), st.data())
    def test_union_intersection_inclusion_exclusion(self, width, data):
        a_idx = data.draw(st.lists(st.integers(0, width - 1), unique=True))
        b_idx = data.draw(st.lists(st.integers(0, width - 1), unique=True))
        a = BitVector.from_indices(width, a_idx)
        b = BitVector.from_indices(width, b_idx)
        assert (a | b).popcount() + (a & b).popcount() == a.popcount() + b.popcount()

    @given(st.integers(1, 48), st.data())
    def test_difference_disjoint_from_other(self, width, data):
        a_idx = data.draw(st.lists(st.integers(0, width - 1), unique=True))
        b_idx = data.draw(st.lists(st.integers(0, width - 1), unique=True))
        a = BitVector.from_indices(width, a_idx)
        b = BitVector.from_indices(width, b_idx)
        assert not (a - b).intersection(b).any()

    @given(st.integers(1, 48), st.integers(0, 2 ** 48 - 1))
    def test_value_round_trip(self, width, value):
        vec = BitVector(width, value)
        assert BitVector(width, vec.value) == vec
