"""Tests for the SRAM cache substrate: replacement, caches, MSHRs, hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mshr import MshrFile
from repro.cache.replacement import LruPolicy, NruPolicy, RandomPolicy, make_policy
from repro.cache.sram_cache import SetAssociativeCache
from repro.config.system import SramCacheConfig, SystemConfig
from repro.trace.record import AccessType, MemoryAccess


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_access(0)
        assert lru.victim([True] * 4) == 1

    def test_lru_prefers_invalid_way(self):
        lru = LruPolicy(4)
        lru.on_fill(0)
        assert lru.victim([True, False, True, True]) == 1

    def test_lru_recency_order(self):
        lru = LruPolicy(3)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_fill(2)
        lru.on_access(0)
        assert lru.recency_order()[0] == 0

    def test_nru_resets_when_all_referenced(self):
        nru = NruPolicy(2)
        nru.on_access(0)
        nru.on_access(1)
        # All referenced -> bits reset -> way 0 is evictable again.
        assert nru.victim([True, True]) == 0

    def test_random_is_deterministic_per_seed(self):
        a = RandomPolicy(8, seed=3)
        b = RandomPolicy(8, seed=3)
        picks_a = [a.victim([True] * 8) for _ in range(10)]
        picks_b = [b.victim([True] * 8) for _ in range(10)]
        assert picks_a == picks_b

    def test_make_policy(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("NRU", 4), NruPolicy)
        assert isinstance(make_policy("random", 4), RandomPolicy)
        with pytest.raises(ValueError):
            make_policy("plru", 4)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            LruPolicy(0)


@pytest.fixture
def small_cache():
    config = SramCacheConfig(name="test", size="16KB", associativity=4,
                             hit_latency_cycles=2)
    return SetAssociativeCache(config)


class TestSetAssociativeCache:
    def test_miss_then_hit(self, small_cache):
        first = small_cache.access(100)
        second = small_cache.access(100)
        assert not first.hit
        assert second.hit
        assert small_cache.hits == 1
        assert small_cache.misses == 1
        assert small_cache.miss_ratio == 0.5

    def test_contains_has_no_side_effects(self, small_cache):
        small_cache.access(7)
        hits_before = small_cache.hits
        assert small_cache.contains(7)
        assert not small_cache.contains(8)
        assert small_cache.hits == hits_before

    def test_dirty_eviction_produces_writeback(self, small_cache):
        sets = small_cache.num_sets
        base = 3
        small_cache.access(base, is_write=True)
        writebacks = []
        # Fill the same set until the dirty block is evicted.
        for i in range(1, small_cache.associativity + 1):
            result = small_cache.access(base + i * sets)
            if result.writeback_block is not None:
                writebacks.append(result.writeback_block)
        assert writebacks == [base]

    def test_clean_eviction_has_no_writeback(self, small_cache):
        sets = small_cache.num_sets
        small_cache.access(0)
        for i in range(1, small_cache.associativity + 1):
            result = small_cache.access(i * sets)
        assert small_cache.writebacks == 0
        assert small_cache.evictions == 1

    def test_invalidate(self, small_cache):
        small_cache.access(42)
        assert small_cache.invalidate(42)
        assert not small_cache.contains(42)
        assert not small_cache.invalidate(42)

    def test_reset_stats_keeps_contents(self, small_cache):
        small_cache.access(9)
        small_cache.reset_stats()
        assert small_cache.misses == 0
        assert small_cache.access(9).hit

    def test_negative_address_rejected(self, small_cache):
        with pytest.raises(ValueError):
            small_cache.access(-1)

    def test_stats_group(self, small_cache):
        small_cache.access(1)
        small_cache.access(1)
        stats = small_cache.stats()
        assert stats.get("hits") == 1
        assert stats.get("accesses") == 2

    @given(st.lists(st.integers(0, 4000), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_property_capacity_never_exceeded(self, addresses):
        config = SramCacheConfig(name="prop", size="4KB", associativity=2)
        cache = SetAssociativeCache(config)
        for address in addresses:
            cache.access(address)
        resident = sum(1 for a in set(addresses) if cache.contains(a))
        assert resident <= config.num_blocks
        assert cache.hits + cache.misses == len(addresses)


class TestMshrFile:
    def test_primary_and_secondary_misses(self):
        mshr = MshrFile(4)
        assert mshr.allocate(10, now=0)
        assert mshr.allocate(10, now=1)   # merged
        assert mshr.occupancy == 1
        assert mshr.merges == 1

    def test_full_file_stalls(self):
        mshr = MshrFile(2)
        assert mshr.allocate(1, 0)
        assert mshr.allocate(2, 0)
        assert not mshr.allocate(3, 0)
        assert mshr.stalls == 1
        assert mshr.full

    def test_release(self):
        mshr = MshrFile(2)
        mshr.allocate(5, 0, requestor=2)
        entry = mshr.release(5)
        assert entry.requestors == [2]
        assert mshr.occupancy == 0
        with pytest.raises(KeyError):
            mshr.release(5)

    def test_outstanding_blocks(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 0)
        mshr.allocate(2, 0)
        assert sorted(mshr.outstanding_blocks()) == [1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestCacheHierarchy:
    def _make(self):
        return CacheHierarchy(SystemConfig(num_cores=2))

    def test_first_access_escapes_to_dram_cache(self):
        hierarchy = self._make()
        out = hierarchy.access(MemoryAccess(address=0x1000, pc=0x400000, core_id=0))
        assert len(out) == 1
        assert out[0].block_address == 0x1000 // 64

    def test_repeat_access_filtered_by_l1(self):
        hierarchy = self._make()
        access = MemoryAccess(address=0x2000, pc=0x400000, core_id=1)
        hierarchy.access(access)
        assert hierarchy.access(access) == []

    def test_l1_miss_l2_hit_filtered(self):
        hierarchy = self._make()
        access0 = MemoryAccess(address=0x3000, pc=0x400000, core_id=0)
        access1 = MemoryAccess(address=0x3000, pc=0x400000, core_id=1)
        hierarchy.access(access0)        # L2 fill
        assert hierarchy.access(access1) == []  # other core hits in shared L2

    def test_core_out_of_range(self):
        hierarchy = self._make()
        with pytest.raises(ValueError):
            hierarchy.access(MemoryAccess(address=0, pc=0, core_id=5))

    def test_filter_stream_reduces_volume(self, tiny_profile):
        from repro.workloads.generator import SyntheticWorkload

        hierarchy = CacheHierarchy(SystemConfig(num_cores=4))
        raw = SyntheticWorkload(tiny_profile, num_cores=4, seed=1).generate(3000)
        filtered = list(hierarchy.filter_stream(raw))
        assert 0 < len(filtered) < len(raw)

    def test_writebacks_preserve_write_type(self):
        hierarchy = CacheHierarchy(SystemConfig(num_cores=1))
        escaped_writes = []
        # Touch many distinct dirty blocks to force L1/L2 dirty evictions.
        for i in range(20000):
            out = hierarchy.access(
                MemoryAccess(address=i * 64 * 97 % (1 << 26), pc=0x400000,
                             access_type=AccessType.WRITE, core_id=0)
            )
            escaped_writes.extend(a for a in out if a.is_write)
        assert escaped_writes, "expected dirty writebacks to escape the L2"

    def test_stats(self):
        hierarchy = self._make()
        hierarchy.access(MemoryAccess(address=0, pc=0, core_id=0))
        stats = hierarchy.stats()
        assert stats.get("requests") == 1
        assert stats.get("l1d.misses") == 1
