"""Design-space autotuner tests: space, CI dominance, driver, retention.

Covers the search subsystem end to end -- the declarative space and its
constraints, the replacement component role it searches over, the CI-aware
dominance and rung-prune edge cases (overlapping intervals, zero-variance
cells, n=1 windows, tie-break determinism), a full tiny successive-halving
search with kill-style resume (zero repeated jobs), and the queue's
retention prune.
"""

from __future__ import annotations

import json

import pytest

from repro.config.cache_configs import scaled_capacity
from repro.dramcache.components import REPLACEMENT_POLICIES
from repro.dramcache.spec import ComponentSpec, DesignSpec
from repro.engine.kernels import select_kernel
from repro.queue import SweepService
from repro.search.driver import (
    PAPER_BASELINES,
    TuneConfig,
    TuneSearch,
    TuneState,
    deserialize_spec,
    load_search,
    serialize_spec,
)
from repro.search.frontier import (
    DesignPoint,
    ci_dominates,
    interval_from_record,
    pareto_frontier,
    prune_by_interval,
    sram_overhead_bytes,
)
from repro.search.space import SearchSpace, candidate_name, default_space
from repro.sim.registry import DesignBuildContext
from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
)
from repro.utils.units import parse_size


@pytest.fixture
def queue_root(tmp_path, monkeypatch):
    """A private trace-store root per test: traces, checkpoints, queue."""
    monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
    return tmp_path


def build_context(capacity="1GB", scale=4096, num_cores=4):
    paper = parse_size(capacity)
    return DesignBuildContext(
        paper_capacity_bytes=paper,
        scaled_capacity_bytes=scaled_capacity(paper, scale),
        scale=scale,
        num_cores=num_cores,
    )


def tiny_tune_config(**overrides) -> TuneConfig:
    defaults = dict(
        num_candidates=6, rungs=2, scale=4096, num_accesses=6_000,
        window_accesses=500, warmup_accesses=500, checkpoint_accesses=2_000,
        min_windows=2, base_windows=2, base_relative_error=0.5,
    )
    defaults.update(overrides)
    return TuneConfig(**defaults)


# --------------------------------------------------------------------- #
# The search space
# --------------------------------------------------------------------- #
class TestSearchSpace:
    def test_default_space_size_and_determinism(self):
        space = default_space()
        combos = space.combos()
        assert len(combos) == 66
        assert len(combos) >= 36  # the acceptance floor
        assert combos == default_space().combos()

    def test_every_combo_satisfies_every_constraint(self):
        space = default_space()
        for combo in space.combos():
            for check in space.constraints:
                assert check(combo), (check.__name__, combo)

    def test_constraints_cut_the_raw_cross_product(self):
        space = default_space()
        raw = (len(space.tags) * len(space.hit_predictors)
               * len(space.fetches) * len(space.writebacks)
               * len(space.replacements))
        assert len(space.combos()) < raw

    def test_candidate_names_unique_and_stable(self):
        specs = default_space().candidates()
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)
        assert names == [spec.name for spec in default_space().candidates()]
        assert all(name.startswith("tune-") for name in names)

    def test_every_candidate_validates_as_a_spec(self):
        for spec in default_space().candidates():
            assert spec.model == "composed"
            assert "repl:" in spec.token()

    def test_config_round_trip(self):
        space = default_space()
        clone = SearchSpace.from_config(
            json.loads(json.dumps(space.to_config())))
        assert clone.combos() == space.combos()
        assert [c.__name__ for c in clone.constraints] == [
            c.__name__ for c in space.constraints]

    def test_empty_role_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            SearchSpace(tags=(), hit_predictors=(ComponentSpec("none"),),
                        fetches=(ComponentSpec("demand"),),
                        writebacks=(ComponentSpec("dirty"),),
                        replacements=(ComponentSpec("lru"),))

    def test_candidate_name_hashes_the_recipe(self):
        combo = {
            "tags": ComponentSpec("dram-page"),
            "hit_predictor": ComponentSpec("none"),
            "fetch": ComponentSpec("demand"),
            "writeback": ComponentSpec("dirty"),
            "replacement": ComponentSpec("lru"),
        }
        name = candidate_name(combo)
        changed = dict(combo, replacement=ComponentSpec("rrip"))
        assert candidate_name(changed) != name


# --------------------------------------------------------------------- #
# The replacement role the space searches over
# --------------------------------------------------------------------- #
class TestReplacementRole:
    @pytest.mark.parametrize("kind", ["random", "rrip"])
    def test_non_lru_replacement_builds_and_runs(self, kind):
        spec = DesignSpec(
            name=f"t-{kind}",
            tags=ComponentSpec("dram-page"),
            fetch=ComponentSpec("demand"),
            replacement=ComponentSpec(kind),
        )
        design = spec.build_composed(build_context())
        from repro.workloads.generator import SyntheticWorkload
        from repro.workloads.profile import WorkloadProfile

        profile = WorkloadProfile(
            name="tune-tiny", working_set="2MB", num_code_regions=32,
            footprint_density=0.5, footprint_noise=0.05,
            singleton_fraction=0.1, temporal_reuse=0.2,
            region_zipf_alpha=0.6, pc_locality_run=3,
            write_fraction=0.25, l2_mpki=20.0,
        )
        for access in SyntheticWorkload(profile, num_cores=2,
                                        seed=3).generate(2000):
            design.access(access)
        assert design.cache_stats.hits + design.cache_stats.misses == 2000
        assert design.replacement.kind == kind

    def test_non_lru_design_takes_the_scalar_path(self):
        lru = DesignSpec(name="t-lru", tags=ComponentSpec("dram-page"),
                         fetch=ComponentSpec("demand"))
        rrip = DesignSpec(name="t-rrip2", tags=ComponentSpec("dram-page"),
                          fetch=ComponentSpec("demand"),
                          replacement=ComponentSpec("rrip"))
        context = build_context()
        assert select_kernel(lru.build_composed(context)) is not None
        assert select_kernel(rrip.build_composed(context)) is None

    def test_parameterless_replacement_rejects_stray_params(self):
        context = build_context()
        for kind in ("lru", "rrip"):
            factory = REPLACEMENT_POLICIES.resolve(kind)
            with pytest.raises(ValueError, match="takes no parameters"):
                factory(context, None, bogus=1)

    def test_random_replacement_accepts_seed_only(self):
        factory = REPLACEMENT_POLICIES.resolve("random")
        component = factory(build_context(), None, seed=5)
        assert component.seed == 5
        with pytest.raises(TypeError):
            factory(build_context(), None, bogus=1)

    def test_replacement_without_victim_choice_rejected(self):
        spec = DesignSpec(name="t-bad", tags=ComponentSpec("direct-mapped"),
                          replacement=ComponentSpec("rrip"))
        with pytest.raises(ValueError, match="no per-set replacement"):
            spec.build_composed(build_context())


# --------------------------------------------------------------------- #
# CI-aware dominance edge cases
# --------------------------------------------------------------------- #
def point(name, miss, miss_hw=0.0, speedup=1.0, speedup_hw=0.0, sram=0,
          reference=False) -> DesignPoint:
    return DesignPoint(
        name=name,
        miss_ratio=ConfidenceInterval(mean=miss, half_width=miss_hw),
        speedup=ConfidenceInterval(mean=speedup, half_width=speedup_hw),
        sram_overhead_bytes=sram,
        reference=reference,
    )


class TestCiDominance:
    def test_clear_dominance(self):
        better = point("a", miss=0.1, speedup=2.0, sram=0)
        worse = point("b", miss=0.5, speedup=1.1, sram=1024)
        assert ci_dominates(better, worse)
        assert not ci_dominates(worse, better)

    def test_overlapping_intervals_block_dominance(self):
        # Means differ but the CIs overlap on miss ratio: no verdict.
        a = point("a", miss=0.10, miss_hw=0.08, speedup=2.0)
        b = point("b", miss=0.20, miss_hw=0.08, speedup=1.0)
        assert not ci_dominates(a, b)
        assert not ci_dominates(b, a)

    def test_zero_variance_cells_compare_exactly(self):
        # Zero half-widths (deterministic cells) degenerate to means.
        a = point("a", miss=0.100, speedup=1.5)
        b = point("b", miss=0.101, speedup=1.5)
        assert ci_dominates(a, b)
        assert not ci_dominates(b, a)

    def test_equal_points_do_not_dominate_each_other(self):
        a = point("a", miss=0.1, speedup=1.5, sram=64)
        b = point("b", miss=0.1, speedup=1.5, sram=64)
        assert not ci_dominates(a, b)
        assert not ci_dominates(b, a)

    def test_single_window_interval_is_zero_width(self):
        # n=1 windows: mean_confidence_interval yields half_width 0, so a
        # lone-window measurement behaves as exact -- and never blocks on
        # its own (vacuous) uncertainty.
        interval = mean_confidence_interval([0.25])
        assert interval.half_width == 0.0
        a = point("a", miss=interval.mean, miss_hw=interval.half_width,
                  speedup=2.0)
        b = point("b", miss=0.5, speedup=1.0)
        assert ci_dominates(a, b)

    def test_interval_from_record_defaults_to_exact(self):
        record = {"miss_ratio": 0.25, "speedup_vs_no_cache": 1.5,
                  "extra": {}}
        assert interval_from_record(record, "miss_ratio").half_width == 0.0
        assert interval_from_record(record, "speedup").mean == 1.5
        with pytest.raises(ValueError, match="unknown sampled metric"):
            interval_from_record(record, "ipc")

    def test_pareto_frontier_excludes_references_and_is_deterministic(self):
        ideal = point("ideal", miss=0.0, speedup=3.0, reference=True)
        good = point("good", miss=0.1, speedup=2.0, sram=100)
        cheap = point("cheap", miss=0.3, speedup=1.5, sram=0)
        bad = point("bad", miss=0.5, speedup=1.0, sram=100)
        frontier = pareto_frontier([bad, ideal, cheap, good])
        names = [p.name for p in frontier]
        assert names == ["good", "cheap"]  # miss-mean order, no references
        assert pareto_frontier([good, cheap, bad, ideal]) == frontier

    def test_pareto_tie_break_is_name_ordered(self):
        twin_a = point("twin-a", miss=0.2, speedup=1.5)
        twin_b = point("twin-b", miss=0.2, speedup=1.5)
        names = [p.name for p in pareto_frontier([twin_b, twin_a])]
        assert names == ["twin-a", "twin-b"]


class TestPruneByInterval:
    def entries(self, cells):
        return [(name, ConfidenceInterval(mean=mean, half_width=hw))
                for name, mean, hw in cells]

    def test_clear_separation_prunes(self):
        survivors, pruned = prune_by_interval(self.entries([
            ("a", 0.1, 0.01), ("b", 0.2, 0.01), ("c", 0.9, 0.01),
        ]), keep=2)
        assert survivors == ["a", "b"]
        assert pruned == ["c"]

    def test_overlap_with_cutoff_survives(self):
        # c's lower bound dips under b's upper bound: noise could still
        # promote it, so it is carried to the next rung.
        survivors, pruned = prune_by_interval(self.entries([
            ("a", 0.1, 0.01), ("b", 0.2, 0.05), ("c", 0.28, 0.05),
        ]), keep=2)
        assert "c" in survivors
        assert pruned == []

    def test_zero_variance_ties_break_on_name(self):
        survivors, _ = prune_by_interval(self.entries([
            ("z", 0.2, 0.0), ("a", 0.2, 0.0), ("m", 0.2, 0.0),
        ]), keep=1)
        # Equal means: ranking is name-ordered, and equal zero-width
        # intervals all sit exactly at the cutoff (lower == cutoff), so
        # none can be pruned on noise-free equality.
        assert survivors == ["a", "m", "z"]

    def test_keep_at_least_everything_when_small(self):
        survivors, pruned = prune_by_interval(
            self.entries([("a", 0.1, 0.0)]), keep=3)
        assert survivors == ["a"] and pruned == []

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError, match="at least one design"):
            prune_by_interval([], keep=0)

    def test_determinism_under_input_order(self):
        cells = [("d", 0.4, 0.02), ("b", 0.1, 0.02), ("c", 0.3, 0.02),
                 ("a", 0.1, 0.02)]
        forward = prune_by_interval(self.entries(cells), keep=2)
        backward = prune_by_interval(self.entries(cells[::-1]), keep=2)
        assert forward == backward


# --------------------------------------------------------------------- #
# The SRAM overhead cost model
# --------------------------------------------------------------------- #
class TestSramOverhead:
    def spec(self, **kwargs) -> DesignSpec:
        defaults = dict(name="t", tags=ComponentSpec("dram-page"))
        defaults.update(kwargs)
        return DesignSpec(**defaults)

    def test_in_dram_tags_cost_nothing(self):
        assert sram_overhead_bytes(self.spec(), parse_size("1GB")) == 0

    def test_sram_structures_cost(self):
        cap = parse_size("1GB")
        assert sram_overhead_bytes(
            self.spec(tags=ComponentSpec("sram-page")), cap) > 0
        assert sram_overhead_bytes(
            self.spec(tags=ComponentSpec("missmap")), cap) > 0
        assert sram_overhead_bytes(
            self.spec(hit_predictor=ComponentSpec("way")), cap) > 0
        assert sram_overhead_bytes(
            self.spec(hit_predictor=ComponentSpec("map-i")), cap) > 0
        assert sram_overhead_bytes(
            self.spec(fetch=ComponentSpec("footprint")), cap) > 0

    def test_deterministic(self):
        spec = self.spec(tags=ComponentSpec("sram-page"),
                         fetch=ComponentSpec("footprint"))
        cap = parse_size("1GB")
        assert (sram_overhead_bytes(spec, cap)
                == sram_overhead_bytes(spec, cap))


# --------------------------------------------------------------------- #
# Driver: state round-trip and the tiny end-to-end search
# --------------------------------------------------------------------- #
class TestDriverState:
    def test_spec_serialization_round_trip(self):
        spec = default_space().candidates()[0]
        clone = deserialize_spec(
            json.loads(json.dumps(serialize_spec(spec))))
        assert clone == spec
        assert clone.token() == spec.token()

    def test_tune_config_validation(self):
        with pytest.raises(ValueError, match="at least one rung"):
            TuneConfig(rungs=0)
        with pytest.raises(ValueError, match="eta"):
            TuneConfig(eta=1)
        with pytest.raises(ValueError, match="base_windows"):
            TuneConfig(min_windows=5, base_windows=2)

    def test_candidate_draw_is_seeded_and_deterministic(self, queue_root):
        search_a = TuneSearch(tiny_tune_config())
        search_b = TuneSearch(tiny_tune_config())
        assert ([s.name for s in search_a.select_candidates()]
                == [s.name for s in search_b.select_candidates()])
        other = TuneSearch(tiny_tune_config(seed=99))
        assert ([s.name for s in other.select_candidates()]
                != [s.name for s in search_a.select_candidates()])

    def test_plan_persists_and_reloads(self, queue_root):
        search = TuneSearch(tiny_tune_config())
        state = search.plan()
        again = search.plan()
        assert again.token == state.token
        assert again.candidates == state.candidates
        loaded = TuneState.load(search.state_path(state.token))
        assert loaded.config == search.config


class TestTuneSearchEndToEnd:
    def test_search_completes_resumes_and_verifies(self, queue_root):
        search = TuneSearch(tiny_tune_config())
        state = search.run(workers=1)

        # Completed in rungs, shrinking (or at worst holding) per rung.
        assert state.status == "complete"
        assert len(state.rungs) == search.config.rungs
        for record in state.rungs:
            assert record["status"] == "done"
            assert set(record["survivors"]) <= set(record["designs"])
        assert state.winners

        # The frontier artifact is well-formed JSON with both kinds.
        artifact = state.frontier
        json.loads(json.dumps(artifact))  # JSON-serializable throughout
        names = {d["name"] for d in artifact["designs"]}
        assert set(PAPER_BASELINES) <= names
        kinds = {d["kind"] for d in artifact["designs"]}
        assert kinds == {"candidate", "baseline"}
        for design in artifact["designs"]:
            assert set(design["components"]) == {
                "tags", "hit_predictor", "fetch", "writeback", "replacement"}
        # References anchor the axes but never join the frontier.
        for design in artifact["designs"]:
            if design["reference"]:
                assert not design["on_frontier"]
        assert set(artifact["winners"]) <= set(artifact["frontier"])

        # At least one discovered hybrid CI-dominates a paper baseline.
        dominated = set()
        for design in artifact["designs"]:
            if design["kind"] == "candidate":
                dominated.update(design["dominates_baselines"])
        assert dominated & set(PAPER_BASELINES)

        # The winner re-runs bit-identically from its registered name.
        report = search.verify_winner(state)
        assert report["identical"]

        # Kill-style resume: wipe the in-memory bookkeeping back to
        # "planned" (as if the driver died before recording any rung) and
        # re-run -- every sweep resubmits idempotently and, being fully
        # archived, executes zero jobs; no job row gains an attempt.
        service = search.service
        with service.store() as store:
            attempts_before = {
                (row["token"], job.seq): job.attempts
                for row in store.sweeps()
                for job in store.jobs(row["token"])
            }
        state.rungs = []
        state.status = "planned"
        state.winners = []
        state.save(search.state_path(state.token))

        resumed_search, resumed_state = load_search(state.token)
        resumed_state = resumed_search.run(resumed_state, workers=1)
        assert resumed_state.status == "complete"
        assert resumed_state.winners == state.winners or state.winners == []
        with service.store() as store:
            attempts_after = {
                (row["token"], job.seq): job.attempts
                for row in store.sweeps()
                for job in store.jobs(row["token"])
            }
        assert attempts_after == attempts_before  # zero repeated jobs

    def test_run_emits_tune_telemetry(self, queue_root, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        search = TuneSearch(tiny_tune_config(num_candidates=2, rungs=1,
                                             include_baselines=False))
        state = search.run(workers=1)
        assert state.status == "complete"
        from repro.obs.core import ledger_path
        from repro.obs.ledger import RunLedger

        with RunLedger(ledger_path(), readonly=True) as ledger:
            events = [row for row in ledger.events_for(sweep=state.token)
                      if row["kind"] == "tune.rung"]
        assert len(events) == 1


# --------------------------------------------------------------------- #
# Queue retention prune
# --------------------------------------------------------------------- #
class TestPruneRetention:
    def run_sweep_through_service(self, designs=("unison",)):
        from repro.sim.experiment import ExperimentConfig
        from repro.sim.spec import SweepSpec

        spec = SweepSpec(designs=designs, workloads=("Web Search",),
                         capacities=("512MB",),
                         config=ExperimentConfig(scale=4096,
                                                 num_accesses=2000))
        service = SweepService()
        service.run(spec, workers=1)
        return service, spec

    def test_unarchived_sweeps_are_never_pruned(self, queue_root):
        service, spec = self.run_sweep_through_service()
        from repro.queue.service import plan_sweep

        token = plan_sweep(spec).token
        # Forge an incomplete archive by registering a second, unfinished
        # sweep directly in the job store.
        with service.store() as store:
            store.submit("deadbeef", "unfinished", None, [], max_attempts=3)
        summary = service.prune_retention(keep_days=0.0)
        assert token in summary["pruned"]
        assert summary["skipped_unarchived"] == 1
        with service.store() as store:
            assert store.sweep_row(token) is None
            assert store.sweep_row("deadbeef") is not None
        with service.archive() as archive:
            assert archive.get(token) is not None  # archive untouched

    def test_keep_days_protects_young_sweeps(self, queue_root):
        service, spec = self.run_sweep_through_service()
        summary = service.prune_retention(keep_days=7.0)
        assert summary["pruned"] == []
        assert summary["kept_young"] == 1

    def test_keep_archived_protects_most_recent(self, queue_root):
        service, _ = self.run_sweep_through_service()
        service2, _ = self.run_sweep_through_service(designs=("alloy",))
        summary = service2.prune_retention(keep_days=0.0, keep_archived=1)
        assert len(summary["pruned"]) == 1
        assert summary["kept_recent"] == 1

    def test_negative_knobs_rejected(self, queue_root):
        service = SweepService()
        with pytest.raises(ValueError, match="keep_days"):
            service.prune_retention(keep_days=-1)
        with pytest.raises(ValueError, match="keep_archived"):
            service.prune_retention(keep_archived=-1)


# --------------------------------------------------------------------- #
# The designs listing surfaces (CLI + serve)
# --------------------------------------------------------------------- #
class TestDesignSurfaces:
    def test_designs_cli_components_lists_replacement(self, capsys):
        from repro.cli import designs_main

        assert designs_main(["--components"]) == 0
        out = capsys.readouterr().out
        assert "replacement policy:" in out
        assert "rrip" in out
        assert "repl=" in out  # per-design breakdown includes the role

    def test_api_designs_route(self, queue_root):
        from repro.serve.api import handle_request
        from repro.serve.readmodel import ReadModel

        response = handle_request(ReadModel(), "/api/designs", {})
        assert response.status == 200
        data = json.loads(response.body)
        by_name = {d["name"]: d for d in data["designs"]}
        assert "unison" in by_name
        for design in data["designs"]:
            if design["components"] is not None:
                assert "replacement" in design["components"]
        assert (by_name["unison"]["components"]["replacement"]["kind"]
                == "lru")
