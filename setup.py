"""Setuptools packaging for the Unison Cache reproduction.

Metadata is declared here (no ``pyproject.toml``) so the package can be
installed editable (``pip install -e . --no-use-pep517``) in offline
environments that lack the ``wheel`` package required by PEP 660 editable
builds.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Trace-driven reproduction of Unison Cache (Jevdjic et al., "
        "MICRO 2014) with a declarative sweep API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    # numpy powers the vectorized batch-warming engine (repro.engine).  The
    # simulator degrades to the scalar warming path when it is missing, so
    # an install without numpy still passes the test suite.
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:run",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Intended Audience :: Science/Research",
        "Topic :: System :: Hardware",
    ],
)
