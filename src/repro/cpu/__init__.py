"""Trace-driven CPU front end.

The paper's performance numbers come from cycle-level simulation of a 16-core
scale-out pod; this reproduction replaces the cores with a trace-driven front
end (:class:`repro.cpu.cmp.TraceDrivenCmp`) plus the analytic performance
model in :mod:`repro.sim.performance` -- see DESIGN.md for the substitution
rationale.
"""

from repro.cpu.core import TraceDrivenCore
from repro.cpu.cmp import TraceDrivenCmp

__all__ = ["TraceDrivenCore", "TraceDrivenCmp"]
