"""Trace-driven core model.

A :class:`TraceDrivenCore` replays one core's share of a workload trace and
accounts, per instruction window, how many cycles the core spends computing
versus waiting for memory.  The model is deliberately first-order: the core
issues ``base_ipc`` instructions per cycle until it reaches a memory access
that misses the on-chip hierarchy, at which point it stalls for the miss
latency divided by the core's memory-level parallelism.  This is the same
abstraction the analytic performance model uses; the core class exists so
examples and tests can exercise the per-core accounting explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import CoreConfig
from repro.stats.counters import StatGroup


@dataclass
class CoreProgress:
    """Cumulative progress of one core."""

    instructions: int = 0
    cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    offchip_requests: int = 0

    @property
    def ipc(self) -> float:
        """User instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class TraceDrivenCore:
    """One core of the CMP, replaying its portion of the access trace."""

    def __init__(self, core_id: int, config: CoreConfig = None,
                 instructions_per_access: float = 50.0) -> None:
        if instructions_per_access <= 0:
            raise ValueError("instructions_per_access must be positive")
        self.core_id = core_id
        self.config = config or CoreConfig()
        #: How many instructions the core retires, on average, between two
        #: DRAM-cache requests (the inverse of the L2 MPKI times 1000).
        self.instructions_per_access = instructions_per_access
        self.progress = CoreProgress()

    # ------------------------------------------------------------------ #
    def retire_compute_window(self) -> None:
        """Account the instructions executed between two memory requests."""
        instructions = self.instructions_per_access
        self.progress.instructions += int(instructions)
        self.progress.cycles += instructions / self.config.base_ipc

    def stall_for_memory(self, latency_cycles: float) -> None:
        """Account a memory request of the given latency.

        The effective stall is the latency divided by the core's memory-level
        parallelism: an out-of-order core overlaps independent misses.
        """
        if latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        effective = latency_cycles / max(1.0, self.config.mlp)
        self.progress.cycles += effective
        self.progress.memory_stall_cycles += effective
        self.progress.offchip_requests += 1

    # ------------------------------------------------------------------ #
    @property
    def ipc(self) -> float:
        """User IPC achieved so far."""
        return self.progress.ipc

    def stats(self) -> StatGroup:
        """Per-core accounting."""
        group = StatGroup(f"core{self.core_id}")
        group.set("instructions", self.progress.instructions)
        group.set("cycles", self.progress.cycles)
        group.set("memory_stall_cycles", self.progress.memory_stall_cycles)
        group.set("ipc", self.ipc)
        return group
