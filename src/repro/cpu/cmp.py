"""Chip multiprocessor front end.

:class:`TraceDrivenCmp` glues the pieces of the evaluated system together for
end-to-end runs: per-core trace replay, the crossbar to the shared L2, and a
DRAM cache design in front of off-chip memory.  It reports the throughput
metric the paper uses -- user instructions per total cycles, aggregated over
all cores.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.config.system import SystemConfig
from repro.cpu.core import TraceDrivenCore
from repro.dramcache.base import DramCacheModel
from repro.interconnect.crossbar import Crossbar
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess


class TraceDrivenCmp:
    """A 16-core (by default) CMP driving one DRAM cache design."""

    def __init__(self, dram_cache: DramCacheModel,
                 config: Optional[SystemConfig] = None,
                 instructions_per_access: float = 50.0) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self.dram_cache = dram_cache
        self.crossbar = Crossbar(
            num_inputs=self.config.num_cores,
            num_outputs=4,
            traversal_latency=self.config.interconnect_latency_cycles,
        )
        self.cores: List[TraceDrivenCore] = [
            TraceDrivenCore(core_id, self.config.core, instructions_per_access)
            for core_id in range(self.config.num_cores)
        ]

    # ------------------------------------------------------------------ #
    def run(self, requests: Iterable[MemoryAccess]) -> None:
        """Replay an L2-miss stream through the DRAM cache, charging each core."""
        for request in requests:
            core = self.cores[request.core_id % len(self.cores)]
            core.retire_compute_window()
            port = self.crossbar.output_port_for(request.address)
            interconnect = self.crossbar.route(
                request.core_id % self.crossbar.num_inputs, port
            )
            l2_latency = self.config.l2.hit_latency_cycles
            result = self.dram_cache.access(request)
            core.stall_for_memory(interconnect + l2_latency + result.latency_cycles)

    # ------------------------------------------------------------------ #
    @property
    def total_instructions(self) -> int:
        """User instructions retired by all cores."""
        return sum(core.progress.instructions for core in self.cores)

    @property
    def total_cycles(self) -> float:
        """Execution time: the slowest core's cycle count."""
        return max((core.progress.cycles for core in self.cores), default=0.0)

    @property
    def user_instructions_per_cycle(self) -> float:
        """The paper's throughput metric: user instructions / total cycles."""
        cycles = self.total_cycles
        if cycles == 0:
            return 0.0
        return self.total_instructions / cycles

    def stats(self) -> StatGroup:
        """System-level statistics."""
        group = StatGroup("cmp")
        group.set("instructions", self.total_instructions)
        group.set("cycles", self.total_cycles)
        group.set("uipc", self.user_instructions_per_cycle)
        group.merge_child(self.crossbar.stats())
        group.merge_child(self.dram_cache.stats())
        return group
