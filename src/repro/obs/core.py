"""Run telemetry core: spans, counters, gauges, and run correlation.

This is the zero-dependency heart of the :mod:`repro.obs` subsystem.  The
API is a handful of verbs every layer of the simulator can call without
knowing whether telemetry is on:

* :func:`current` -- the active :class:`Run` (or the shared
  :data:`NULL_RUN` no-op when telemetry is disabled or no run is open);
* ``run.span("measure")`` -- a context manager timing one phase of a run
  with a monotonic clock; same-name spans accumulate, so a loop can open
  one span per iteration and the ledger still shows one ``measure`` row;
* ``run.counter("trace_store_hits")`` / ``run.gauge("accesses", n)`` --
  named metrics attached to the run;
* ``run.event("window", index=3, ...)`` -- a timestamped structured event
  (the per-window stopper-convergence traces, queue lease events, ...).

**The disabled path is a strict no-op.**  When ``REPRO_TELEMETRY`` is not
enabled, :func:`start_run` returns the preallocated :data:`NULL_RUN`, whose
methods are empty and whose spans are the shared :data:`NULL_SPAN`; no
dictionaries are built, no clocks are read, no files are opened.  Hot paths
therefore pay one attribute lookup and one no-op call per *phase* (never per
access) -- the overhead guard in ``tests/test_obs.py`` holds it under 2% of
a 100k-access replay.

When enabled, every run is durably recorded twice:

* a **JSONL manifest** (one file per run, events streamed as they happen,
  so a crashed run leaves a readable partial manifest), and
* a row set in the **SQLite run ledger** (:mod:`repro.obs.ledger`), written
  atomically when the run closes -- the queryable sink behind
  ``repro runs list|show|compare``.

Runs started while an ambient context is active (see :func:`job_context` --
the queue worker wraps each job in one) inherit its labels, which is how a
window-batch job executed by an anonymous worker process still lands in the
ledger under its sweep token and job sequence number.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

logger = logging.getLogger("repro.obs")

#: Environment switch: truthy values enable telemetry for the process.
ENV_TELEMETRY = "REPRO_TELEMETRY"

#: Environment override for the telemetry directory (ledger, manifests,
#: profiles); defaults to ``<trace store root>/telemetry``.
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"

_TRUE_VALUES = frozenset({"1", "on", "true", "yes", "enabled"})

#: File names inside the telemetry root.
LEDGER_FILENAME = "ledger.sqlite"
MANIFEST_DIRNAME = "manifests"
PROFILE_DIRNAME = "profiles"

#: Preferred display order of the standard phases.
PHASE_ORDER = ("trace_load", "warmup", "measure", "assemble", "baseline")


def telemetry_enabled() -> bool:
    """Whether telemetry is enabled for this process (``REPRO_TELEMETRY``)."""
    return os.environ.get(ENV_TELEMETRY, "").strip().lower() in _TRUE_VALUES


def telemetry_root() -> Optional[Path]:
    """The telemetry directory, or ``None`` when telemetry is disabled.

    ``REPRO_TELEMETRY_DIR`` overrides the location; otherwise the directory
    lives inside the trace store root, so the same ``REPRO_TRACE_STORE``
    switch that isolates tests and relocates caches governs telemetry too.
    Telemetry that is enabled but has nowhere to write (trace store disabled,
    no explicit directory) resolves to ``None`` -- i.e. stays off.
    """
    if not telemetry_enabled():
        return None
    value = os.environ.get(ENV_TELEMETRY_DIR, "").strip()
    if value:
        return Path(value)
    from repro.trace.store import configured_root

    root = configured_root()
    return None if root is None else root / "telemetry"


def query_root() -> Optional[Path]:
    """The telemetry directory for *reading*, ignoring the enable switch.

    ``repro runs`` and ``repro top`` must be able to inspect a ledger that
    earlier (telemetry-enabled) runs wrote even when the current shell does
    not have ``REPRO_TELEMETRY`` set, so this resolves the directory the
    same way :func:`telemetry_root` does minus the enabled check.
    """
    value = os.environ.get(ENV_TELEMETRY_DIR, "").strip()
    if value:
        return Path(value)
    from repro.trace.store import configured_root

    root = configured_root()
    return None if root is None else root / "telemetry"


def ledger_path(root: Optional[Path] = None) -> Optional[Path]:
    """The run-ledger database path for ``root`` (default: configured)."""
    root = telemetry_root() if root is None else Path(root)
    return None if root is None else root / LEDGER_FILENAME


def new_run_id() -> str:
    """A unique, sortable run id: wall-clock prefix + pid + random suffix."""
    return (f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid():x}-"
            f"{os.urandom(4).hex()}")


# --------------------------------------------------------------------- #
# The disabled path: shared, stateless no-op objects.
# --------------------------------------------------------------------- #
class NullSpan:
    """The no-op span.  One shared instance; methods do nothing."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def add(self, name: str, amount: float = 1) -> None:
        pass

    def set(self, name: str, value: float) -> None:
        pass


NULL_SPAN = NullSpan()


class NullRun:
    """The no-op run.  One shared instance; every verb is empty."""

    __slots__ = ()
    enabled = False
    run_id = ""

    def __enter__(self) -> "NullRun":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def span(self, name: str) -> NullSpan:
        return NULL_SPAN

    def counter(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def annotate(self, **labels) -> None:
        pass


NULL_RUN = NullRun()


# --------------------------------------------------------------------- #
# The enabled path.
# --------------------------------------------------------------------- #
class Span:
    """Times one phase of a run (monotonic clock) with attached counters."""

    __slots__ = ("_run", "name", "_started", "counters")
    enabled = True

    def __init__(self, run: "Run", name: str) -> None:
        self._run = run
        self.name = name
        self._started = 0.0
        self.counters: Dict[str, float] = {}

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._run._finish_span(self, time.perf_counter() - self._started)
        return False

    def add(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set(self, name: str, value: float) -> None:
        self.counters[name] = value


class Run:
    """One recorded unit of work (a trial, a window batch, an assembly).

    Aggregates same-name spans (total seconds + occurrence count), holds
    named metrics, and streams events into the run's JSONL manifest as they
    happen.  Closing the run (context-manager exit) writes the manifest
    footer and the ledger rows; a run that exits on an exception is recorded
    with ``status='error'`` and the error message, then re-raises.
    """

    enabled = True

    def __init__(self, root: Path, kind: str,
                 labels: Optional[Dict[str, object]] = None) -> None:
        self.root = Path(root)
        self.run_id = new_run_id()
        self.kind = kind
        self.labels: Dict[str, object] = dict(_CONTEXT)
        if labels:
            self.labels.update(labels)
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.started_at = time.time()
        self._started_clock = time.perf_counter()
        #: phase name -> [total seconds, span count]
        self.phases: Dict[str, List[float]] = {}
        self.phase_counters: Dict[str, Dict[str, float]] = {}
        self.metrics: Dict[str, float] = {}
        self.status = "ok"
        self.error: Optional[str] = None
        self._manifest = None

    # ------------------------------------------------------------------ #
    def span(self, name: str) -> Span:
        return Span(self, name)

    def _finish_span(self, span: Span, seconds: float) -> None:
        entry = self.phases.setdefault(span.name, [0.0, 0])
        entry[0] += seconds
        entry[1] += 1
        if span.counters:
            bucket = self.phase_counters.setdefault(span.name, {})
            for key, value in span.counters.items():
                bucket[key] = bucket.get(key, 0) + value
        self._write_manifest_line({
            "event": "phase", "name": span.name,
            "seconds": round(seconds, 9), "counters": span.counters or None,
        })

    def counter(self, name: str, amount: float = 1) -> None:
        self.metrics[name] = self.metrics.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.metrics[name] = value

    def event(self, kind: str, **fields) -> None:
        self._write_manifest_line(
            {"event": kind, "t": round(time.time() - self.started_at, 6),
             **fields}
        )

    def annotate(self, **labels) -> None:
        self.labels.update(labels)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Run":
        _CURRENT.append(self)
        self._open_manifest()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if _CURRENT and _CURRENT[-1] is self:
            _CURRENT.pop()
        if exc is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self.finish()
        return False

    def finish(self) -> None:
        wall = time.perf_counter() - self._started_clock
        self._derive_metrics()
        record = self.to_record(wall)
        self._write_manifest_line({
            "event": "end", "status": self.status, "error": self.error,
            "wall_seconds": round(wall, 9), "phases": {
                name: {"seconds": entry[0], "count": entry[1]}
                for name, entry in self.phases.items()
            },
            "metrics": self.metrics,
        })
        if self._manifest is not None:
            try:
                self._manifest.close()
            except OSError:
                pass
            self._manifest = None
        try:
            from repro.obs.ledger import RunLedger

            path = ledger_path(self.root)
            if path is not None:
                with RunLedger(path) as ledger:
                    ledger.record_run(record)
        except Exception:  # telemetry must never break the measurement
            logger.exception("failed to record run %s in the ledger",
                             self.run_id)

    def _derive_metrics(self) -> None:
        """Fill in cross-cutting rates the queries would otherwise recompute."""
        measure = self.phases.get("measure")
        accesses = self.metrics.get("accesses")
        if measure and measure[0] > 0 and accesses:
            self.metrics["accesses_per_sec"] = accesses / measure[0]

    def to_record(self, wall_seconds: float) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "labels": dict(self.labels),
            "host": self.host,
            "pid": self.pid,
            "started_at": self.started_at,
            "finished_at": self.started_at + wall_seconds,
            "wall_seconds": wall_seconds,
            "status": self.status,
            "error": self.error,
            "phases": {name: (entry[0], entry[1],
                              self.phase_counters.get(name))
                       for name, entry in self.phases.items()},
            "metrics": dict(self.metrics),
        }

    # ------------------------------------------------------------------ #
    def _open_manifest(self) -> None:
        from repro.obs.manifest import open_manifest

        try:
            self._manifest = open_manifest(self.root, self.run_id)
        except OSError:
            self._manifest = None
            return
        self._write_manifest_line({
            "event": "start", "run_id": self.run_id, "kind": self.kind,
            "labels": {k: str(v) for k, v in self.labels.items()},
            "host": self.host, "pid": self.pid,
            "started_at": self.started_at,
        })

    def _write_manifest_line(self, payload: Dict[str, object]) -> None:
        if self._manifest is None:
            return
        try:
            self._manifest.write(json.dumps(payload, sort_keys=True,
                                            default=str) + "\n")
            self._manifest.flush()
        except (OSError, ValueError):
            self._manifest = None


#: Stack of open runs in this process (innermost last).
_CURRENT: List[Run] = []

#: Ambient labels merged into every run started while set (queue workers
#: wrap job execution in :func:`job_context` so trial runs carry their
#: sweep token / job seq / worker owner).
_CONTEXT: Dict[str, object] = {}


def current() -> Union[Run, NullRun]:
    """The innermost open run, or :data:`NULL_RUN` when none is active."""
    return _CURRENT[-1] if _CURRENT else NULL_RUN


def start_run(kind: str, **labels) -> Union[Run, NullRun]:
    """Open a run (usable as a context manager), or :data:`NULL_RUN`.

    The enabled check happens *before* any label is materialized, so the
    disabled path allocates nothing.  Callers with label values that are
    expensive to compute should pass callables via :meth:`Run.annotate`
    after checking ``run.enabled`` instead.
    """
    root = telemetry_root()
    if root is None:
        return NULL_RUN
    return Run(root, kind, labels)


class job_context:
    """Context manager installing ambient labels for runs started inside.

    Nested contexts stack (inner values win); the previous labels are
    restored on exit.  Used by the queue worker so that every run a job
    opens is correlated to its sweep token, job sequence, and lease owner.
    """

    __slots__ = ("_labels", "_saved")

    def __init__(self, **labels) -> None:
        self._labels = labels
        self._saved: Dict[str, object] = {}

    def __enter__(self) -> "job_context":
        self._saved = dict(_CONTEXT)
        _CONTEXT.update(self._labels)
        return self

    def __exit__(self, *exc_info) -> bool:
        _CONTEXT.clear()
        _CONTEXT.update(self._saved)
        return False


def emit_event(kind: str, sweep: Optional[str] = None, **detail) -> None:
    """Record a standalone structured event in the ledger (and the log).

    This is the channel for queue-level happenings that have no run of
    their own -- lease theft, retry backoff, lease reclaim.  Always logs at
    DEBUG (INFO for theft/backoff so ``-v`` worker shells surface them);
    writes a ledger row only when telemetry is enabled.  Never raises.
    """
    level = logging.INFO if kind in ("lease_theft", "job_backoff",
                                     "job_failed", "lease_reclaimed") \
        else logging.DEBUG
    logger.log(level, "%s %s %s", kind, sweep or "",
               " ".join(f"{k}={v}" for k, v in detail.items()))
    path = ledger_path()
    if path is None:
        return
    try:
        from repro.obs.ledger import RunLedger

        with RunLedger(path) as ledger:
            ledger.record_event(kind, sweep=sweep,
                                run_id=current().run_id or None,
                                detail=detail)
    except Exception:
        logger.exception("failed to record event %s", kind)


__all__ = [
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_DIR",
    "LEDGER_FILENAME",
    "MANIFEST_DIRNAME",
    "NULL_RUN",
    "NULL_SPAN",
    "NullRun",
    "NullSpan",
    "PHASE_ORDER",
    "PROFILE_DIRNAME",
    "Run",
    "Span",
    "current",
    "emit_event",
    "job_context",
    "ledger_path",
    "new_run_id",
    "query_root",
    "start_run",
    "telemetry_enabled",
    "telemetry_root",
]
