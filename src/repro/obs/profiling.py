"""Opt-in cProfile capture: one pstats artifact per profiled block.

Enabled by ``REPRO_PROFILE`` (or the ``--profile`` CLI flag, which sets
it).  When on, :func:`maybe_profile` wraps the block in a ``cProfile``
profiler and dumps the binary stats to
``<telemetry root>/profiles/<slug>-<runid>.pstats`` -- loadable later with
``python -m pstats`` or ``pstats.Stats(path)``.  When off (the default) it
is a no-op context manager with zero overhead, so trial code can wrap its
body unconditionally.

Profiling rides on telemetry for its output directory: if telemetry is
disabled and no explicit ``REPRO_TELEMETRY_DIR`` is set, profiles have
nowhere to go and the hook stays off.
"""

from __future__ import annotations

import cProfile
import os
import re
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

from repro.obs.core import (ENV_TELEMETRY_DIR, PROFILE_DIRNAME, logger,
                            new_run_id, telemetry_root)

#: Environment switch for profiling (truthy values enable).
ENV_PROFILE = "REPRO_PROFILE"

_TRUE_VALUES = frozenset({"1", "on", "true", "yes", "enabled"})


def profiling_enabled() -> bool:
    return os.environ.get(ENV_PROFILE, "").strip().lower() in _TRUE_VALUES


def profile_dir() -> Optional[Path]:
    """Where profile artifacts go, or ``None`` when there is nowhere."""
    root = telemetry_root()
    if root is None:
        value = os.environ.get(ENV_TELEMETRY_DIR, "").strip()
        if not value:
            return None
        root = Path(value)
    return root / PROFILE_DIRNAME


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "run"


@contextmanager
def maybe_profile(slug: str) -> Iterator[Optional[Path]]:
    """Profile the block when ``REPRO_PROFILE`` is on; no-op otherwise.

    Yields the artifact path (or ``None`` when profiling is off or has no
    output directory).  Dump failures are logged, never raised.
    """
    if not profiling_enabled():
        yield None
        return
    directory = profile_dir()
    if directory is None:
        logger.warning(
            "REPRO_PROFILE is set but there is no telemetry directory;"
            " set %s or enable telemetry", ENV_TELEMETRY_DIR)
        yield None
        return
    path = directory / f"{_slug(slug)}-{new_run_id()}.pstats"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield path
    finally:
        profiler.disable()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(path))
            logger.info("profile written to %s", path)
        except OSError:
            logger.exception("failed to write profile %s", path)


__all__ = [
    "ENV_PROFILE",
    "maybe_profile",
    "profile_dir",
    "profiling_enabled",
]
