"""Run telemetry for the simulator: spans, metrics, heartbeats, ledger.

Quick tour::

    from repro import obs

    with obs.start_run("trial", design="mostly-clean-dram") as run:
        with run.span("measure") as span:
            ...                      # the measured work
            span.add("windows", 1)
        run.gauge("accesses", n)

    # later, from the CLI:
    #   repro runs list
    #   repro runs show <run-id or sweep token>

Everything degrades to a strict no-op when ``REPRO_TELEMETRY`` is not set;
see :mod:`repro.obs.core` for the contract.
"""

from repro.obs.core import (ENV_TELEMETRY, ENV_TELEMETRY_DIR, NULL_RUN,
                            NULL_SPAN, PHASE_ORDER, NullRun, NullSpan, Run,
                            Span, current, emit_event, job_context,
                            ledger_path, new_run_id, query_root, start_run,
                            telemetry_enabled, telemetry_root)
from repro.obs.heartbeat import (NULL_HEARTBEAT, WorkerHeartbeat,
                                 worker_heartbeat)
from repro.obs.ledger import (HEARTBEAT_STALE_SECONDS, LEDGER_SCHEMA_VERSION,
                              RunLedger, summarize)
from repro.obs.manifest import (find_manifest, iter_manifests, manifest_path,
                                read_manifest)
from repro.obs.profiling import (ENV_PROFILE, maybe_profile,
                                 profiling_enabled)

__all__ = [
    "ENV_PROFILE",
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_DIR",
    "HEARTBEAT_STALE_SECONDS",
    "LEDGER_SCHEMA_VERSION",
    "NULL_HEARTBEAT",
    "NULL_RUN",
    "NULL_SPAN",
    "NullRun",
    "NullSpan",
    "PHASE_ORDER",
    "Run",
    "RunLedger",
    "Span",
    "WorkerHeartbeat",
    "current",
    "emit_event",
    "find_manifest",
    "iter_manifests",
    "job_context",
    "ledger_path",
    "manifest_path",
    "maybe_profile",
    "new_run_id",
    "profiling_enabled",
    "query_root",
    "read_manifest",
    "start_run",
    "summarize",
    "telemetry_enabled",
    "telemetry_root",
    "worker_heartbeat",
]
