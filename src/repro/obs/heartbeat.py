"""Worker heartbeats: the live operator view of a queue drain.

Each queue worker owns one row in the run ledger's ``heartbeats`` table,
keyed by its lease owner id.  The worker updates the row at every state
transition -- idle, leased job N, job done -- so ``repro queue status
--watch`` and ``repro top`` can render, per worker: the job it is on, how
many jobs it has finished, its jobs/second throughput, and an ETA for the
remaining queue.

Heartbeating is best-effort by construction: any sqlite failure disables
this worker's heartbeat for the rest of the drain instead of crashing the
job loop, and when telemetry is disabled :func:`worker_heartbeat` returns a
no-op so the worker pays nothing.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro.obs.core import ledger_path, logger


class NullHeartbeat:
    """Shared no-op heartbeat for disabled telemetry."""

    __slots__ = ()
    enabled = False

    def idle(self) -> None:
        pass

    def leased(self, job) -> None:
        pass

    def finished(self, ok: bool = True) -> None:
        pass

    def exited(self) -> None:
        pass


NULL_HEARTBEAT = NullHeartbeat()


class WorkerHeartbeat:
    """Maintains one worker's heartbeat row for the length of a drain."""

    enabled = True

    def __init__(self, ledger: Path, owner: str, sweep: Optional[str],
                 host: str, pid: int) -> None:
        self._ledger = ledger
        self.owner = owner
        self._sweep = sweep
        self._host = host
        self._pid = pid
        self._jobs_done = 0
        self._started = time.time()
        self._dead = False
        self._write(status="idle", host=host, pid=pid, sweep=sweep,
                    jobs_done=0)

    def _write(self, **fields) -> None:
        if self._dead:
            return
        try:
            from repro.obs.ledger import RunLedger

            with RunLedger(self._ledger) as ledger:
                ledger.heartbeat(self.owner, **fields)
        except Exception:
            # A worker must never die because its heartbeat cannot be
            # written; stop heartbeating and keep draining.
            self._dead = True
            logger.exception("heartbeat disabled for worker %s", self.owner)

    def idle(self) -> None:
        self._write(status="idle", job_seq=None, job_kind=None,
                    job_label=None, job_started_at=None)

    def leased(self, job) -> None:
        self._write(status="running", job_seq=job.seq, job_kind=job.kind,
                    job_label=job.key, job_started_at=time.time(),
                    sweep=job.sweep)

    def finished(self, ok: bool = True) -> None:
        if ok:
            self._jobs_done += 1
        elapsed = time.time() - self._started
        rate = self._jobs_done / elapsed if elapsed > 0 else None
        self._write(status="idle", jobs_done=self._jobs_done,
                    jobs_per_second=rate, job_seq=None, job_kind=None,
                    job_label=None, job_started_at=None)

    def exited(self) -> None:
        self._write(status="exited", job_seq=None, job_kind=None,
                    job_label=None, job_started_at=None)


def worker_heartbeat(owner: str, sweep: Optional[str] = None):
    """A heartbeat for ``owner``, or the shared no-op when disabled."""
    path = ledger_path()
    if path is None:
        return NULL_HEARTBEAT
    import os
    import socket

    try:
        return WorkerHeartbeat(path, owner, sweep, socket.gethostname(),
                               os.getpid())
    except Exception:
        logger.exception("could not start heartbeat for %s", owner)
        return NULL_HEARTBEAT


__all__ = [
    "NULL_HEARTBEAT",
    "NullHeartbeat",
    "WorkerHeartbeat",
    "worker_heartbeat",
]
