"""JSONL run manifests: one streamed event file per run.

A manifest is the crash-tolerant sibling of the run ledger: the ledger row
is written atomically when a run *closes*, while the manifest streams one
JSON line per happening as the run executes -- ``start``, each finished
``phase`` span, structured events (per-window convergence traces, queue
lease events), and an ``end`` footer with the aggregate phases and metrics.
A worker killed mid-trial therefore leaves a readable partial manifest that
shows exactly which phase it died in, even though no ledger row exists.

Files live under ``<telemetry root>/manifests/<run_id>.jsonl`` and are
plain line-delimited JSON: greppable, ``jq``-able, and cheap to ship as CI
artifacts.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs.core import MANIFEST_DIRNAME


def manifest_dir(root: Path) -> Path:
    """The manifest directory under one telemetry root."""
    return Path(root) / MANIFEST_DIRNAME


def manifest_path(root: Path, run_id: str) -> Path:
    return manifest_dir(root) / f"{run_id}.jsonl"


def open_manifest(root: Path, run_id: str) -> io.TextIOWrapper:
    """Open a run's manifest for streaming appends (creates directories)."""
    directory = manifest_dir(root)
    directory.mkdir(parents=True, exist_ok=True)
    return open(manifest_path(root, run_id), "a", encoding="utf-8")


def read_manifest(path: Path) -> List[Dict[str, object]]:
    """Parse one manifest; tolerates a torn final line (crashed writer)."""
    events: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from a killed writer
    return events


def iter_manifests(root: Path) -> Iterator[Path]:
    """All manifest files under a telemetry root, newest first."""
    directory = manifest_dir(root)
    if not directory.is_dir():
        return iter(())
    files = sorted(directory.glob("*.jsonl"), reverse=True)
    return iter(files)


def find_manifest(root: Path, run_id: str) -> Optional[Path]:
    path = manifest_path(root, run_id)
    return path if path.is_file() else None


__all__ = [
    "find_manifest",
    "iter_manifests",
    "manifest_dir",
    "manifest_path",
    "open_manifest",
    "read_manifest",
]
