"""The run ledger: a schema-versioned SQLite database of recorded runs.

Every telemetry run (a full-replay trial, a sampled trial, a window-batch
job, a sweep assembly) lands here as one ``runs`` row plus its ``phases``
and ``metrics`` rows, written in a single transaction when the run closes.
Queue workers additionally maintain one ``heartbeats`` row each (current
job, jobs done, throughput), and standalone queue events (lease theft,
retry backoff, lease reclaim) append to ``events``.

This is the durable sink behind the operator CLI:

* ``repro runs list``    -- recent runs, filterable by sweep token;
* ``repro runs show``    -- per-phase wall-clock, accesses/sec, and
  store/checkpoint hit rates for one run *or aggregated over every run of
  a sweep token*;
* ``repro runs compare`` -- two of the above side by side;
* ``repro top`` / ``repro queue status --watch`` -- live worker heartbeats.

Like the job store and result archive, the ledger is multi-process safe
(WAL + busy timeout, short transactions) and refuses databases written by
an incompatible schema version.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Bump on incompatible changes to the tables below.
LEDGER_SCHEMA_VERSION = 1

#: Heartbeats older than this are rendered as stale (the worker likely
#: exited without closing, e.g. kill -9).
HEARTBEAT_STALE_SECONDS = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    label       TEXT,
    design      TEXT,
    workload    TEXT,
    capacity    TEXT,
    sweep       TEXT,
    job_seq     INTEGER,
    host        TEXT,
    pid         INTEGER,
    started_at  REAL NOT NULL,
    finished_at REAL,
    wall_seconds REAL,
    status      TEXT NOT NULL,
    error       TEXT,
    labels      TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_sweep ON runs (sweep, started_at);
CREATE INDEX IF NOT EXISTS runs_by_start ON runs (started_at);
CREATE TABLE IF NOT EXISTS phases (
    run_id   TEXT NOT NULL,
    name     TEXT NOT NULL,
    seconds  REAL NOT NULL,
    count    INTEGER NOT NULL,
    counters TEXT,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS events (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    ts     REAL NOT NULL,
    kind   TEXT NOT NULL,
    sweep  TEXT,
    run_id TEXT,
    detail TEXT
);
CREATE INDEX IF NOT EXISTS events_by_sweep ON events (sweep, ts);
CREATE TABLE IF NOT EXISTS heartbeats (
    owner       TEXT PRIMARY KEY,
    host        TEXT,
    pid         INTEGER,
    sweep       TEXT,
    status      TEXT NOT NULL,
    job_seq     INTEGER,
    job_kind    TEXT,
    job_label   TEXT,
    jobs_done   INTEGER NOT NULL DEFAULT 0,
    jobs_per_second REAL,
    started_at  REAL NOT NULL,
    job_started_at REAL,
    updated_at  REAL NOT NULL
);
"""

#: Label keys promoted to their own ``runs`` columns (everything else is
#: kept in the JSON ``labels`` blob).
_COLUMN_LABELS = ("label", "design", "workload", "capacity", "sweep",
                  "job_seq")


class RunLedger:
    """SQLite-backed store of runs, phases, metrics, events, heartbeats."""

    def __init__(self, path: PathLike, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly:
            # Query-only connection: never takes write locks, so readers
            # (``repro serve``, ``repro runs``) cannot block live workers.
            # Read-only opens of a WAL database can raise OperationalError
            # when the -shm file is missing; callers fall back to a
            # writable connection in that case.
            if not self.path.is_file():
                raise FileNotFoundError(f"no run ledger at {self.path}")
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=30.0
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA busy_timeout=30000")
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and int(row["value"]) != LEDGER_SCHEMA_VERSION:
                raise ValueError(
                    f"run ledger {self.path} has schema v{row['value']}, "
                    f"this build expects v{LEDGER_SCHEMA_VERSION}"
                )
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout=30000")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value)"
                    " VALUES ('schema_version', ?)",
                    (str(LEDGER_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != LEDGER_SCHEMA_VERSION:
                raise ValueError(
                    f"run ledger {self.path} has schema v{row['value']}, "
                    f"this build expects v{LEDGER_SCHEMA_VERSION}"
                )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def record_run(self, record: Dict[str, object]) -> None:
        """Persist one finished run (the dict :meth:`Run.to_record` builds)."""
        labels = dict(record.get("labels") or {})
        columns = {key: labels.pop(key, None) for key in _COLUMN_LABELS}
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs (run_id, kind, label, design,"
                " workload, capacity, sweep, job_seq, host, pid, started_at,"
                " finished_at, wall_seconds, status, error, labels)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (record["run_id"], record["kind"], columns["label"],
                 columns["design"], columns["workload"], columns["capacity"],
                 columns["sweep"], columns["job_seq"], record.get("host"),
                 record.get("pid"), record["started_at"],
                 record.get("finished_at"), record.get("wall_seconds"),
                 record.get("status", "ok"), record.get("error"),
                 json.dumps(labels, sort_keys=True, default=str)
                 if labels else None),
            )
            for name, (seconds, count, counters) in (
                    record.get("phases") or {}).items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO phases"
                    " (run_id, name, seconds, count, counters)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (record["run_id"], name, seconds, count,
                     json.dumps(counters, sort_keys=True)
                     if counters else None),
                )
            for name, value in (record.get("metrics") or {}).items():
                self._conn.execute(
                    "INSERT OR REPLACE INTO metrics (run_id, name, value)"
                    " VALUES (?, ?, ?)",
                    (record["run_id"], name, float(value)),
                )

    def record_event(self, kind: str, sweep: Optional[str] = None,
                     run_id: Optional[str] = None,
                     detail: Optional[Dict[str, object]] = None) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT INTO events (ts, kind, sweep, run_id, detail)"
                " VALUES (?, ?, ?, ?, ?)",
                (time.time(), kind, sweep, run_id,
                 json.dumps(detail, sort_keys=True, default=str)
                 if detail else None),
            )

    # ------------------------------------------------------------------ #
    # Heartbeats
    # ------------------------------------------------------------------ #
    def heartbeat(self, owner: str, **fields) -> None:
        """Upsert one worker's heartbeat row (missing fields preserved)."""
        now = time.time()
        with self._conn:
            self._conn.execute(
                "INSERT INTO heartbeats (owner, status, started_at,"
                " updated_at) VALUES (?, 'starting', ?, ?)"
                " ON CONFLICT(owner) DO NOTHING",
                (owner, now, now),
            )
            assignments = ", ".join(f"{name} = ?" for name in fields)
            values = list(fields.values())
            self._conn.execute(
                f"UPDATE heartbeats SET updated_at = ?"
                f"{', ' + assignments if assignments else ''}"
                f" WHERE owner = ?",
                [now] + values + [owner],
            )

    def heartbeats(self, sweep: Optional[str] = None,
                   include_exited: bool = False) -> List[sqlite3.Row]:
        where, params = [], []  # type: List[str], List[object]
        if sweep is not None:
            where.append("sweep = ?")
            params.append(sweep)
        if not include_exited:
            where.append("status != 'exited'")
        clause = f"WHERE {' AND '.join(where)}" if where else ""
        return self._conn.execute(
            f"SELECT * FROM heartbeats {clause} ORDER BY started_at",
            params,
        ).fetchall()

    # ------------------------------------------------------------------ #
    # Query side
    # ------------------------------------------------------------------ #
    def runs(self, limit: int = 20, sweep: Optional[str] = None,
             kind: Optional[str] = None) -> List[sqlite3.Row]:
        where, params = [], []  # type: List[str], List[object]
        if sweep is not None:
            where.append("sweep LIKE ?")
            params.append(sweep + "%")
        if kind is not None:
            where.append("kind = ?")
            params.append(kind)
        clause = f"WHERE {' AND '.join(where)}" if where else ""
        params.append(limit)
        return self._conn.execute(
            f"SELECT * FROM runs {clause} ORDER BY started_at DESC, run_id"
            f" DESC LIMIT ?",
            params,
        ).fetchall()

    def run(self, run_id: str) -> Optional[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()

    def resolve(self, ref: str) -> Tuple[str, List[sqlite3.Row]]:
        """Resolve a user-typed reference to runs.

        Accepts a run-id prefix or a sweep-token prefix and returns
        ``("run", [row])`` or ``("sweep", rows)``.  Raises ``KeyError`` for
        no match and ``ValueError`` for an ambiguous run prefix.
        """
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE run_id LIKE ? ORDER BY started_at",
            (ref + "%",),
        ).fetchall()
        if len(rows) == 1:
            return "run", rows
        if len(rows) > 1:
            raise ValueError(
                f"run reference {ref!r} is ambiguous "
                f"({len(rows)} matching runs)"
            )
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE sweep LIKE ? ORDER BY started_at",
            (ref + "%",),
        ).fetchall()
        if rows:
            return "sweep", rows
        raise KeyError(f"no run or sweep matches {ref!r}")

    def phases_for(self, run_ids: Sequence[str]) -> Dict[str, Tuple[float, int]]:
        """Aggregate phase seconds/counts over a set of runs."""
        if not run_ids:
            return {}
        marks = ",".join("?" for _ in run_ids)
        rows = self._conn.execute(
            f"SELECT name, SUM(seconds) AS seconds, SUM(count) AS count"
            f" FROM phases WHERE run_id IN ({marks}) GROUP BY name",
            list(run_ids),
        ).fetchall()
        return {row["name"]: (row["seconds"], row["count"]) for row in rows}

    def metrics_for(self, run_ids: Sequence[str]) -> Dict[str, float]:
        """Summed metrics over a set of runs (rates are recomputed by
        callers from the summed numerators/denominators)."""
        if not run_ids:
            return {}
        marks = ",".join("?" for _ in run_ids)
        rows = self._conn.execute(
            f"SELECT name, SUM(value) AS value FROM metrics"
            f" WHERE run_id IN ({marks}) GROUP BY name",
            list(run_ids),
        ).fetchall()
        return {row["name"]: row["value"] for row in rows}

    def events_for(self, run_id: Optional[str] = None,
                   sweep: Optional[str] = None,
                   limit: int = 50) -> List[sqlite3.Row]:
        where, params = [], []  # type: List[str], List[object]
        if run_id is not None:
            where.append("run_id = ?")
            params.append(run_id)
        if sweep is not None:
            where.append("sweep = ?")
            params.append(sweep)
        clause = f"WHERE {' AND '.join(where)}" if where else ""
        params.append(limit)
        return self._conn.execute(
            f"SELECT * FROM events {clause} ORDER BY ts DESC, id DESC"
            f" LIMIT ?",
            params,
        ).fetchall()


def summarize(ledger: RunLedger, rows: Sequence[sqlite3.Row]) -> Dict[str, object]:
    """The aggregate report behind ``repro runs show``.

    Sums per-phase wall-clock over the given runs, recomputes throughput
    (total measured accesses / total measure seconds) and the store and
    checkpoint hit rates from the summed counters, and carries the run
    count and statuses.
    """
    run_ids = [row["run_id"] for row in rows]
    phases = ledger.phases_for(run_ids)
    metrics = ledger.metrics_for(run_ids)
    # Per-run derived rates are not meaningful summed; they are recomputed
    # below from the summed numerators and denominators.
    for name in ("accesses_per_sec", "trace_store_hit_rate",
                 "checkpoint_hit_rate"):
        metrics.pop(name, None)
    summary: Dict[str, object] = {
        "runs": len(rows),
        "errors": sum(1 for row in rows if row["status"] != "ok"),
        "wall_seconds": sum(row["wall_seconds"] or 0.0 for row in rows),
        "phases": phases,
        "metrics": metrics,
    }
    measure = phases.get("measure", (0.0, 0))[0]
    accesses = metrics.get("accesses", 0.0)
    if measure > 0 and accesses:
        summary["accesses_per_sec"] = accesses / measure
    hits = metrics.get("trace_store_hits", 0.0)
    misses = metrics.get("trace_store_misses", 0.0)
    if hits + misses > 0:
        summary["trace_store_hit_rate"] = hits / (hits + misses)
    hits = metrics.get("checkpoint_hits", 0.0)
    misses = metrics.get("checkpoint_misses", 0.0)
    if hits + misses > 0:
        summary["checkpoint_hit_rate"] = hits / (hits + misses)
    return summary


__all__ = [
    "HEARTBEAT_STALE_SECONDS",
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "summarize",
]
