"""Unison Cache -- the paper's primary contribution.

* :mod:`repro.core.row_layout` -- how pages, embedded tags, bit vectors,
  (PC, offset) pairs and LRU state are packed into an 8 KB DRAM row
  (Figures 2 and 3).
* :mod:`repro.core.unison` -- the functional + timing model of the cache:
  page-based allocation with footprint fetching, DRAM-embedded tags read in
  unison with the predicted way's data block, set-associativity with way
  prediction, singleton bypass, and eviction-time footprint learning.

``UnisonCache`` loads lazily (PEP 562): the design class sits on top of the
component layer (:mod:`repro.dramcache.components`), which itself needs
:mod:`repro.core.row_layout` -- the lazy export keeps this package importable
from the component layer without a cycle.
"""

from repro.core.row_layout import UnisonRowLayout

__all__ = ["UnisonRowLayout", "UnisonCache"]


def __getattr__(name: str):
    if name == "UnisonCache":
        from repro.core.unison import UnisonCache

        globals()["UnisonCache"] = UnisonCache
        return UnisonCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | {"UnisonCache"})
