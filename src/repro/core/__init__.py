"""Unison Cache -- the paper's primary contribution.

* :mod:`repro.core.row_layout` -- how pages, embedded tags, bit vectors,
  (PC, offset) pairs and LRU state are packed into an 8 KB DRAM row
  (Figures 2 and 3).
* :mod:`repro.core.unison` -- the functional + timing model of the cache:
  page-based allocation with footprint fetching, DRAM-embedded tags read in
  unison with the predicted way's data block, set-associativity with way
  prediction, singleton bypass, and eviction-time footprint learning.
"""

from repro.core.row_layout import UnisonRowLayout
from repro.core.unison import UnisonCache

__all__ = ["UnisonRowLayout", "UnisonCache"]
