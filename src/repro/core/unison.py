"""Unison Cache model.

The design combines (Section III):

* **DRAM-embedded tags**: one tag per page, stored with bit vectors and the
  (PC, offset) pair in the page's DRAM row.  No SRAM tag array; the tag burst
  and the (way-predicted) data block are read *in unison* -- two back-to-back,
  overlapped reads to the same row -- so a hit costs one DRAM access plus a
  two-cycle tag-burst overhead.
* **Page-based allocation with footprint fetching**: pages of 15 (or 31)
  blocks are allocated on a trigger miss, but only the blocks the footprint
  predictor names are fetched from off-chip memory.
* **Set-associativity with way prediction**: four ways per set, all stored in
  the same DRAM row, located by a 2-bit XOR-hash way predictor so neither
  latency nor bandwidth grows with associativity.
* **Singleton bypass**: pages predicted to need a single block are not
  allocated; the block is forwarded directly, and the singleton table watches
  for mispredictions.
* **Eviction-time learning**: when a page is evicted, its actual footprint
  (from the valid/dirty vectors) and its stored (PC, offset) pair update the
  footprint history table.

Since the composable-design refactor the class is a *named composition*: the
service path lives in :class:`repro.dramcache.composed.ComposedDramCache`,
and this module only assembles the component set -- in-DRAM page tags, the
way predictor, footprint fetching -- that *is* Unison Cache.  The canonical
``unison*`` design names are registered as
:class:`repro.dramcache.spec.DesignSpec` entries in
:mod:`repro.dramcache.designs`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.config.cache_configs import (
    UnisonCacheConfig,
    way_predictor_index_bits_for_capacity,
)
from repro.dramcache.components import (
    DramPageTags,
    FootprintFetch,
    OracleWayPrediction,
    PageFrame,
    WayPredictionPolicy,
    WritebackDirtyPolicy,
)
from repro.dramcache.composed import ComposedDramCache
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.footprint import FootprintPredictor
from repro.predictors.singleton import SingletonTable
from repro.predictors.way import WayPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dramcache.spec import DesignSpec
    from repro.sim.registry import DesignBuildContext

#: Backwards-compatible alias: the page-frame record used to be private here.
_PageFrame = PageFrame


class UnisonCache(ComposedDramCache):
    """The Unison Cache design (Section III-A)."""

    design_name = "unison"

    def __init__(self, config: Optional[UnisonCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or UnisonCacheConfig()
        self.config.validate()
        tags = DramPageTags(self.config)
        if self.config.use_way_prediction and self.config.associativity > 1:
            hit_predictor = WayPredictionPolicy(
                WayPredictor(
                    index_bits=self.config.way_predictor_index_bits,
                    associativity=self.config.associativity,
                ),
                mispredict_penalty_cycles=(
                    self.config.way_mispredict_penalty_cycles
                ),
            )
        else:
            # No predictor: the model reads the correct way directly
            # (perfect way knowledge), and keeps reporting accuracy 1.0.
            hit_predictor = OracleWayPrediction()
        fetch = FootprintFetch(
            FootprintPredictor(
                blocks_per_page=self.config.blocks_per_page,
                num_entries=self.config.footprint_table_entries,
            ),
            SingletonTable(
                num_entries=self.config.singleton_table_entries,
                blocks_per_page=self.config.blocks_per_page,
            ),
        )
        super().__init__(
            tags=tags,
            hit_predictor=hit_predictor,
            fetch=fetch,
            writeback=WritebackDirtyPolicy(),
            stacked=stacked,
            memory=memory,
            interarrival_cycles=interarrival_cycles,
        )

    # ------------------------------------------------------------------ #
    # Spec integration (see repro.dramcache.designs)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_design_spec(cls, context: "DesignBuildContext",
                         spec: "DesignSpec") -> "UnisonCache":
        from repro.dramcache.spec import require_components, take_params

        require_components(spec, tags=("dram-page",), hit_predictor=("way",),
                           fetch=("footprint",))
        tags = take_params(spec.tags, "tag organization",
                           ("blocks_per_page", "associativity", "hit_path"))
        if tags.get("hit_path", "overlapped") != "overlapped":
            raise ValueError(
                "the UnisonCache model class only supports the overlapped "
                "hit path; use model='composed' for hit_path variants"
            )
        hit = take_params(spec.hit_predictor, "hit predictor",
                          ("index_bits", "mispredict_penalty_cycles"))
        fetch = take_params(spec.fetch, "fetch policy",
                            ("table_entries", "singleton_entries"))
        associativity = (context.associativity
                         if context.associativity is not None
                         else tags.get("associativity", 4))
        # Only explicitly-declared spec params override the config; the
        # dataclass defaults stay the single source of the shared sizes.
        overrides = {}
        if "mispredict_penalty_cycles" in hit:
            overrides["way_mispredict_penalty_cycles"] = (
                hit["mispredict_penalty_cycles"])
        if "table_entries" in fetch:
            overrides["footprint_table_entries"] = fetch["table_entries"]
        if "singleton_entries" in fetch:
            overrides["singleton_table_entries"] = fetch["singleton_entries"]
        config = UnisonCacheConfig(
            capacity=context.scaled_capacity_bytes,
            blocks_per_page=tags.get("blocks_per_page", 15),
            associativity=associativity,
            use_way_prediction=associativity > 1,
            # The way predictor is sized for the *paper* capacity (Section
            # IV) unless the spec pins its index width explicitly.
            way_predictor_index_bits=hit.get(
                "index_bits",
                way_predictor_index_bits_for_capacity(
                    context.paper_capacity_bytes)),
            **overrides,
        )
        return cls(config)

    # ------------------------------------------------------------------ #
    # Compatibility accessors into the components
    # ------------------------------------------------------------------ #
    @property
    def layout(self):
        """The in-DRAM row layout (owned by the tag organization)."""
        return self.tags.layout

    @property
    def mapper(self):
        """The residue page/set mapper (owned by the tag organization)."""
        return self.tags.mapper

    @property
    def _frames(self) -> List[List[PageFrame]]:
        return self.tags.frames

    @property
    def _lru(self):
        return self.tags.lru
