"""Unison Cache model.

The design combines (Section III):

* **DRAM-embedded tags**: one tag per page, stored with bit vectors and the
  (PC, offset) pair in the page's DRAM row.  No SRAM tag array; the tag burst
  and the (way-predicted) data block are read *in unison* -- two back-to-back,
  overlapped reads to the same row -- so a hit costs one DRAM access plus a
  two-cycle tag-burst overhead.
* **Page-based allocation with footprint fetching**: pages of 15 (or 31)
  blocks are allocated on a trigger miss, but only the blocks the footprint
  predictor names are fetched from off-chip memory.
* **Set-associativity with way prediction**: four ways per set, all stored in
  the same DRAM row, located by a 2-bit XOR-hash way predictor so neither
  latency nor bandwidth grows with associativity.
* **Singleton bypass**: pages predicted to need a single block are not
  allocated; the block is forwarded directly, and the singleton table watches
  for mispredictions.
* **Eviction-time learning**: when a page is evicted, its actual footprint
  (from the valid/dirty vectors) and its stored (PC, offset) pair update the
  footprint history table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.replacement import LruPolicy
from repro.config.cache_configs import UnisonCacheConfig
from repro.core.row_layout import UnisonRowLayout
from repro.dramcache.base import DramCacheAccessResult, DramCacheModel
from repro.mem.main_memory import MainMemory
from repro.mem.stacked import StackedDram
from repro.predictors.footprint import FootprintPredictor
from repro.predictors.singleton import SingletonTable
from repro.predictors.way import WayPredictor
from repro.sim.registry import DesignBuildContext, register_design
from repro.stats.counters import StatGroup
from repro.trace.record import MemoryAccess
from repro.utils.bitvector import BitVector
from repro.utils.residue import ResidueMapper


@dataclass
class _PageFrame:
    """One way of one set: a cached page and its embedded metadata."""

    valid: bool = False
    page_number: int = -1
    #: Blocks present in the cache (fetched by the footprint or on demand).
    vbits: BitVector = field(default_factory=lambda: BitVector(15))
    #: Blocks written by the CPU while resident.
    dbits: BitVector = field(default_factory=lambda: BitVector(15))
    #: Blocks actually demanded by the CPU while resident (the true footprint).
    demanded: BitVector = field(default_factory=lambda: BitVector(15))
    #: Footprint the predictor fetched at allocation (for accuracy accounting).
    predicted: BitVector = field(default_factory=lambda: BitVector(15))
    trigger_pc: int = 0
    trigger_offset: int = 0
    #: Whether the fetched footprint came from a trained history entry.
    predicted_from_history: bool = False


class UnisonCache(DramCacheModel):
    """The Unison Cache design (Section III-A)."""

    design_name = "unison"

    #: Warm state beyond the base's: the per-set frames (DRAM-embedded tags,
    #: valid/dirty/demanded/predicted vectors), LRU state, the presence
    #: directory, and all three predictor tables.
    _STATE_ATTRS = ("_frames", "_lru", "_directory", "footprint_predictor",
                    "singleton_table", "way_predictor")

    def __init__(self, config: Optional[UnisonCacheConfig] = None,
                 stacked: Optional[StackedDram] = None,
                 memory: Optional[MainMemory] = None,
                 interarrival_cycles: int = 6) -> None:
        self.config = config or UnisonCacheConfig()
        self.config.validate()
        super().__init__(self.config.capacity_bytes, stacked, memory,
                         interarrival_cycles=interarrival_cycles)
        self.layout = UnisonRowLayout(self.config)
        self.mapper = ResidueMapper(
            blocks_per_page=self.config.blocks_per_page,
            num_sets=self.config.num_sets,
        )

        blocks = self.config.blocks_per_page
        self.footprint_predictor = FootprintPredictor(
            blocks_per_page=blocks,
            num_entries=self.config.footprint_table_entries,
        )
        self.singleton_table = SingletonTable(
            num_entries=self.config.singleton_table_entries,
            blocks_per_page=blocks,
        )
        self.way_predictor: Optional[WayPredictor] = None
        if self.config.use_way_prediction and self.config.associativity > 1:
            self.way_predictor = WayPredictor(
                index_bits=self.config.way_predictor_index_bits,
                associativity=self.config.associativity,
            )

        num_sets = self.config.num_sets
        self._frames: List[List[_PageFrame]] = [
            [self._new_frame() for _ in range(self.config.associativity)]
            for _ in range(num_sets)
        ]
        self._lru: List[LruPolicy] = [
            LruPolicy(self.config.associativity) for _ in range(num_sets)
        ]
        # Fast presence index: page_number -> (set_index, way).
        self._directory: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def _new_frame(self) -> _PageFrame:
        blocks = self.config.blocks_per_page
        return _PageFrame(
            vbits=BitVector(blocks),
            dbits=BitVector(blocks),
            demanded=BitVector(blocks),
            predicted=BitVector(blocks),
        )

    def _find_way(self, set_index: int, page_number: int) -> int:
        frames = self._frames[set_index]
        for way, frame in enumerate(frames):
            if frame.valid and frame.page_number == page_number:
                return way
        return -1

    # ------------------------------------------------------------------ #
    # Main access path
    # ------------------------------------------------------------------ #
    def _service_request(self, request: MemoryAccess) -> DramCacheAccessResult:
        """Service one L2-miss request."""
        block_address = request.block_address
        location = self.mapper.locate(block_address)
        page = location.page_number
        set_index = location.set_index
        offset = location.block_offset

        way = self._find_way(set_index, page)
        if way >= 0:
            return self._access_resident_page(request, page, set_index, way, offset)
        return self._trigger_miss(request, page, set_index, offset)

    # ------------------------------------------------------------------ #
    def _tag_frame(self, set_index: int) -> int:
        """Frame whose row holds the set's tag metadata (the set's first way)."""
        return self.layout.frame_index(set_index, 0)

    def _overlapped_lookup_latency(self, set_index: int, way: int, offset: int) -> int:
        """Latency of the overlapped tag-burst + data-block read (hit path).

        Both reads target the same DRAM row; the tag burst goes first and the
        data read follows back-to-back, so the pair costs a single row access
        plus the tag-transfer overhead (two CPU cycles, Section III-A.6).
        """
        tag_frame = self._tag_frame(set_index)
        tag_result = self.stacked.read(
            self.layout.frame_row(tag_frame),
            self.layout.presence_metadata_offset(tag_frame),
            self.layout.presence_bytes_per_set,
            self._now,
        )
        data_frame = self.layout.frame_index(set_index, way)
        data_result = self.stacked.read_block(
            self.layout.frame_row(data_frame),
            self.layout.block_offset(data_frame, offset),
            self._now,
        )
        overlapped = max(tag_result.latency_cpu_cycles, data_result.latency_cpu_cycles)
        return overlapped + self.config.tag_read_overhead_cycles

    def _tag_only_lookup_latency(self, set_index: int) -> int:
        """Latency of discovering a miss: the tags must be read from DRAM."""
        tag_frame = self._tag_frame(set_index)
        tag_result = self.stacked.read(
            self.layout.frame_row(tag_frame),
            self.layout.presence_metadata_offset(tag_frame),
            self.layout.presence_bytes_per_set,
            self._now,
        )
        return tag_result.latency_cpu_cycles + self.config.tag_read_overhead_cycles

    # ------------------------------------------------------------------ #
    def _access_resident_page(self, request: MemoryAccess, page: int,
                              set_index: int, way: int,
                              offset: int) -> DramCacheAccessResult:
        frame = self._frames[set_index][way]
        frame.demanded.set(offset)
        if request.is_write:
            frame.dbits.set(offset)
        self._lru[set_index].on_access(way)

        # Way prediction is exercised on every access to a resident page: the
        # controller reads the predicted way's block in unison with the tags.
        predicted_way = way
        if self.way_predictor is not None:
            correct = self.way_predictor.record(page, way)
            predicted_way = way if correct else (way + 1) % self.config.associativity

        data_frame = self.layout.frame_index(set_index, way)
        data_row = self.layout.frame_row(data_frame)
        if frame.vbits.get(offset):
            latency = self._overlapped_lookup_latency(set_index, predicted_way, offset)
            if self.way_predictor is not None and predicted_way != way:
                # Misprediction: the correct way is re-read from the now-open
                # row buffer (cheap, Section III-A.6).
                latency += self.config.way_mispredict_penalty_cycles
            if request.is_write:
                self.stacked.write(
                    data_row,
                    self.layout.block_offset(data_frame, offset),
                    self.config.block_size,
                    self._now,
                )
            self.cache_stats.record_hit(latency, request.is_write)
            return DramCacheAccessResult(hit=True, latency_cycles=latency)

        # Footprint underprediction: the page is resident but the block was
        # not fetched.  Only the missing block is brought in; the predictor is
        # corrected lazily at eviction through the demanded vector.
        self.cache_stats.underprediction_misses += 1
        lookup_latency = self._tag_only_lookup_latency(set_index)
        offchip_latency = self.memory.read_block(request.block_address, self._now)
        self.cache_stats.offchip_demand_blocks += 1
        frame.vbits.set(offset)
        self.stacked.write(
            data_row,
            self.layout.block_offset(data_frame, offset),
            self.config.block_size,
            self._now,
        )
        latency = lookup_latency + offchip_latency
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False, latency_cycles=latency, offchip_blocks_fetched=1
        )

    # ------------------------------------------------------------------ #
    def _trigger_miss(self, request: MemoryAccess, page: int, set_index: int,
                      offset: int) -> DramCacheAccessResult:
        lookup_latency = self._tag_only_lookup_latency(set_index)

        # A prior singleton bypass of this page may be contradicted by this
        # access; the singleton table corrects the history table if so.
        correction = self.singleton_table.record_access(page, offset)
        if correction is not None:
            trigger_pc, trigger_offset, observed = correction
            self.footprint_predictor.update(trigger_pc, trigger_offset, observed)

        prediction = self.footprint_predictor.predict(request.pc, offset)

        if prediction.is_singleton and prediction.from_history:
            # Predicted singleton: forward the block without allocating a page.
            offchip_latency = self.memory.read_block(request.block_address, self._now)
            self.cache_stats.offchip_demand_blocks += 1
            self.cache_stats.singleton_bypasses += 1
            if correction is None:
                self.singleton_table.insert(page, request.pc, offset)
            latency = lookup_latency + offchip_latency
            self.cache_stats.record_miss(latency, request.is_write)
            return DramCacheAccessResult(
                hit=False, latency_cycles=latency, offchip_blocks_fetched=1
            )

        # Allocate the page: evict the LRU victim, fetch the predicted footprint.
        victim_way = self._lru[set_index].victim(
            [frame.valid for frame in self._frames[set_index]]
        )
        written_back = self._evict(set_index, victim_way)

        footprint = prediction.footprint.copy()
        footprint.set(offset)
        fetch_offsets = footprint.indices()
        base_block = page * self.config.blocks_per_page
        fetch_blocks = [base_block + o for o in fetch_offsets]
        offchip_latency = self.memory.fetch_blocks(fetch_blocks, self._now)
        self.cache_stats.offchip_demand_blocks += 1
        self.cache_stats.offchip_prefetch_blocks += len(fetch_blocks) - 1

        frame = self._frames[set_index][victim_way]
        frame.valid = True
        frame.page_number = page
        frame.vbits = footprint.copy()
        frame.dbits = BitVector(self.config.blocks_per_page)
        frame.demanded = BitVector.from_indices(self.config.blocks_per_page, [offset])
        frame.predicted = footprint.copy()
        frame.predicted_from_history = prediction.from_history
        frame.trigger_pc = request.pc
        frame.trigger_offset = offset
        if request.is_write:
            frame.dbits.set(offset)
        self._lru[set_index].on_fill(victim_way)
        self.cache_stats.pages_allocated += 1

        # Fill the fetched blocks (and the new tag metadata) into the row.
        victim_frame = self.layout.frame_index(set_index, victim_way)
        victim_row = self.layout.frame_row(victim_frame)
        self.stacked.fill_blocks(
            victim_row,
            [self.layout.block_offset(victim_frame, o) for o in fetch_offsets],
            self._now,
        )
        self.stacked.write(
            victim_row,
            self.layout.presence_metadata_offset(victim_frame),
            self.layout.presence_bytes_per_page,
            self._now,
        )

        latency = lookup_latency + offchip_latency
        self.cache_stats.record_miss(latency, request.is_write)
        return DramCacheAccessResult(
            hit=False,
            latency_cycles=latency,
            offchip_blocks_fetched=len(fetch_blocks),
            offchip_blocks_written=written_back,
        )

    # ------------------------------------------------------------------ #
    def _evict(self, set_index: int, way: int) -> int:
        """Evict the page in ``way`` (if valid); returns dirty blocks written back."""
        frame = self._frames[set_index][way]
        if not frame.valid:
            return 0
        self.cache_stats.pages_evicted += 1
        self.cache_stats.conflict_evictions += 1

        # Read the (PC, offset) pair and bit vectors from the row (off the
        # critical path) and train the footprint predictor with the actual
        # footprint observed during residency.
        victim_frame = self.layout.frame_index(set_index, way)
        self.stacked.read(
            self.layout.frame_row(victim_frame),
            self.layout.other_metadata_offset(victim_frame),
            self.layout.pc_offset_bytes_per_page,
            self._now,
        )
        actual = frame.demanded.copy()
        if not actual.any():
            actual.set(frame.trigger_offset)
        self.footprint_predictor.update(frame.trigger_pc, frame.trigger_offset, actual)
        self.footprint_predictor.record_outcome(
            frame.predicted, actual, from_history=frame.predicted_from_history
        )

        dirty_offsets = frame.dbits.intersection(frame.vbits).indices()
        if dirty_offsets:
            base_block = frame.page_number * self.config.blocks_per_page
            self.memory.write_blocks(
                [base_block + o for o in dirty_offsets], self._now
            )
            self.cache_stats.offchip_writeback_blocks += len(dirty_offsets)

        frame.valid = False
        frame.page_number = -1
        return len(dirty_offsets)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Reset cache and predictor statistics; contents and training persist."""
        super().reset_stats()
        self.footprint_predictor.reset_stats()
        if self.way_predictor is not None:
            self.way_predictor.reset_stats()

    @property
    def way_prediction_accuracy(self) -> float:
        """Measured way-predictor accuracy (Table V's WP row)."""
        if self.way_predictor is None:
            return 1.0
        return self.way_predictor.accuracy.value

    @property
    def footprint_accuracy(self) -> float:
        """Measured footprint-predictor accuracy (Table V's FP row)."""
        return self.footprint_predictor.accuracy_ratio

    @property
    def footprint_overfetch(self) -> float:
        """Measured footprint overfetch ratio (Table V)."""
        return self.footprint_predictor.overfetch_ratio

    def extra_metrics(self) -> Dict[str, float]:
        """Predictor accuracies reported in Table V."""
        return {
            "footprint_accuracy": self.footprint_accuracy,
            "footprint_overfetch": self.footprint_overfetch,
            "way_prediction_accuracy": self.way_prediction_accuracy,
        }

    def stats(self) -> StatGroup:
        """Design, predictor and device statistics."""
        group = super().stats()
        group.merge_child(self.footprint_predictor.stats())
        group.merge_child(self.singleton_table.stats())
        if self.way_predictor is not None:
            group.merge_child(self.way_predictor.stats())
        return group


# --------------------------------------------------------------------- #
# Registry integration: one builder shared by all Unison variants.
# --------------------------------------------------------------------- #
@register_design("unison", supports_associativity=True,
                 description="960B pages, 4-way, way prediction "
                             "(the main design point)",
                 blocks_per_page=15, default_associativity=4)
@register_design("unison-1984", supports_associativity=True,
                 description="1984B pages, 4-way",
                 blocks_per_page=31, default_associativity=4)
@register_design("unison-dm", supports_associativity=True,
                 description="960B pages, direct-mapped",
                 blocks_per_page=15, default_associativity=1)
@register_design("unison-32way", supports_associativity=True,
                 description="960B pages, 32-way "
                             "(Figure 5's associativity sweep)",
                 blocks_per_page=15, default_associativity=32)
def _build_unison(context: DesignBuildContext, *, blocks_per_page: int = 15,
                  default_associativity: int = 4) -> UnisonCache:
    associativity = (context.associativity if context.associativity is not None
                     else default_associativity)
    config = UnisonCacheConfig(
        capacity=context.scaled_capacity_bytes,
        blocks_per_page=blocks_per_page,
        associativity=associativity,
        use_way_prediction=associativity > 1,
        # The way predictor is sized for the *paper* capacity (Section IV).
        way_predictor_index_bits=(
            16 if context.paper_capacity_bytes > 4 * 1024 ** 3 else 12
        ),
    )
    return UnisonCache(config)
