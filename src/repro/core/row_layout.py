"""DRAM row organization of Unison Cache (paper Figures 2 and 3).

An 8 KB DRAM row holds a whole number of *page frames* (8 frames of 960 B
pages in the default configuration).  The metadata needed to determine block
presence (page tag plus valid/dirty bit vectors, 8 bytes per page as drawn in
Figure 2) for every frame of the row is packed together at the front so the
tags of a whole set return in one short burst; the (PC, offset) pairs and LRU
bits follow; the frames' data blocks fill the rest of the row.

For the default configuration -- 960 B pages (15 blocks), 4 ways, 8 KB rows --
each row holds two 4-way sets (8 frames): 64 B of presence metadata, ~50 B of
other metadata, and 8 x 960 B = 7680 B of data, i.e. 120 data blocks per row
(Table II).  When the associativity exceeds the frames per row (the 32-way
sensitivity study of Figure 5), a set simply spans consecutive rows; the
frame-based addressing below handles both cases uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cache_configs import UnisonCacheConfig


@dataclass(frozen=True)
class UnisonRowLayout:
    """Byte-level layout of DRAM rows for a Unison Cache configuration.

    Pages are addressed by *frame index*: frame ``f`` lives in DRAM row
    ``f // pages_per_row`` at slot ``f % pages_per_row``.  The cache model
    computes a page's frame index as ``set_index * associativity + way``.
    """

    config: UnisonCacheConfig

    def __post_init__(self) -> None:
        self.config.validate()
        if self.data_base_offset + self.data_bytes_per_row > self.row_bytes:
            raise ValueError(
                "metadata and data do not fit in the row: "
                f"{self.data_base_offset} + {self.data_bytes_per_row} "
                f"> {self.row_bytes}"
            )

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def row_bytes(self) -> int:
        """DRAM row size in bytes."""
        return self.config.row_buffer_size

    @property
    def pages_per_row(self) -> int:
        """Page frames stored in one row."""
        return self.config.pages_per_row

    @property
    def sets_per_row(self) -> int:
        """Complete sets per row (0 if a set spans several rows)."""
        return self.config.sets_per_row

    @property
    def associativity(self) -> int:
        """Pages per set."""
        return self.config.associativity

    @property
    def page_data_bytes(self) -> int:
        """Data bytes of one page."""
        return self.config.page_data_bytes

    @property
    def data_bytes_per_row(self) -> int:
        """Data bytes of all frames of one row."""
        return self.pages_per_row * self.page_data_bytes

    @property
    def data_blocks_per_row(self) -> int:
        """Data blocks stored per row (Table II's "64B Blocks per 8KB Row")."""
        return self.pages_per_row * self.config.blocks_per_page

    # ------------------------------------------------------------------ #
    # Metadata sizing
    # ------------------------------------------------------------------ #
    @property
    def presence_bytes_per_page(self) -> int:
        """Bytes of presence metadata per page: tag + valid/dirty bit vectors.

        A page tag of ~4 bytes plus two bit vectors of ``blocks_per_page``
        bits each, rounded to whole bytes -- 8 bytes for 15-block pages,
        matching Figure 2's 8-byte metadata unit.
        """
        vector_bytes = -(-self.config.blocks_per_page // 8)
        return 4 + 2 * vector_bytes

    @property
    def presence_bytes_per_set(self) -> int:
        """Presence metadata transferred on every access (32 B for 4 ways)."""
        return self.presence_bytes_per_page * self.associativity

    @property
    def presence_bytes_per_row(self) -> int:
        """Presence metadata stored at the front of each row."""
        return self.presence_bytes_per_page * self.pages_per_row

    @property
    def pc_offset_bytes_per_page(self) -> int:
        """Bytes of the (PC, offset) pair stored per page (read on eviction only)."""
        return 6

    @property
    def lru_bytes_per_row(self) -> int:
        """Bytes of replacement-policy state per row."""
        return 2

    @property
    def metadata_bytes_per_row(self) -> int:
        """Total metadata bytes per row."""
        return (self.presence_bytes_per_row
                + self.pc_offset_bytes_per_page * self.pages_per_row
                + self.lru_bytes_per_row)

    @property
    def data_base_offset(self) -> int:
        """Byte offset at which the data frames start within a row."""
        return self.metadata_bytes_per_row

    @property
    def unused_bytes_per_row(self) -> int:
        """Slack bytes per row (alignment padding)."""
        return self.row_bytes - self.data_base_offset - self.data_bytes_per_row

    # ------------------------------------------------------------------ #
    # Frame-based addressing
    # ------------------------------------------------------------------ #
    def frame_index(self, set_index: int, way: int) -> int:
        """Frame index of ``way`` of ``set_index``."""
        if set_index < 0:
            raise IndexError("set_index must be non-negative")
        if not 0 <= way < self.associativity:
            raise IndexError(f"way {way} out of range")
        return set_index * self.associativity + way

    def frame_row(self, frame: int) -> int:
        """DRAM row index holding ``frame``."""
        if frame < 0:
            raise IndexError("frame must be non-negative")
        return frame // self.pages_per_row

    def frame_slot(self, frame: int) -> int:
        """Position of ``frame`` within its row."""
        if frame < 0:
            raise IndexError("frame must be non-negative")
        return frame % self.pages_per_row

    def presence_metadata_offset(self, frame: int) -> int:
        """Offset of the frame's presence metadata within its row."""
        return self.frame_slot(frame) * self.presence_bytes_per_page

    def other_metadata_offset(self, frame: int) -> int:
        """Offset of the frame's (PC, offset) metadata (read on evictions)."""
        return (self.presence_bytes_per_row
                + self.frame_slot(frame) * self.pc_offset_bytes_per_page)

    def block_offset(self, frame: int, block_index: int) -> int:
        """Byte offset of one data block of ``frame`` within its row."""
        if not 0 <= block_index < self.config.blocks_per_page:
            raise IndexError(f"block_index {block_index} out of range")
        return (self.data_base_offset
                + self.frame_slot(frame) * self.page_data_bytes
                + block_index * self.config.block_size)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Summary used by the Table II benchmark."""
        return (
            f"{self.pages_per_row} pages/row, {self.associativity} ways, "
            f"{self.config.blocks_per_page} blocks/page, "
            f"{self.data_blocks_per_row} data blocks/row, "
            f"{self.presence_bytes_per_set}B presence metadata/set"
        )
