"""Measurement-window placement for checkpointed sampled simulation.

A sampled run measures many short windows instead of one long suffix.  The
plan built here mirrors the SimFlex discipline the paper samples with:

* a **checkpoint prologue** -- the stretch of trace replayed once per design
  to build the warm :class:`~repro.dramcache.base.StateSnapshot` that every
  window restores from;
* **windows** placed over the measurement region (the part of the trace a
  full replay would measure, i.e. past ``warmup_fraction``), either
  systematically (evenly spaced) or at seeded-random positions;
* a deterministic shuffled **measurement order**, so adaptive termination
  that stops after a prefix of the plan has measured an unbiased spread of
  the region rather than its left edge.

Everything is a pure function of ``(total_accesses, warmup_fraction,
SamplingConfig)`` -- no global state -- so serial and process-parallel sweep
executions sample identical windows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

#: Window placement strategies.
PLACEMENT_SYSTEMATIC = "systematic"
PLACEMENT_RANDOM = "random"
PLACEMENTS = (PLACEMENT_SYSTEMATIC, PLACEMENT_RANDOM)


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of one sampled (windowed) measurement.

    The defaults target the acceptance bar of the paper's methodology --
    ~2% relative error at 95% confidence while simulating a small fraction
    of the trace -- on the reproduction's synthetic workloads.
    """

    #: Accesses measured per window.
    window_accesses: int = 2_000
    #: Accesses of per-window functional warming replayed from the
    #: checkpoint before measurement begins.
    warmup_accesses: int = 2_000
    #: Accesses of the one-time prologue that builds the warm checkpoint
    #: (ending where the measurement region starts).
    checkpoint_accesses: int = 50_000
    #: Windows measured before adaptive termination may trigger.
    min_windows: int = 5
    #: Window budget: sampling stops here even when not converged.
    max_windows: int = 30
    #: Target half-width of the 95% CI, relative to the mean.
    target_relative_error: float = 0.02
    #: Window placement: ``"systematic"`` or ``"random"``.
    placement: str = PLACEMENT_SYSTEMATIC
    #: Seed of random placement and of the measurement order shuffle.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_accesses <= 0:
            raise ValueError("window_accesses must be positive")
        if self.warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")
        if self.checkpoint_accesses < 0:
            raise ValueError("checkpoint_accesses must be non-negative")
        if self.min_windows <= 0:
            raise ValueError("min_windows must be positive")
        if self.max_windows < self.min_windows:
            raise ValueError("max_windows must be >= min_windows")
        if not 0.0 < self.target_relative_error:
            raise ValueError("target_relative_error must be positive")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; known: {PLACEMENTS}"
            )


@dataclass(frozen=True)
class MeasurementWindow:
    """One planned window: a warm-up slice followed by a measured slice."""

    index: int
    #: First access of the per-window functional warming (>= the checkpoint
    #: position, so warming never re-replays checkpointed history).
    warmup_start: int
    #: First measured access.
    start: int
    #: One past the last measured access.
    stop: int

    @property
    def warmup_accesses(self) -> int:
        return self.start - self.warmup_start

    @property
    def measure_accesses(self) -> int:
        return self.stop - self.start

    @property
    def simulated_accesses(self) -> int:
        """Accesses a design replays for this window (warm-up + measure)."""
        return self.stop - self.warmup_start


@dataclass(frozen=True)
class WindowPlan:
    """The full schedule of one sampled measurement."""

    total_accesses: int
    #: Prologue replayed once per design to build the warm checkpoint.
    checkpoint_start: int
    checkpoint_stop: int
    #: Planned windows in positional order.
    windows: Tuple[MeasurementWindow, ...]
    #: Measurement order (indices into ``windows``): a deterministic
    #: shuffle, so an adaptively-terminated prefix spreads over the region.
    order: Tuple[int, ...]

    @property
    def checkpoint_accesses(self) -> int:
        return self.checkpoint_stop - self.checkpoint_start

    def simulated_accesses(self, windows_measured: int) -> int:
        """Accesses one design simulates for the first N ordered windows."""
        windows_measured = min(windows_measured, len(self.order))
        return self.checkpoint_accesses + sum(
            self.windows[i].simulated_accesses
            for i in self.order[:windows_measured]
        )

    def sampled_fraction(self, windows_measured: int) -> float:
        """Fraction of the trace one design simulates for N windows."""
        if self.total_accesses == 0:
            return 0.0
        return self.simulated_accesses(windows_measured) / self.total_accesses


def plan_windows(total_accesses: int, warmup_fraction: float,
                 config: SamplingConfig) -> WindowPlan:
    """Place measurement windows over a trace of ``total_accesses``.

    The measurement region is ``[total * warmup_fraction, total)`` -- the
    same region a full replay measures -- and the checkpoint prologue is the
    ``checkpoint_accesses`` immediately before it.  Window count is capped
    so windows can never overlap under systematic placement; degenerate
    traces (region smaller than one window) collapse to a single window
    covering the region.
    """
    if total_accesses <= 0:
        raise ValueError("total_accesses must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")

    region_start = int(total_accesses * warmup_fraction)
    region_len = total_accesses - region_start
    window = min(config.window_accesses, region_len)
    count = max(1, min(config.max_windows, region_len // max(1, window)))

    checkpoint_stop = region_start
    checkpoint_start = max(0, region_start - config.checkpoint_accesses)

    span = region_len - window
    if config.placement == PLACEMENT_SYSTEMATIC:
        if count == 1:
            starts = [region_start]
        else:
            starts = [region_start + round(i * span / (count - 1))
                      for i in range(count)]
    else:
        rng = random.Random(config.seed)
        starts = sorted(rng.randint(region_start, region_start + span)
                        for _ in range(count))

    windows = tuple(
        MeasurementWindow(
            index=i,
            warmup_start=max(checkpoint_stop, start - config.warmup_accesses),
            start=start,
            stop=start + window,
        )
        for i, start in enumerate(starts)
    )
    order = list(range(count))
    # Independent stream from placement (which consumed config.seed).
    random.Random((config.seed << 1) ^ 0x5A17).shuffle(order)
    return WindowPlan(
        total_accesses=total_accesses,
        checkpoint_start=checkpoint_start,
        checkpoint_stop=checkpoint_stop,
        windows=windows,
        order=tuple(order),
    )


__all__ = [
    "MeasurementWindow",
    "PLACEMENTS",
    "PLACEMENT_RANDOM",
    "PLACEMENT_SYSTEMATIC",
    "SamplingConfig",
    "WindowPlan",
    "plan_windows",
]
