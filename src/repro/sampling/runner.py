"""The windowed sampler: checkpointed, confidence-terminated measurement.

One sampled run of N designs over one trace proceeds as:

1. **Plan** -- :func:`repro.sampling.windows.plan_windows` places up to
   ``max_windows`` windows over the measurement region and fixes a
   deterministic shuffled measurement order.
2. **Checkpoint** -- each design replays the functional-warming prologue
   once and freezes its warm state via the
   :class:`~repro.dramcache.base.StateSnapshot` protocol.  This is the only
   long replay; every window afterwards starts from the checkpoint.
3. **Measure** -- windows are taken in plan order.  Per window, per design:
   restore the checkpoint, replay the window's short warm-up slice, measure
   the window.  A fresh no-DRAM-cache baseline replays the *same* window, so
   per-window speedups are matched pairs.
4. **Terminate** -- after each window the
   :class:`~repro.stats.sampling.AdaptiveStopper` checks every tracked
   series (miss ratio and speedup of every design); measurement stops as
   soon as all 95% CIs meet the target relative error, or at the window
   budget.

Everything derives from ``(SamplingConfig, ExperimentConfig, trace)``; no
global state, so sampled sweeps are bit-identical between the serial and
process-parallel executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.no_cache import NoDramCache
from repro.config.system import SystemConfig
from repro.dramcache.base import DramCacheModel
from repro.obs.core import current as obs_current
from repro.sampling.seekable import FileWindows, InMemoryWindows
from repro.sampling.windows import (
    MeasurementWindow,
    SamplingConfig,
    WindowPlan,
    plan_windows,
)
from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    Workload,
)
from repro.sim.factory import make_design
from repro.sim.performance import PerformanceModel
from repro.sim.resultset import ResultSet
from repro.stats.confidence import ConfidenceInterval
from repro.stats.sampling import AdaptiveStopper, WindowSeries, matched_pair_deltas
from repro.trace.binfmt import is_binary_trace
from repro.trace.record import MemoryAccess
from repro.utils.units import format_size, parse_size, SizeLike
from repro.workloads.tracefile import TraceFileWorkload

#: Metrics whose per-window series drive adaptive termination, mapped to
#: the absolute CI half-width floor of their stopper (a speedup is O(1), so
#: its floor only matters for pathological near-zero means; a miss ratio
#: can legitimately be 0, where zero variance alone decides).
TRACKED_METRICS = {
    "miss_ratio": 0.0,
    "speedup_vs_no_cache": 1e-6,
}


@dataclass(frozen=True)
class WindowMeasurement:
    """Everything measured in one window for one design."""

    window: MeasurementWindow
    miss_ratio: float
    hit_ratio: float
    average_hit_latency: float
    average_miss_latency: float
    average_access_latency: float
    offchip_blocks_per_access: float
    offchip_demand_blocks: int
    offchip_prefetch_blocks: int
    offchip_writeback_blocks: int
    offchip_row_activations: int
    stacked_row_activations: int
    speedup_vs_no_cache: float
    user_ipc: float
    extra_metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class SampledDesignResult:
    """One design's windows, series, and aggregate result."""

    design: str
    windows: List[WindowMeasurement] = field(default_factory=list)
    series: Dict[str, WindowSeries] = field(default_factory=dict)

    @property
    def windows_measured(self) -> int:
        return len(self.windows)

    def interval(self, metric: str = "miss_ratio") -> ConfidenceInterval:
        """95% CI of one tracked metric over the measured windows."""
        return self.series[metric].interval()


@dataclass
class SampledRun:
    """The full outcome of one sampled measurement (all designs)."""

    plan: WindowPlan
    sampling: SamplingConfig
    workload: str
    capacity: str
    scale: int
    designs: "Dict[str, SampledDesignResult]"
    #: Window indices measured, in measurement order.
    measured: List[int]
    #: True when every tracked CI met its target (sampling may also have
    #: spent the whole window budget and *still* converged on the last
    #: window, so this is the stopper's verdict, not a count comparison).
    converged: bool

    @property
    def windows_measured(self) -> int:
        return len(self.measured)

    @property
    def simulated_accesses(self) -> int:
        """Accesses one design simulated (checkpoint + warm-ups + windows)."""
        return self.plan.simulated_accesses(self.windows_measured)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the trace one design simulated."""
        return self.plan.sampled_fraction(self.windows_measured)

    def delta(self, metric: str, design_a: str,
              design_b: str) -> WindowSeries:
        """Matched-pair per-window ``design_a - design_b`` differences."""
        return matched_pair_deltas(
            self.designs[design_a].series[metric],
            self.designs[design_b].series[metric],
            name=f"{metric}[{design_a}-{design_b}]",
        )

    def results(self) -> List[ExperimentResult]:
        """Aggregate one :class:`ExperimentResult` per design."""
        return [self._aggregate(label, sampled)
                for label, sampled in self.designs.items()]

    def to_resultset(self) -> ResultSet:
        return ResultSet(self.results())

    # ------------------------------------------------------------------ #
    def _aggregate(self, label: str,
                   sampled: SampledDesignResult) -> ExperimentResult:
        windows = sampled.windows
        n = len(windows)
        if n == 0:
            raise ValueError(f"design {label!r} measured no windows")

        def mean(metric: str) -> float:
            return sum(getattr(w, metric) for w in windows) / n

        def total(metric: str) -> int:
            return sum(getattr(w, metric) for w in windows)

        miss_interval = sampled.interval("miss_ratio")
        speedup_interval = sampled.interval("speedup_vs_no_cache")
        result = ExperimentResult(
            design=label,
            workload=self.workload,
            capacity=self.capacity,
            scale=self.scale,
            accesses_measured=sum(w.window.measure_accesses for w in windows),
            miss_ratio=miss_interval.mean,
            hit_ratio=mean("hit_ratio"),
            average_hit_latency=mean("average_hit_latency"),
            average_miss_latency=mean("average_miss_latency"),
            average_access_latency=mean("average_access_latency"),
            offchip_blocks_per_access=mean("offchip_blocks_per_access"),
            offchip_demand_blocks=total("offchip_demand_blocks"),
            offchip_prefetch_blocks=total("offchip_prefetch_blocks"),
            offchip_writeback_blocks=total("offchip_writeback_blocks"),
            offchip_row_activations=total("offchip_row_activations"),
            stacked_row_activations=total("stacked_row_activations"),
            speedup_vs_no_cache=speedup_interval.mean,
            user_ipc=mean("user_ipc"),
        )
        extra_keys = sorted({k for w in windows for k in w.extra_metrics})
        for key in extra_keys:
            value = sum(w.extra_metrics.get(key, 0.0) for w in windows) / n
            if key in ExperimentResult.METRIC_FIELDS:
                setattr(result, key, value)
            else:
                result.extra[key] = value
        result.extra.update({
            "sampling_windows": float(n),
            "sampling_windows_planned": float(len(self.plan.windows)),
            "sampling_fraction": self.sampled_fraction,
            "sampling_miss_ratio_half_width": miss_interval.half_width,
            "sampling_miss_ratio_rel_err": miss_interval.relative_error,
            "sampling_speedup_half_width": speedup_interval.half_width,
            "sampling_speedup_rel_err": speedup_interval.relative_error,
        })
        return result


class WindowedSampler:
    """Runs checkpointed, window-scheduled, adaptively-terminated trials.

    ``use_checkpoints`` controls the on-disk warm-state store
    (:mod:`repro.sampling.checkpoints`): ``None`` (default) enables it
    whenever the trace store is enabled, ``False`` forces prologue replay,
    ``True`` requires the configured store.  Checkpoints are keyed on the
    trace identity, the design's registry token (its component spec), the
    build parameters, and the prologue extent -- a hit skips the one long
    replay entirely, bit-identically.
    """

    def __init__(self, sampling: Optional[SamplingConfig] = None,
                 config: Optional[ExperimentConfig] = None,
                 system: Optional[SystemConfig] = None,
                 use_checkpoints: Optional[bool] = None) -> None:
        self.sampling = sampling or SamplingConfig()
        self.config = config or ExperimentConfig()
        self.system = system or SystemConfig()
        self.performance = PerformanceModel(self.system)
        self.use_checkpoints = use_checkpoints

    def _checkpoint_store(self):
        from repro.sampling.checkpoints import CheckpointStore

        if self.use_checkpoints is False:
            return None
        store = CheckpointStore.default()
        if store is None and self.use_checkpoints is True:
            raise ValueError(
                "on-disk checkpoints requested but the checkpoint store is "
                "disabled (REPRO_TRACE_STORE / REPRO_CHECKPOINTS)"
            )
        return store

    # ------------------------------------------------------------------ #
    def _provider(self, workload: Workload,
                  trace: Optional[Sequence[MemoryAccess]]):
        """The window source for a workload (seekable file when possible)."""
        if trace is not None:
            return InMemoryWindows(trace)
        if (isinstance(workload, TraceFileWorkload)
                and is_binary_trace(workload.path)):
            # The payoff case: windows open in O(window) straight from disk,
            # so the trace is never fully decoded, let alone materialized.
            return FileWindows(workload.path, limit=self.config.num_accesses)
        runner = ExperimentRunner(self.config, system=self.system)
        return InMemoryWindows(runner.build_trace(workload))

    def _read_warm(self, provider, start: int, stop: int):
        """Read a warm-stream slice, packed for the batch engine if it may run.

        When batch warming is enabled and numpy is present, a provider with
        a bulk ``read_array`` yields a structured record array (one
        ``np.frombuffer`` per window instead of per-record decode); in every
        other case this is a plain :meth:`read`.  Either return type feeds
        :meth:`~repro.dramcache.base.DramCacheModel.warm_up_array`, whose
        post-warming state is bit-identical across engines.
        """
        from repro.engine import batch_enabled, numpy_available

        if batch_enabled() and numpy_available():
            read_array = getattr(provider, "read_array", None)
            if read_array is not None:
                return read_array(start, stop)
        return provider.read(start, stop)

    def _measure_window(self, design: DramCacheModel,
                        window: MeasurementWindow,
                        warmup: Sequence[MemoryAccess],
                        measure: Sequence[MemoryAccess],
                        baseline_stats, profile,
                        span=None) -> WindowMeasurement:
        if len(warmup):
            engine = design.warm_up_array(warmup)
            if span is not None:
                span.add("engine_" + engine, 1)
                if engine == "batch":
                    span.add("batch_accesses", len(warmup))
        else:
            design.reset_stats()
        activations_before = (design.memory.row_activations,
                              design.stacked.row_activations)
        design.run(measure)
        stats = design.cache_stats
        speedup = self.performance.speedup(stats, baseline_stats, profile)
        estimate = self.performance.estimate(stats, profile)
        return WindowMeasurement(
            window=window,
            miss_ratio=stats.miss_ratio,
            hit_ratio=stats.hit_ratio,
            average_hit_latency=stats.average_hit_latency,
            average_miss_latency=stats.average_miss_latency,
            average_access_latency=stats.average_access_latency,
            offchip_blocks_per_access=stats.offchip_blocks_per_access,
            offchip_demand_blocks=stats.offchip_demand_blocks,
            offchip_prefetch_blocks=stats.offchip_prefetch_blocks,
            offchip_writeback_blocks=stats.offchip_writeback_blocks,
            offchip_row_activations=(design.memory.row_activations
                                     - activations_before[0]),
            stacked_row_activations=(design.stacked.row_activations
                                     - activations_before[1]),
            speedup_vs_no_cache=speedup,
            user_ipc=estimate.user_ipc,
            extra_metrics=dict(design.extra_metrics()),
        )

    # ------------------------------------------------------------------ #
    def compare(self, design_names: Sequence[str], workload: Workload,
                capacity: SizeLike,
                trace: Optional[Sequence[MemoryAccess]] = None,
                associativity: Optional[int] = None,
                labels: Optional[Sequence[str]] = None,
                trace_identity: Optional[str] = None) -> SampledRun:
        """Sample every design over the *same* windows (matched pairs).

        ``trace`` injects a pre-materialized access sequence (the sweep
        executor's cached traces); otherwise the workload decides -- binary
        trace files are windowed seekably, synthetic profiles are generated.
        ``trace_identity`` names the injected sequence for checkpoint
        keying when the caller knows its authoritative identity (the
        executor passes the generator-versioned trace token); without it an
        injected sequence is identified by a full content hash.
        """
        if not design_names:
            raise ValueError("need at least one design to sample")
        from repro.sim.registry import DESIGNS

        for name in design_names:
            DESIGNS.resolve(name)  # fail on typos before any trace work
        labels = list(labels) if labels is not None else list(design_names)
        if len(labels) != len(design_names):
            raise ValueError("labels must match design_names one-to-one")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate sampled design labels: {labels}")

        with obs_current().span("trace_load"):
            provider = self._provider(workload, trace)
        try:
            return self._compare(provider, design_names, labels, workload,
                                 capacity, associativity, trace,
                                 trace_identity)
        finally:
            provider.close()

    def _stream_token(self, workload, trace, trace_identity, store) -> str:
        """The checkpoint-keying identity of the measured access stream."""
        from repro.sampling.checkpoints import sequence_token, trace_token

        if store is None:
            return ""
        if trace is not None:
            # An injected sequence need not be the canonical trace of the
            # (workload, config) pair: key on the caller's authoritative
            # identity, or failing that on the full sequence content.
            return (trace_identity if trace_identity is not None
                    else sequence_token(trace))
        return trace_token(workload, self.config)

    def _stoppers(self, plan: WindowPlan) -> Dict[str, AdaptiveStopper]:
        """One adaptive stopper per tracked metric, sized to the plan."""
        return {
            metric: AdaptiveStopper(
                target_relative_error=self.sampling.target_relative_error,
                min_windows=min(self.sampling.min_windows, len(plan.windows)),
                max_windows=len(plan.windows),
                absolute_floor=floor,
            )
            for metric, floor in TRACKED_METRICS.items()
        }

    @staticmethod
    def _trace_convergence(obs_run, window_index, measured, designs) -> None:
        """Emit one manifest event per measured window (enabled path only).

        Records the worst relative CI error across designs for every
        tracked metric -- the stopper-convergence trace that lets
        ``repro runs show`` explain *why* a sampled trial stopped where it
        did (or spent its whole window budget).
        """
        fields = {}
        for metric in TRACKED_METRICS:
            worst = 0.0
            for _, _, _, series in designs:
                try:
                    error = series[metric].interval().relative_error
                except (ValueError, ZeroDivisionError):
                    continue
                if error != error:  # NaN (undefined near-zero mean)
                    continue
                worst = max(worst, error)
            fields[f"rel_err_{metric}"] = round(worst, 6)
        obs_run.event("window", index=window_index, measured=len(measured),
                      **fields)

    def _checkpoint_designs(self, provider, design_names, labels, capacity,
                            associativity, plan, store, stream_token,
                            span=None):
        """Build every design warm: restore its checkpoint or replay once.

        Returns ``[(label, design, checkpoint, series)]`` -- the shared
        setup of live measurement (:meth:`_compare`) and distributed
        window-batch jobs (:meth:`measure_windows`), so both start every
        window from bit-identical warm state.  ``span`` (the enclosing
        warmup span) is tagged with which warming engine ran per design.
        """
        from repro.sampling.checkpoints import design_token

        prologue = None

        designs = []
        for name, label in zip(design_names, labels):
            design = make_design(
                name, capacity, scale=self.config.scale,
                num_cores=self.config.num_cores, associativity=associativity,
            )
            checkpoint = None
            key = None
            if store is not None:
                key = store.key(
                    trace=stream_token,
                    design=design_token(name),
                    capacity=format_size(parse_size(capacity)),
                    scale=self.config.scale,
                    num_cores=self.config.num_cores,
                    associativity=associativity,
                    checkpoint_start=plan.checkpoint_start,
                    checkpoint_stop=plan.checkpoint_stop,
                )
                checkpoint = store.load(key)
                if checkpoint is not None:
                    try:
                        design.restore_state(checkpoint)
                    except ValueError:
                        # Stale shape (e.g. a design redefined in-process
                        # under the same token): fall back to warming.
                        checkpoint = None
            if checkpoint is None:
                # The one long replay: functional warming up to the
                # measurement region, frozen once, restored before every
                # window -- and persisted so later processes skip it too.
                if prologue is None:
                    prologue = self._read_warm(provider,
                                               plan.checkpoint_start,
                                               plan.checkpoint_stop)
                engine = design.warm_up_array(prologue)
                if span is not None:
                    span.add("engine_" + engine, 1)
                    if engine == "batch":
                        span.add("batch_accesses", len(prologue))
                checkpoint = design.snapshot_state()
                if store is not None and key is not None:
                    store.save(key, checkpoint)
            series = {metric: WindowSeries(f"{metric}[{label}]")
                      for metric in TRACKED_METRICS}
            designs.append((label, design, checkpoint, series))
        return designs

    def _compare(self, provider, design_names, labels, workload, capacity,
                 associativity, trace=None,
                 trace_identity=None) -> SampledRun:
        obs_run = obs_current()
        plan = plan_windows(provider.total, self.config.warmup_fraction,
                            self.sampling)
        store = self._checkpoint_store()
        stream_token = self._stream_token(workload, trace, trace_identity,
                                          store)
        # The checkpoint prologue is the sampled path's functional warming:
        # it shows up in the ledger under the same "warmup" phase a full
        # replay's warm-up does.
        with obs_run.span("warmup") as warm_span:
            designs = self._checkpoint_designs(provider, design_names,
                                               labels, capacity,
                                               associativity, plan, store,
                                               stream_token, span=warm_span)
        stoppers = self._stoppers(plan)

        def all_converged() -> bool:
            return all(
                stoppers[metric].converged(series[metric])
                for _, _, _, series in designs
                for metric in TRACKED_METRICS
            )

        results = {label: SampledDesignResult(design=label, series=series)
                   for label, _, _, series in designs}
        measured: List[int] = []
        with obs_run.span("measure") as measure_span:
            for window_index in plan.order:
                window = plan.windows[window_index]
                warmup = self._read_warm(provider, window.warmup_start,
                                         window.start)
                measure = provider.read(window.start, window.stop)

                # Matched-pair baseline: the same window through a
                # no-DRAM-cache system (cheap, and stateless beyond DRAM
                # timing -- a fresh model per window keeps windows
                # independent).
                baseline = NoDramCache()
                baseline.run(measure)
                baseline_stats = baseline.cache_stats

                for label, design, checkpoint, series in designs:
                    design.restore_state(checkpoint)
                    outcome = self._measure_window(
                        design, window, warmup, measure, baseline_stats,
                        workload, span=measure_span,
                    )
                    results[label].windows.append(outcome)
                    for metric in TRACKED_METRICS:
                        series[metric].add(window_index,
                                           getattr(outcome, metric))
                measured.append(window_index)
                measure_span.add("windows", 1)
                if obs_run.enabled:
                    obs_run.counter("accesses",
                                    len(measure) * len(designs))
                    obs_run.counter("warmup_accesses",
                                    len(warmup) * len(designs))
                    self._trace_convergence(obs_run, window_index, measured,
                                            designs)

                if all(stopper.should_stop([s[metric]
                                            for _, _, _, s in designs])
                       for metric, stopper in stoppers.items()):
                    break

        return SampledRun(
            plan=plan,
            sampling=self.sampling,
            workload=workload.name,
            capacity=format_size(parse_size(capacity)),
            scale=self.config.scale,
            designs=results,
            measured=measured,
            converged=all_converged(),
        )

    def measure_windows(self, design_name: str, workload: Workload,
                        capacity: SizeLike,
                        window_indices: Sequence[int],
                        trace: Optional[Sequence[MemoryAccess]] = None,
                        associativity: Optional[int] = None,
                        label: Optional[str] = None,
                        trace_identity: Optional[str] = None,
                        ) -> Dict[int, WindowMeasurement]:
        """Measure an explicit subset of the planned windows for one design.

        This is the distributed-execution primitive: the work queue splits a
        sampled trial's window plan into independent batches, and each batch
        job calls this with its indices.  Every window starts from the same
        warm checkpoint (loaded from the on-disk store, or rebuilt by one
        prologue replay) and uses a fresh matched-pair baseline, so a window
        measured here is bit-identical to the same window measured by the
        serial :meth:`compare` loop -- regardless of which process, batch,
        or ordering produced it.
        """
        from repro.sim.registry import DESIGNS

        DESIGNS.resolve(design_name)
        obs_run = obs_current()
        with obs_run.span("trace_load"):
            provider = self._provider(workload, trace)
        try:
            plan = plan_windows(provider.total, self.config.warmup_fraction,
                                self.sampling)
            store = self._checkpoint_store()
            stream_token = self._stream_token(workload, trace, trace_identity,
                                              store)
            with obs_run.span("warmup") as warm_span:
                designs = self._checkpoint_designs(
                    provider, [design_name], [label or design_name],
                    capacity, associativity, plan, store, stream_token,
                    span=warm_span,
                )
            _, design, checkpoint, _ = designs[0]
            measurements: Dict[int, WindowMeasurement] = {}
            with obs_run.span("measure") as measure_span:
                for index in window_indices:
                    if not 0 <= index < len(plan.windows):
                        raise ValueError(
                            f"window index {index} outside the plan "
                            f"({len(plan.windows)} windows); was the trace "
                            f"modified after the sweep was planned?"
                        )
                    window = plan.windows[index]
                    warmup = self._read_warm(provider, window.warmup_start,
                                             window.start)
                    measure = provider.read(window.start, window.stop)
                    baseline = NoDramCache()
                    baseline.run(measure)
                    design.restore_state(checkpoint)
                    measurements[index] = self._measure_window(
                        design, window, warmup, measure,
                        baseline.cache_stats, workload, span=measure_span,
                    )
                    measure_span.add("windows", 1)
                    if obs_run.enabled:
                        obs_run.counter("accesses", len(measure))
                        obs_run.counter("warmup_accesses", len(warmup))
            return measurements
        finally:
            provider.close()

    def assemble_run(self, label: str,
                     measurements: "Dict[int, WindowMeasurement]",
                     workload_name: str, capacity: SizeLike,
                     plan: WindowPlan) -> SampledRun:
        """Reconstruct a :class:`SampledRun` from pre-measured windows.

        Walks the plan's measurement order feeding the same adaptive
        stoppers the live loop uses, so it terminates at exactly the window
        the serial run would have stopped at -- measurements past that point
        (speculative windows a distributed execution measured eagerly) are
        discarded, and the aggregate result is bit-identical to the serial
        path's.
        """
        series = {metric: WindowSeries(f"{metric}[{label}]")
                  for metric in TRACKED_METRICS}
        stoppers = self._stoppers(plan)
        sampled = SampledDesignResult(design=label, series=series)
        measured: List[int] = []
        for window_index in plan.order:
            outcome = measurements.get(window_index)
            if outcome is None:
                raise ValueError(
                    f"window {window_index} has no measurement; the sweep's "
                    f"window-batch jobs are incomplete"
                )
            sampled.windows.append(outcome)
            for metric in TRACKED_METRICS:
                series[metric].add(window_index, getattr(outcome, metric))
            measured.append(window_index)
            if all(stopper.should_stop([series[metric]])
                   for metric, stopper in stoppers.items()):
                break
        converged = all(stoppers[metric].converged(series[metric])
                        for metric in TRACKED_METRICS)
        return SampledRun(
            plan=plan,
            sampling=self.sampling,
            workload=workload_name,
            capacity=format_size(parse_size(capacity)),
            scale=self.config.scale,
            designs={label: sampled},
            measured=measured,
            converged=converged,
        )

    def run_design(self, design_name: str, workload: Workload,
                   capacity: SizeLike,
                   trace: Optional[Sequence[MemoryAccess]] = None,
                   associativity: Optional[int] = None,
                   label: Optional[str] = None,
                   trace_identity: Optional[str] = None) -> ExperimentResult:
        """Sample one design and aggregate into an :class:`ExperimentResult`.

        The sampled counterpart of
        :meth:`repro.sim.experiment.ExperimentRunner.run_design`, and the
        entry point the sweep executor uses for trials with a ``sampling=``
        axis.
        """
        run = self.compare(
            [design_name], workload, capacity, trace=trace,
            associativity=associativity,
            labels=[label] if label is not None else None,
            trace_identity=trace_identity,
        )
        with obs_current().span("assemble"):
            return run.results()[0]


__all__ = [
    "SampledDesignResult",
    "SampledRun",
    "TRACKED_METRICS",
    "WindowMeasurement",
    "WindowedSampler",
]
