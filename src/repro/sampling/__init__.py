"""Checkpointed sampled simulation (SimFlex-style measurement windows).

The paper reports performance "with an average error of less than 2% at a
95% confidence level" using the SimFlex multiprocessor sampling methodology:
many short measurement windows spread over each trace, each preceded by
warm-up, aggregated with confidence intervals.  This package is that
methodology for the reproduction's trace-driven models:

* :mod:`repro.sampling.seekable` -- O(window) access into binary traces: an
  ``mmap``-backed reader for uncompressed ``.rptr`` files and a chunk-index
  reader for compressed ones, so a window deep in a multi-gigabyte trace
  opens without decoding the prefix.
* :mod:`repro.sampling.windows` -- window placement (systematic or
  seeded-random) and the :class:`~repro.sampling.windows.SamplingConfig`
  describing a sampled measurement.
* :mod:`repro.sampling.runner` -- the
  :class:`~repro.sampling.runner.WindowedSampler`: builds one warm
  checkpoint per design (via the
  :class:`~repro.dramcache.base.StateSnapshot` protocol), replays a short
  functional-warming prologue before each window, and keeps measuring
  windows until the confidence interval converges or the window budget is
  exhausted.
* :mod:`repro.sampling.checkpoints` -- the on-disk
  :class:`~repro.sampling.checkpoints.CheckpointStore`: warm checkpoints
  pickled next to the trace store so the prologue replay survives across
  processes and sessions, invalidated whenever the design's component spec
  (its registry token) changes.

Sampled runs plug into the declarative experiment API: set ``sampling=`` on
a :class:`~repro.sim.spec.SweepSpec` (or per-trial override) and the sweep
executor runs every cell sampled; ``repro sample`` is the CLI entry point.
"""

from repro.sampling.checkpoints import CheckpointStore
from repro.sampling.seekable import (
    FileWindows,
    InMemoryWindows,
    MmapTraceReader,
    IndexedWindowReader,
    open_window_reader,
)
from repro.sampling.windows import (
    MeasurementWindow,
    SamplingConfig,
    WindowPlan,
    plan_windows,
)
from repro.sampling.runner import (
    SampledDesignResult,
    SampledRun,
    WindowMeasurement,
    WindowedSampler,
)

__all__ = [
    "CheckpointStore",
    "FileWindows",
    "InMemoryWindows",
    "IndexedWindowReader",
    "MeasurementWindow",
    "MmapTraceReader",
    "SampledDesignResult",
    "SampledRun",
    "SamplingConfig",
    "WindowMeasurement",
    "WindowPlan",
    "WindowedSampler",
    "open_window_reader",
    "plan_windows",
]
