"""Seekable access into binary traces: open a window without the prefix.

Replaying a measurement window that starts a hundred million records into a
trace must not cost a hundred million record constructions.  Two readers
provide O(window) access:

* :class:`MmapTraceReader` -- for **uncompressed** ``.rptr`` files.  Records
  are fixed-size, so a window is a pure arithmetic slice of the memory map;
  opening a window neither reads nor decodes the prefix, and the page cache
  shares the mapping across readers and processes.
* :class:`IndexedWindowReader` -- for **compressed** payloads.  Each
  streaming chunk is an independent codec member (gzip member / zstd frame),
  and the :class:`~repro.trace.binfmt.ChunkIndex` sidecar maps record
  indices to member offsets, so only the members covering the window are
  decompressed.  Legacy single-member files (written before the sidecar
  existed) degrade gracefully to one seek point at the payload start.

:func:`open_window_reader` picks the right reader from the header.  The
window *providers* at the bottom (:class:`InMemoryWindows`,
:class:`FileWindows`) are the uniform source interface the
:class:`~repro.sampling.runner.WindowedSampler` consumes: ``total`` accesses
plus ``read(start, stop)``.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.trace.binfmt import (
    CODEC_NONE,
    HEADER,
    RECORD,
    BinaryTraceReader,
    ChunkIndex,
    _decode_records,
    decompress_members,
    is_binary_trace,
    read_header,
)
from repro.trace.errors import TraceFormatError
from repro.trace.record import MemoryAccess

PathLike = Union[str, Path]


def _clip_window(start: int, stop: int, count: int) -> "tuple[int, int]":
    if start < 0 or stop < start:
        raise ValueError("need 0 <= start <= stop")
    return min(start, count), min(stop, count)


class MmapTraceReader(BinaryTraceReader):
    """``mmap``-backed reader for uncompressed binary traces.

    A :class:`~repro.trace.binfmt.BinaryTraceReader` variant whose
    :meth:`read_window` is an arithmetic slice of the mapping -- opening a
    window is O(1) in the window's offset, and decoding is O(window).  The
    mapping is opened lazily and shared by every window read; use as a
    context manager (or call :meth:`close`) to release it deterministically.
    """

    def __init__(self, path: PathLike) -> None:
        super().__init__(path)
        info = read_header(path)
        if info.codec != CODEC_NONE:
            raise TraceFormatError(
                f"MmapTraceReader requires an uncompressed trace "
                f"(payload codec is {info.codec!r}); use IndexedWindowReader "
                f"or open_window_reader instead", path=path,
            )
        payload_bytes = info.file_bytes - HEADER.size
        if payload_bytes % RECORD.size:
            raise TraceFormatError(
                f"truncated binary trace: {payload_bytes % RECORD.size} "
                f"trailing bytes do not form a whole {RECORD.size}-byte "
                f"record", path=path,
            )
        # A non-finalized stream has a sentinel count; trust the file size.
        self._count = (info.access_count if info.access_count is not None
                       else payload_bytes // RECORD.size)
        self._file = None
        self._mmap: Optional[mmap.mmap] = None

    @property
    def access_count(self) -> int:
        """Number of records in the trace."""
        return self._count

    def _map(self) -> mmap.mmap:
        if self._mmap is None:
            self._file = self._path.open("rb")
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        return self._mmap

    def read_window(self, start: int, stop: int) -> List[MemoryAccess]:
        """Records ``[start, stop)`` (clipped to the trace), O(window)."""
        start, stop = _clip_window(start, stop, self._count)
        if start >= stop:
            return []
        view = memoryview(self._map())
        lo = HEADER.size + start * RECORD.size
        hi = HEADER.size + stop * RECORD.size
        try:
            return _decode_records(view[lo:hi])
        finally:
            view.release()

    def read_array(self, start: int, stop: int):
        """Records ``[start, stop)`` as a numpy structured array.

        One ``np.frombuffer`` over the packed slice -- no per-record
        decode at all.  Raises a ``RuntimeError`` naming the batch-warming
        controls when numpy is unavailable (see
        :func:`repro.engine.trace_array.require_numpy`).
        """
        from repro.engine.trace_array import decode_array

        start, stop = _clip_window(start, stop, self._count)
        view = memoryview(self._map())
        lo = HEADER.size + start * RECORD.size
        hi = HEADER.size + stop * RECORD.size
        try:
            # Copy the slice out of the mapping so the array never pins the
            # mmap open (windows are small relative to the trace).
            return decode_array(bytes(view[lo:hi]))
        finally:
            view.release()

    def read_all(self) -> List[MemoryAccess]:
        return self.read_window(0, self._count)

    def close(self) -> None:
        """Release the mapping (window reads reopen it on demand)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MmapTraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class IndexedWindowReader:
    """Window reads into a compressed trace via its chunk index.

    Only the codec members covering ``[start, stop)`` are read and
    decompressed, so the cost of a window scales with the window (plus at
    most one chunk of slack on each side), not with its offset.  Files that
    predate per-chunk members have a single seek point; their windows
    decompress from the payload start but still stop at the window's end.
    """

    def __init__(self, path: PathLike,
                 index: Optional[ChunkIndex] = None) -> None:
        self._path = Path(path)
        self._info = read_header(path)
        if self._info.access_count is None:
            raise TraceFormatError(
                "cannot window a non-finalized trace (unknown access count)",
                path=path,
            )
        self._index = index if index is not None else ChunkIndex.ensure(path)
        self._count = self._info.access_count
        self._file = None

    @property
    def access_count(self) -> int:
        """Number of records in the trace."""
        return self._count

    @property
    def index(self) -> ChunkIndex:
        return self._index

    def _read_span(self, start: int, stop: int) -> bytes:
        """Decompressed payload of the chunks covering ``[start, stop)``."""
        first = self._index.chunk_containing(start)
        last = self._index.chunk_containing(stop - 1)
        lo = self._index.offsets[first]
        hi = (self._index.offsets[last + 1]
              if last + 1 < len(self._index) else self._info.file_bytes)
        if self._file is None:
            self._file = self._path.open("rb")
        self._file.seek(lo)
        return decompress_members(self._file.read(hi - lo), self._info.codec,
                                  self._path)

    def read_window(self, start: int, stop: int) -> List[MemoryAccess]:
        """Records ``[start, stop)``, decompressing only covering chunks."""
        start, stop = _clip_window(start, stop, self._count)
        if start >= stop:
            return []
        blob = self._read_span(start, stop)
        base = self._index.starts[self._index.chunk_containing(start)]
        return _decode_records(
            blob[(start - base) * RECORD.size:(stop - base) * RECORD.size]
        )

    def read_array(self, start: int, stop: int):
        """Records ``[start, stop)`` as a numpy structured array.

        Decompresses only the covering chunks (like :meth:`read_window`)
        and bulk-decodes them with one ``np.frombuffer``.
        """
        from repro.engine.trace_array import decode_array

        start, stop = _clip_window(start, stop, self._count)
        if start >= stop:
            return decode_array(b"")
        blob = self._read_span(start, stop)
        base = self._index.starts[self._index.chunk_containing(start)]
        return decode_array(
            blob[(start - base) * RECORD.size:(stop - base) * RECORD.size]
        )

    def read_all(self) -> List[MemoryAccess]:
        return self.read_window(0, self._count)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "IndexedWindowReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_window_reader(path: PathLike):
    """The cheapest window-capable reader for a binary trace file.

    Uncompressed traces get the :class:`MmapTraceReader`; compressed ones
    the :class:`IndexedWindowReader` (reconstructing and saving the chunk
    index on first use if the sidecar is missing).
    """
    info = read_header(path)
    if info.codec == CODEC_NONE:
        return MmapTraceReader(path)
    return IndexedWindowReader(path)


# --------------------------------------------------------------------- #
# Window providers: the sampler's uniform trace-source interface.
# --------------------------------------------------------------------- #
class InMemoryWindows:
    """Windows over an already-materialized access sequence."""

    def __init__(self, trace: Sequence[MemoryAccess]) -> None:
        self._trace = trace

    @property
    def total(self) -> int:
        return len(self._trace)

    def read(self, start: int, stop: int) -> Sequence[MemoryAccess]:
        start, stop = _clip_window(start, stop, len(self._trace))
        return self._trace[start:stop]

    def read_array(self, start: int, stop: int):
        """The window as a numpy structured array (packed and bulk-typed)."""
        from repro.engine.trace_array import records_to_array

        start, stop = _clip_window(start, stop, len(self._trace))
        return records_to_array(self._trace[start:stop])

    def close(self) -> None:
        pass


class FileWindows:
    """Windows over an on-disk binary trace, opened seekably.

    ``limit`` caps the visible trace length (mirroring
    ``ExperimentConfig.num_accesses`` truncation of full replays) without
    reading past it.
    """

    def __init__(self, path: PathLike, limit: Optional[int] = None) -> None:
        if not is_binary_trace(path):
            raise TraceFormatError(
                "FileWindows requires a binary trace (convert with "
                "'repro trace convert' first)", path=path,
            )
        self._reader = open_window_reader(path)
        count = self._reader.access_count
        self._total = count if limit is None else min(count, limit)

    @property
    def total(self) -> int:
        return self._total

    def read(self, start: int, stop: int) -> Sequence[MemoryAccess]:
        start, stop = _clip_window(start, stop, self._total)
        return self._reader.read_window(start, stop)

    def read_array(self, start: int, stop: int):
        """The window as a numpy structured array, bulk-decoded on read."""
        start, stop = _clip_window(start, stop, self._total)
        return self._reader.read_array(start, stop)

    def close(self) -> None:
        self._reader.close()


__all__ = [
    "FileWindows",
    "IndexedWindowReader",
    "InMemoryWindows",
    "MmapTraceReader",
    "open_window_reader",
]
