"""On-disk warm-state checkpoints for sampled measurement.

The windowed sampler's one long replay is the functional-warming prologue
that produces each design's warm :class:`~repro.dramcache.base.StateSnapshot`
checkpoint.  Within one process that checkpoint already seeds every
measurement window; this module makes it survive *across* processes and
sessions by pickling it next to the trace-store entry it was warmed on.

Keying and invalidation
-----------------------

A checkpoint is valid only for the exact (trace, design, prologue) it was
produced by, so the file name is a SHA-256 over:

* the **trace identity** -- for synthetic workloads the same profile/config
  fields (plus generator version) that key the trace store; for trace files
  the resolved path, size, and mtime;
* the **design identity** -- the registry entry's stable token.  For
  spec-registered designs that is the canonical
  :meth:`repro.dramcache.spec.DesignSpec.token`, so *changing any component
  or parameter of a design invalidates its stale checkpoints*; for plain
  builder registrations it is the builder's qualified name;
* the **build parameters** (capacity, scale, cores, associativity) and the
  **prologue extent** (checkpoint access range);
* two versions: the snapshot-layout format version here, and
  :data:`repro.dramcache.base.MODEL_BEHAVIOR_VERSION` -- bumped whenever
  model *implementation* changes what a design computes, since the
  composition token cannot see code edits inside unchanged components.

Storage lives under ``<trace store root>/checkpoints`` by default, so the
same ``REPRO_TRACE_STORE`` switch that relocates or disables trace caching
governs checkpoints too; ``REPRO_CHECKPOINTS=0`` disables checkpoints alone.
Corrupt, unreadable, or version-mismatched files are treated as misses --
the sampler silently falls back to replaying the prologue.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.dramcache.base import StateSnapshot
from repro.obs.core import current as obs_current
from repro.trace.store import configured_root
from repro.workloads.profile import WorkloadProfile
from repro.workloads.tracefile import TraceFileWorkload

#: Bumped whenever the pickled snapshot layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Environment switch: ``0``/``off``/``false`` disables the checkpoint store.
ENV_CHECKPOINTS = "REPRO_CHECKPOINTS"


def checkpoints_enabled() -> bool:
    """Whether on-disk checkpoints are enabled for this process."""
    value = os.environ.get(ENV_CHECKPOINTS, "").strip().lower()
    if value in ("0", "off", "false", "no"):
        return False
    return configured_root() is not None


def default_root() -> Optional[Path]:
    """The default checkpoint directory (inside the trace store), or None."""
    if not checkpoints_enabled():
        return None
    root = configured_root()
    return None if root is None else root / "checkpoints"


def trace_token(workload, config) -> str:
    """Stable identity of the access stream a checkpoint was warmed on.

    Synthetic workloads reuse the trace store's canonical
    :func:`repro.trace.store.trace_key_string` verbatim, so the checkpoint
    key and the trace-store key can never drift apart: anything that
    regenerates a trace (a new generator version, a new identity field)
    invalidates the warm states built on the old one.
    """
    if isinstance(workload, WorkloadProfile):
        from repro.trace.store import trace_key_string

        return "synthetic:" + trace_key_string(
            workload, config.scale, config.num_cores, config.seed,
            config.num_accesses,
        )
    if isinstance(workload, TraceFileWorkload):
        path = Path(workload.path).resolve()
        try:
            stat = path.stat()
            stamp = f"{stat.st_size}:{stat.st_mtime_ns}"
        except OSError:
            stamp = "missing"
        return (f"file:{path};{stamp};accesses={config.num_accesses}")
    return f"opaque:{workload!r};accesses={config.num_accesses}"


def sequence_token(trace) -> str:
    """Identity of an explicitly injected, pre-materialized access sequence.

    ``WindowedSampler.compare(..., trace=...)`` measures whatever sequence
    the caller hands it, which need not be the canonical trace of the
    (workload, config) pair -- so checkpoints for injected traces key on a
    digest over the *full* sequence content.  Any single-record difference
    changes the token; callers that know a cheaper authoritative identity
    (the sweep executor injecting the canonical cached trace) pass it as
    ``trace_identity`` instead and skip the hash.
    """
    digest = hashlib.sha256()
    for access in trace:
        digest.update(repr(tuple(access)).encode("utf-8"))
    return f"sequence:n={len(trace)};sha256={digest.hexdigest()}"


def design_token(design_name: str) -> str:
    """The registry entry's stable identity for ``design_name``.

    Spec-registered designs hash their full component declaration, so any
    edit to the design's composition invalidates existing checkpoints.
    """
    from repro.sim.registry import DESIGNS

    return DESIGNS.resolve(design_name).token()


class CheckpointStore:
    """Pickled :class:`StateSnapshot` files next to the trace store."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls) -> Optional["CheckpointStore"]:
        """The store at the configured location, or ``None`` if disabled."""
        root = default_root()
        return None if root is None else cls(root)

    # ------------------------------------------------------------------ #
    def key(self, *, trace: str, design: str, capacity: str, scale: int,
            num_cores: int, associativity: Optional[int],
            checkpoint_start: int, checkpoint_stop: int) -> str:
        """Content-addressed file key for one warm checkpoint."""
        from repro.dramcache.base import MODEL_BEHAVIOR_VERSION

        payload = "|".join([
            f"v{CHECKPOINT_FORMAT_VERSION}",
            f"model=v{MODEL_BEHAVIOR_VERSION}",
            trace,
            design,
            f"capacity={capacity}",
            f"scale={scale}",
            f"cores={num_cores}",
            f"assoc={associativity}",
            f"prologue={checkpoint_start}:{checkpoint_stop}",
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.ckpt"

    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional[StateSnapshot]:
        """The stored snapshot for ``key``, or ``None`` on any miss/damage."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                version, snapshot = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError):
            obs_current().counter("checkpoint_misses")
            return None
        if version != CHECKPOINT_FORMAT_VERSION:
            obs_current().counter("checkpoint_misses")
            return None
        if not isinstance(snapshot, StateSnapshot):
            obs_current().counter("checkpoint_misses")
            return None
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        obs_current().counter("checkpoint_hits")
        return snapshot

    def save(self, key: str, snapshot: StateSnapshot) -> bool:
        """Atomically persist ``snapshot``; returns False on any IO failure.

        A failed save never breaks a measurement -- the caller already holds
        the in-memory snapshot it is about to measure with.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(self.root),
                                            suffix=".ckpt.tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump((CHECKPOINT_FORMAT_VERSION, snapshot),
                                handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            return False
        obs_current().counter("checkpoint_saves")
        return True

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.ckpt"))
        except OSError:
            return 0

    def total_bytes(self) -> int:
        total = 0
        try:
            for path in self.root.glob("*.ckpt"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return total

    def sweep_temps(self) -> int:
        """Delete stale ``.ckpt.tmp`` files; returns the bytes reclaimed."""
        reclaimed = 0
        try:
            for path in self.root.iterdir():
                if path.name.endswith(".ckpt.tmp"):
                    try:
                        reclaimed += path.stat().st_size
                        path.unlink()
                    except OSError:
                        pass
        except OSError:
            pass
        return reclaimed

    def entries(self) -> list:
        """``(mtime_ns, size, path)`` per checkpoint, least recent first."""
        entries = []
        try:
            for path in self.root.glob("*.ckpt"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime_ns, stat.st_size, path))
        except OSError:
            pass
        entries.sort()
        return entries

    def gc(self, max_bytes: int) -> int:
        """Evict least-recently-used checkpoints down to ``max_bytes``.

        Also sweeps stale temp files.  Returns the bytes reclaimed.
        """
        reclaimed = self.sweep_temps()
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
                total -= size
                reclaimed += size
            except OSError:
                pass
        return reclaimed


def shared_gc(trace_store, checkpoint_store, max_bytes: Optional[int]) -> dict:
    """Garbage-collect traces and checkpoints under ONE byte budget.

    Both stores live under the same root and compete for the same disk, so
    ``repro trace store gc`` treats them as one LRU pool: after each store's
    own garbage sweep (stale temps, orphaned sidecars), entries of *either*
    kind are evicted least-recently-used-first until the combined size fits
    ``max_bytes``.  A hot checkpoint therefore survives a cold trace and
    vice versa -- the budget buys whichever bytes were used most recently.

    Returns ``{"trace_freed": ..., "checkpoint_freed": ...}``.
    """
    freed = {
        # max_bytes=None skips the trace store's own eviction pass; the
        # combined pass below is the only evictor here.
        "trace_freed": trace_store.gc(max_bytes=None),
        "checkpoint_freed": checkpoint_store.sweep_temps(),
    }
    if max_bytes is None:
        return freed
    pool = [(mtime_ns, size, "checkpoint", path)
            for mtime_ns, size, path in checkpoint_store.entries()]
    for path in trace_store.entries():
        try:
            stat = path.stat()
        except OSError:
            continue
        pool.append((stat.st_mtime_ns, trace_store._entry_bytes(path),
                     "trace", path))
    pool.sort(key=lambda item: (item[0], str(item[3])))
    total = sum(size for _, size, _, _ in pool)
    for _, size, kind, path in pool:
        if total <= max_bytes:
            break
        if kind == "trace":
            reclaimed = trace_store._unlink_entry(path)
        else:
            try:
                reclaimed = path.stat().st_size
                path.unlink()
            except OSError:
                continue
        total -= reclaimed if kind == "trace" else size
        freed[f"{kind}_freed"] += reclaimed if kind == "trace" else size
    return freed


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "checkpoints_enabled",
    "default_root",
    "design_token",
    "sequence_token",
    "shared_gc",
    "trace_token",
]
