"""Capacity parsing and formatting helpers.

The paper describes cache capacities as human-readable strings (``128MB``,
``1GB``, ``960B`` pages).  Configuration objects throughout the reproduction
accept either integers (bytes) or these strings; this module is the single
place where the conversion lives.

All units are binary (``1KB == 1024`` bytes), matching the paper's use.
"""

from __future__ import annotations

import re
from typing import Union

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": 1024,
    "KIB": 1024,
    "MB": 1024 ** 2,
    "MIB": 1024 ** 2,
    "GB": 1024 ** 3,
    "GIB": 1024 ** 3,
    "TB": 1024 ** 4,
    "TIB": 1024 ** 4,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([A-Za-z]*)\s*$")

SizeLike = Union[int, str]


def parse_size(size: SizeLike) -> int:
    """Convert a capacity expressed as an int or string into bytes.

    ``parse_size(1024)`` returns ``1024``; ``parse_size("1KB")`` returns
    ``1024``; ``parse_size("1.5MB")`` returns ``1572864``.

    Raises
    ------
    ValueError
        If the string cannot be parsed or the unit is unknown, or if the
        resulting size is negative.
    TypeError
        If ``size`` is neither an int nor a string.
    """
    if isinstance(size, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("size must be an int or str, not bool")
    if isinstance(size, int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return size
    if not isinstance(size, str):
        raise TypeError(f"size must be an int or str, got {type(size).__name__}")

    match = _SIZE_RE.match(size)
    if match is None:
        raise ValueError(f"cannot parse size string {size!r}")
    number, unit = match.groups()
    unit = unit.upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown size unit {unit!r} in {size!r}")
    value = float(number) * _UNIT_FACTORS[unit]
    if unit in ("", "B") and abs(value - round(value)) > 1e-9:
        raise ValueError(f"size {size!r} does not resolve to a whole number of bytes")
    return int(round(value))


def format_size(num_bytes: int) -> str:
    """Format a byte count using the largest exact binary unit.

    The formatter prefers exact representations (``format_size(1536)`` is
    ``"1.5KB"``) and falls back to two decimal places otherwise.
    """
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    if num_bytes < 1024:
        return f"{num_bytes}B"
    for unit, factor in (("TB", 1024 ** 4), ("GB", 1024 ** 3),
                         ("MB", 1024 ** 2), ("KB", 1024)):
        if num_bytes >= factor:
            value = num_bytes / factor
            if value == int(value):
                return f"{int(value)}{unit}"
            if (value * 2) == int(value * 2):
                return f"{value:.1f}{unit}"
            return f"{value:.2f}{unit}"
    raise AssertionError("unreachable")
