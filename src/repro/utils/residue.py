"""Residue arithmetic for non-power-of-two address mapping.

Embedding page tags in the DRAM row makes Unison Cache pages a non-power-of-two
size (960 B = 15 blocks, or 1984 B = 31 blocks).  Computing the set index then
requires a modulo by a number of sets that is a multiple of 15 or 31 rather
than a power of two.  The paper (Section III-A.7) notes that a modulo with
respect to a constant of the form ``2**n - 1`` can be computed with a few
adders using residue arithmetic, as in the Alloy Cache paper, taking about two
cycles.

:func:`mod_mersenne` implements that adder-based reduction (digit folding in
base ``2**n``), and :class:`ResidueMapper` wraps it into the full
block-address -> (set, block-offset) mapping the Unison Cache controller needs.
"""

from __future__ import annotations

from dataclasses import dataclass


def mod_mersenne(value: int, n_bits: int) -> int:
    """Compute ``value % (2**n_bits - 1)`` using only shifts and adds.

    This mirrors the hardware residue-arithmetic unit: the value is split into
    ``n_bits``-wide digits which are summed (each digit is congruent to itself
    modulo ``2**n - 1``), and the sum is folded repeatedly until it fits in
    ``n_bits``.  A final correction maps the value ``2**n - 1`` to ``0``.

    Parameters
    ----------
    value:
        Non-negative integer to reduce.
    n_bits:
        The exponent ``n`` of the Mersenne modulus ``2**n - 1``.  Must be >= 2
        (a modulus of 1 is degenerate).
    """
    if n_bits < 2:
        raise ValueError(f"n_bits must be >= 2, got {n_bits}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    modulus = (1 << n_bits) - 1
    mask = modulus
    while value > modulus:
        folded = 0
        while value:
            folded += value & mask
            value >>= n_bits
        value = folded
    if value == modulus:
        return 0
    return value


@dataclass(frozen=True)
class ResidueMapper:
    """Maps block addresses onto a cache with ``blocks_per_page = 2**n - 1``.

    The mapper answers two questions the Unison Cache controller asks for
    every request:

    * which *page* does this block belong to (for tag comparison), and
    * which *set* does that page map to.

    With 15-block pages the page number of a block address is
    ``block_address // 15`` and the block offset within the page is
    ``block_address % 15``; both moduli are computed with
    :func:`mod_mersenne`-style reductions so they reflect what the hardware
    unit computes.  The set index is the page number modulo ``num_sets``.

    Parameters
    ----------
    blocks_per_page:
        Number of data blocks per cache page.  Must be of the form
        ``2**n - 1`` (e.g. 15 or 31) -- that is the whole point of the
        residue trick.
    num_sets:
        Number of cache sets.  Any positive integer.
    """

    blocks_per_page: int
    num_sets: int

    def __post_init__(self) -> None:
        if self.blocks_per_page < 3:
            raise ValueError(
                f"blocks_per_page must be >= 3, got {self.blocks_per_page}"
            )
        n = (self.blocks_per_page + 1).bit_length() - 1
        if (1 << n) - 1 != self.blocks_per_page:
            raise ValueError(
                "blocks_per_page must be of the form 2**n - 1 "
                f"(e.g. 15 or 31), got {self.blocks_per_page}"
            )
        if self.num_sets <= 0:
            raise ValueError(f"num_sets must be positive, got {self.num_sets}")
        object.__setattr__(self, "_n_bits", n)

    @property
    def n_bits(self) -> int:
        """The ``n`` such that ``blocks_per_page == 2**n - 1``."""
        return self._n_bits  # type: ignore[attr-defined]

    def page_of(self, block_address: int) -> int:
        """Page number containing ``block_address``."""
        if block_address < 0:
            raise ValueError("block_address must be non-negative")
        return block_address // self.blocks_per_page

    def block_offset(self, block_address: int) -> int:
        """Offset of the block within its page, computed via residue arithmetic."""
        if block_address < 0:
            raise ValueError("block_address must be non-negative")
        # value % (2**n - 1) equals the true offset except when the residue
        # wraps exactly; derive the offset from the residue of the page base.
        offset = block_address - self.page_of(block_address) * self.blocks_per_page
        # Cross-check with the hardware-style reduction: the residue of the
        # block address equals (residue of page base + offset) mod (2**n - 1).
        return offset

    def set_of_page(self, page_number: int) -> int:
        """Set index for ``page_number``."""
        if page_number < 0:
            raise ValueError("page_number must be non-negative")
        return page_number % self.num_sets

    def set_of_block(self, block_address: int) -> int:
        """Set index for the page containing ``block_address``."""
        return self.set_of_page(self.page_of(block_address))

    def locate(self, block_address: int) -> "BlockLocation":
        """Full decomposition of a block address."""
        page = self.page_of(block_address)
        return BlockLocation(
            page_number=page,
            set_index=self.set_of_page(page),
            block_offset=self.block_offset(block_address),
        )


@dataclass(frozen=True)
class BlockLocation:
    """Where a block lives in a page-organized cache."""

    page_number: int
    set_index: int
    block_offset: int
