"""Low-level utilities shared across the Unison Cache reproduction.

This subpackage contains no simulation logic of its own.  It provides the
small, heavily-reused building blocks that the cache models, predictors and
DRAM timing model are written in terms of:

* :mod:`repro.utils.bitvector` -- fixed-width bit vectors used for page
  footprints and valid/dirty block tracking.
* :mod:`repro.utils.units` -- parsing and formatting of capacity strings such
  as ``"1GB"`` or ``"960B"``.
* :mod:`repro.utils.hashing` -- XOR-folding hash used by the way predictor and
  the Alloy Cache miss predictor.
* :mod:`repro.utils.residue` -- modulo-by-(2^n - 1) residue arithmetic used by
  Unison Cache's non-power-of-two set-index computation.
"""

from repro.utils.bitvector import BitVector
from repro.utils.hashing import fold_xor, mix64
from repro.utils.residue import mod_mersenne, ResidueMapper
from repro.utils.units import format_size, parse_size

__all__ = [
    "BitVector",
    "fold_xor",
    "mix64",
    "mod_mersenne",
    "ResidueMapper",
    "format_size",
    "parse_size",
]
