"""Fixed-width bit vectors.

The Unison Cache and Footprint Cache designs track, for every cached page,
which 64-byte blocks inside the page are valid, dirty, or were demanded by the
processor (the page *footprint*).  The hardware stores these as small bit
vectors embedded in the DRAM row metadata; we model them with a compact
integer-backed :class:`BitVector`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class BitVector:
    """A fixed-width vector of bits backed by a single Python integer.

    The width is fixed at construction time.  All mutating operations keep the
    value masked to ``width`` bits, so a :class:`BitVector` can never report
    bits outside its range as set.

    Parameters
    ----------
    width:
        Number of bits in the vector.  Must be positive.
    value:
        Optional initial value.  Bits above ``width`` are silently discarded.
    """

    __slots__ = ("_width", "_value")

    def __init__(self, width: int, value: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"BitVector width must be positive, got {width}")
        self._width = width
        self._value = value & self._mask

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector with the given bit positions set."""
        vec = cls(width)
        for index in indices:
            vec.set(index)
        return vec

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """Build a vector with every bit set."""
        return cls(width, (1 << width) - 1)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Number of bits in the vector."""
        return self._width

    @property
    def value(self) -> int:
        """The vector interpreted as an unsigned integer."""
        return self._value

    @property
    def _mask(self) -> int:
        return (1 << self._width) - 1

    # ------------------------------------------------------------------ #
    # Bit access
    # ------------------------------------------------------------------ #
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._width:
            raise IndexError(
                f"bit index {index} out of range for width {self._width}"
            )

    def get(self, index: int) -> bool:
        """Return True if the bit at ``index`` is set."""
        self._check_index(index)
        return bool((self._value >> index) & 1)

    def set(self, index: int) -> None:
        """Set the bit at ``index``."""
        self._check_index(index)
        self._value |= 1 << index

    def clear(self, index: int) -> None:
        """Clear the bit at ``index``."""
        self._check_index(index)
        self._value &= ~(1 << index) & self._mask

    def assign(self, index: int, flag: bool) -> None:
        """Set or clear the bit at ``index`` depending on ``flag``."""
        if flag:
            self.set(index)
        else:
            self.clear(index)

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, flag: bool) -> None:
        self.assign(index, bool(flag))

    # ------------------------------------------------------------------ #
    # Whole-vector operations
    # ------------------------------------------------------------------ #
    def clear_all(self) -> None:
        """Clear every bit."""
        self._value = 0

    def set_all(self) -> None:
        """Set every bit."""
        self._value = self._mask

    def popcount(self) -> int:
        """Number of set bits."""
        return bin(self._value).count("1")

    def any(self) -> bool:
        """True if at least one bit is set."""
        return self._value != 0

    def all(self) -> bool:
        """True if every bit is set."""
        return self._value == self._mask

    def indices(self) -> List[int]:
        """Return the sorted list of set bit positions."""
        return [i for i in range(self._width) if (self._value >> i) & 1]

    def copy(self) -> "BitVector":
        """Return an independent copy of this vector."""
        return BitVector(self._width, self._value)

    # ------------------------------------------------------------------ #
    # Set algebra (used to compare predicted vs actual footprints)
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other.width != self._width:
            raise ValueError(
                f"width mismatch: {self._width} vs {other.width}"
            )

    def union(self, other: "BitVector") -> "BitVector":
        """Bitwise OR of the two vectors."""
        self._check_compatible(other)
        return BitVector(self._width, self._value | other.value)

    def intersection(self, other: "BitVector") -> "BitVector":
        """Bitwise AND of the two vectors."""
        self._check_compatible(other)
        return BitVector(self._width, self._value & other.value)

    def difference(self, other: "BitVector") -> "BitVector":
        """Bits set in ``self`` but not in ``other``."""
        self._check_compatible(other)
        return BitVector(self._width, self._value & ~other.value)

    def __or__(self, other: "BitVector") -> "BitVector":
        return self.union(other)

    def __and__(self, other: "BitVector") -> "BitVector":
        return self.intersection(other)

    def __sub__(self, other: "BitVector") -> "BitVector":
        return self.difference(other)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._width

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._width):
            yield bool((self._value >> i) & 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._width == other.width and self._value == other.value

    def __hash__(self) -> int:
        return hash((self._width, self._value))

    def __repr__(self) -> str:
        bits = "".join("1" if b else "0" for b in reversed(list(self)))
        return f"BitVector(width={self._width}, bits={bits})"
