"""Hashing helpers used by predictors.

The Unison Cache way predictor is "a 2-bit array directly indexed by the
12-bit XOR hash of the page address (16-bit XOR for caches above 4GB)"
(Section III-A.6).  :func:`fold_xor` implements exactly that XOR-folding hash.

:func:`mix64` is a cheap, deterministic 64-bit mixer (a splitmix64 finalizer)
used by the synthetic workload generators to derive pseudo-random but
reproducible structure (e.g. which (PC, offset) pair maps to which footprint
pattern) without depending on global random state.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def fold_xor(value: int, output_bits: int) -> int:
    """XOR-fold ``value`` down to ``output_bits`` bits.

    The value is split into consecutive ``output_bits``-wide chunks starting
    from the least-significant bit and the chunks are XORed together.  This is
    the standard hardware-friendly index hash used for way predictors.

    Parameters
    ----------
    value:
        Non-negative integer to fold.
    output_bits:
        Width of the result in bits; must be positive.
    """
    if output_bits <= 0:
        raise ValueError(f"output_bits must be positive, got {output_bits}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    mask = (1 << output_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= output_bits
    return folded


def mix64(value: int) -> int:
    """Deterministically scramble a 64-bit integer (splitmix64 finalizer).

    Used by workload generators to map structured identifiers (page numbers,
    PC values, iteration counters) onto well-distributed pseudo-random values
    without any shared random-number-generator state.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64
