"""Per-window aggregation for sampled measurement.

The windowed sampler (:mod:`repro.sampling.runner`) produces one value of
each tracked metric per measurement window.  This module turns those into
statistically meaningful quantities:

* :class:`WindowSeries` -- values keyed by *window index*.  Aggregation is
  order-independent by construction: the confidence interval is always
  computed over index-sorted values, so the shuffled measurement order the
  adaptive sampler uses can never change a reported number.
* :func:`matched_pair_deltas` -- per-window differences between two series
  measured over the *same* windows (the matched-pair design the SimFlex
  methodology prescribes for comparing configurations: common window
  placement cancels inter-window workload variance, so the delta's CI is
  far tighter than the difference of two independent CIs).
* :class:`AdaptiveStopper` -- the termination rule: keep adding windows
  until every tracked series' 95% CI half-width is within a target relative
  error of its mean (or an absolute floor, for deltas whose mean is near
  zero), bounded by a window budget.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval


class WindowSeries:
    """One metric's per-window values, keyed by window index."""

    def __init__(self, name: str = "metric") -> None:
        self.name = name
        self._values: Dict[int, float] = {}

    def add(self, window_index: int, value: float) -> None:
        """Record the metric's value for one window."""
        if window_index in self._values:
            raise ValueError(
                f"window {window_index} already recorded for {self.name!r}"
            )
        self._values[window_index] = float(value)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __eq__(self, other) -> bool:
        """Value equality, so containers of series (sampled runs) compare."""
        if not isinstance(other, WindowSeries):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    __hash__ = None  # mutable: unhashable, like a list

    def indices(self) -> "List[int]":
        """Window indices present, ascending."""
        return sorted(self._values)

    def values(self) -> "List[float]":
        """Values in window-index order (insertion order is irrelevant)."""
        return [self._values[i] for i in sorted(self._values)]

    def get(self, window_index: int) -> Optional[float]:
        return self._values.get(window_index)

    def interval(self) -> ConfidenceInterval:
        """95% confidence interval of the mean over recorded windows."""
        return mean_confidence_interval(self.values())

    @property
    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} has no windows")
        return sum(values) / len(values)

    def __repr__(self) -> str:
        return f"WindowSeries({self.name!r}, {len(self)} windows)"


def matched_pair_deltas(a: WindowSeries, b: WindowSeries,
                        name: Optional[str] = None) -> WindowSeries:
    """Per-window ``a - b`` over the windows both series measured.

    Windows are matched by index, so the result is independent of either
    series' insertion order and of any extra windows only one side has.
    """
    deltas = WindowSeries(name or f"{a.name}-{b.name}")
    common = set(a.indices()) & set(b.indices())
    for index in sorted(common):
        deltas.add(index, a.get(index) - b.get(index))
    return deltas


class AdaptiveStopper:
    """Decides when enough windows have been measured.

    A series converges when its CI half-width is at most
    ``target_relative_error * |mean|`` or at most ``absolute_floor``
    (whichever allows more) -- the floor keeps near-zero-mean deltas from
    demanding infinite precision.  ``should_stop`` requires *every* tracked
    series to have converged, after at least ``min_windows`` and at most
    ``max_windows`` windows.
    """

    def __init__(self, target_relative_error: float = 0.02,
                 min_windows: int = 5, max_windows: int = 30,
                 absolute_floor: float = 0.0) -> None:
        if target_relative_error <= 0:
            raise ValueError("target_relative_error must be positive")
        if min_windows <= 0:
            raise ValueError("min_windows must be positive")
        if max_windows < min_windows:
            raise ValueError("max_windows must be >= min_windows")
        if absolute_floor < 0:
            raise ValueError("absolute_floor must be non-negative")
        self.target_relative_error = target_relative_error
        self.min_windows = min_windows
        self.max_windows = max_windows
        self.absolute_floor = absolute_floor

    def converged(self, series: WindowSeries) -> bool:
        """True when the series' CI meets the target."""
        if len(series) < 2:
            # One window has no variance estimate; never call it converged
            # (a zero-width interval from n=1 is ignorance, not precision).
            return False
        interval = series.interval()
        tolerance = max(self.absolute_floor,
                        self.target_relative_error * abs(interval.mean))
        return interval.half_width <= tolerance

    def should_stop(self, series_list: Iterable[WindowSeries]) -> bool:
        """True when measurement may end after the windows recorded so far."""
        series_list = list(series_list)
        if not series_list:
            return True
        measured = min(len(s) for s in series_list)
        if measured < self.min_windows:
            return False
        if measured >= self.max_windows:
            return True
        return all(self.converged(s) for s in series_list)


__all__ = [
    "AdaptiveStopper",
    "WindowSeries",
    "matched_pair_deltas",
]
