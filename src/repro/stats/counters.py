"""Simple named counters and ratio statistics.

The simulator favours explicit counter objects over ad-hoc integer attributes
so that every component can be dumped into a uniform report (``StatGroup``)
and so the benchmark harness can extract any statistic by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple, Union


class Counter:
    """A monotonically-increasing named event counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (which must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"cannot increment counter {self.name!r} by {amount}")
        self._value += amount

    def reset(self) -> None:
        """Reset the counter to zero (used between warm-up and measurement)."""
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


@dataclass
class RatioStat:
    """A statistic expressed as ``numerator / denominator``.

    Used for hit/miss ratios, predictor accuracies, and overfetch ratios.
    ``value`` returns 0.0 when the denominator is zero, which is the
    convention the reporting code relies on for unexercised components.
    """

    name: str
    numerator: int = 0
    denominator: int = 0

    def record(self, success: bool) -> None:
        """Record one trial; ``success`` increments the numerator."""
        self.denominator += 1
        if success:
            self.numerator += 1

    def add(self, numerator: int, denominator: int) -> None:
        """Accumulate partial counts."""
        if numerator < 0 or denominator < 0:
            raise ValueError("counts must be non-negative")
        self.numerator += numerator
        self.denominator += denominator

    @property
    def value(self) -> float:
        """The ratio, or 0.0 if nothing has been recorded."""
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    @property
    def percent(self) -> float:
        """The ratio as a percentage."""
        return 100.0 * self.value

    def reset(self) -> None:
        """Zero both counts."""
        self.numerator = 0
        self.denominator = 0


StatValue = Union[int, float]


@dataclass
class StatGroup:
    """A flat, named collection of statistics for one component.

    Components build a ``StatGroup`` in their ``stats()`` accessor; groups can
    be nested by prefixing (``merge_child``), giving dotted names such as
    ``"dram_cache.hits"`` in the final report.
    """

    name: str
    values: Dict[str, StatValue] = field(default_factory=dict)

    def set(self, key: str, value: StatValue) -> None:
        """Set a single statistic."""
        self.values[key] = value

    def get(self, key: str) -> StatValue:
        """Read a single statistic; raises ``KeyError`` if absent."""
        return self.values[key]

    def merge_child(self, child: "StatGroup") -> None:
        """Fold a child group into this one using dotted-name prefixes."""
        for key, value in child.values.items():
            self.values[f"{child.name}.{key}"] = value

    def items(self) -> Iterator[Tuple[str, StatValue]]:
        """Iterate over (name, value) pairs in insertion order."""
        return iter(self.values.items())

    def as_dict(self) -> Dict[str, StatValue]:
        """Return a copy of the statistics as a plain dict."""
        return dict(self.values)

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def __len__(self) -> int:
        return len(self.values)
