"""Confidence intervals for sampled measurements.

The paper follows the SimFlex sampling methodology and reports performance
"with an average error of less than 2% at a 95% confidence level".  The
reproduction's sampling driver (:mod:`repro.sim.sampling`) aggregates
per-sample measurements with the helpers here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

# Two-sided critical values of the Student t distribution for 95% confidence,
# indexed by degrees of freedom.  Above the table we use the normal
# approximation (1.96), which is accurate to within ~1% for dof >= 30.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_95 = 1.96


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean together with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float = 0.95

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width as a fraction of the mean.

        A zero mean with a non-zero half-width yields ``inf`` -- the
        relative-error criterion is simply undecidable there, and callers
        (the adaptive sampler) must fall back to an absolute tolerance.
        Returning 0.0 instead (as this once did) made a completely
        unconverged measurement of a near-zero quantity look perfectly
        converged.
        """
        if self.mean == 0:
            return 0.0 if self.half_width == 0 else math.inf
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        """True if ``value`` lies within the interval."""
        return self.lower <= value <= self.upper


def _critical_value_95(dof: int) -> float:
    if dof <= 0:
        raise ValueError("need at least two samples for a confidence interval")
    return _T_TABLE_95.get(dof, _Z_95)


def mean_confidence_interval(samples: Sequence[float]) -> ConfidenceInterval:
    """95% confidence interval for the mean of ``samples``.

    Uses the Student t distribution for small sample counts and the normal
    approximation beyond 30 degrees of freedom.  A single sample yields a
    zero-width interval (there is nothing to estimate variance from, and the
    sampling driver treats that case as "measurement not yet converged").
    """
    if len(samples) == 0:
        raise ValueError("cannot compute a confidence interval of no samples")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std_error = math.sqrt(variance / n)
    half_width = _critical_value_95(n - 1) * std_error
    return ConfidenceInterval(mean=mean, half_width=half_width)
