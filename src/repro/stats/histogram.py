"""Discrete histograms.

Used for distributions the paper reasons about qualitatively -- footprint
densities (how many blocks of a page are touched before eviction), page
residency times, and DRAM cache hit-latency distributions.
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Dict, Iterable, Tuple


class Histogram:
    """A histogram over integer-valued observations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counts: _Counter = _Counter()
        self._total = 0

    def record(self, value: int, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[value] += count
        self._total += count

    def count(self, value: int) -> int:
        """Number of observations of ``value``."""
        return self._counts.get(value, 0)

    @property
    def total(self) -> int:
        """Total number of observations."""
        return self._total

    def mean(self) -> float:
        """Mean observation, or 0.0 if empty."""
        if self._total == 0:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / self._total

    def percentile(self, fraction: float) -> int:
        """Smallest value v such that at least ``fraction`` of observations are <= v."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self._total == 0:
            raise ValueError("cannot take a percentile of an empty histogram")
        threshold = fraction * self._total
        running = 0
        for value in sorted(self._counts):
            running += self._counts[value]
            if running >= threshold:
                return value
        return max(self._counts)

    def items(self) -> Iterable[Tuple[int, int]]:
        """(value, count) pairs in ascending value order."""
        return sorted(self._counts.items())

    def as_dict(self) -> Dict[int, int]:
        """Copy of the underlying counts."""
        return dict(self._counts)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        for value, count in other.items():
            self.record(value, count)

    def __len__(self) -> int:
        return len(self._counts)
