"""Statistics collection and reporting.

Every simulated component (caches, predictors, DRAM channels, the performance
model) exposes its behaviour through the counters in this subpackage, which
the experiment harness then turns into the ratios and confidence intervals
reported in the paper's tables and figures.
"""

from repro.stats.counters import Counter, RatioStat, StatGroup
from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval
from repro.stats.histogram import Histogram
from repro.stats.sampling import (
    AdaptiveStopper,
    WindowSeries,
    matched_pair_deltas,
)

__all__ = [
    "AdaptiveStopper",
    "Counter",
    "RatioStat",
    "StatGroup",
    "ConfidenceInterval",
    "WindowSeries",
    "matched_pair_deltas",
    "mean_confidence_interval",
    "Histogram",
]
