"""Compact struct-packed binary trace format with streaming access.

This is the format the :class:`repro.trace.store.TraceStore` persists traces
in.  Design goals, in order: (1) traces far larger than memory stream through
fixed-size chunks in both directions, (2) loading is bounded by record
*construction*, not parsing -- decoding combines
:meth:`struct.Struct.iter_unpack` with direct ``tuple.__new__`` construction
(see :func:`_decode_records`), which makes it several times faster than the
text codec -- and (3) the file is
self-describing: a fixed-size **uncompressed** header precedes the (optionally
gzip-compressed) record payload, so ``repro trace info`` can report version,
core count, and access count without decompressing anything.

Layout::

    offset 0: HEADER  = magic b"RPTR" | version u16 | flags u16
                        | num_cores u32 | access_count u64     (20 bytes, LE)
    offset 20: PAYLOAD = access_count x RECORD, gzip-wrapped when
                         flags & FLAG_GZIP

    RECORD = address u64 | pc u64 | timestamp u64
             | core_id u16 | access_type u8                    (27 bytes, LE)

``access_count`` is written as :data:`UNKNOWN_COUNT` while a stream is being
produced and patched in place when the writer closes (the header is outside
the gzip member precisely so this seek-back works for compressed traces too;
on a non-seekable target the sentinel simply remains).
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.trace.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

PathLike = Union[str, Path]

#: First four bytes of every binary trace file ("RePro TRace").
MAGIC = b"RPTR"
#: Current format version.
VERSION = 1
#: Header flag: the record payload is a gzip member.
FLAG_GZIP = 0x0001
#: ``access_count`` value meaning "stream was not finalized".
UNKNOWN_COUNT = 2 ** 64 - 1

HEADER = struct.Struct("<4sHHIQ")
RECORD = struct.Struct("<QQQHB")

#: Records per streaming chunk (~432 KB of packed payload).
DEFAULT_CHUNK_RECORDS = 16384

_TYPE_FROM_CODE = (AccessType.READ, AccessType.WRITE)

_MAX_U64 = 2 ** 64 - 1
_MAX_U16 = 2 ** 16 - 1


def _decode_records(blob: bytes) -> List[MemoryAccess]:
    """Decode a whole-record payload slice into MemoryAccess objects.

    This is the hottest loop of the trace subsystem (a million-access trace
    is a million constructions), so it bypasses the validating constructor:
    ``tuple.__new__`` on the namedtuple subclass, with fields already
    range-guaranteed by the unsigned struct encoding.  Positional indexing
    into the unpacked record measures slightly faster than tuple unpacking.
    """
    tuple_new = tuple.__new__
    cls = MemoryAccess
    types = _TYPE_FROM_CODE
    return [
        tuple_new(cls, (r[0], r[1], types[r[4]], r[3], r[2]))
        for r in RECORD.iter_unpack(blob)
    ]


@dataclass(frozen=True)
class BinaryTraceInfo:
    """Decoded header of a binary trace file."""

    path: str
    version: int
    compressed: bool
    num_cores: int
    #: ``None`` when the stream was never finalized (:data:`UNKNOWN_COUNT`).
    access_count: Optional[int]
    file_bytes: int


def is_binary_trace(path: PathLike) -> bool:
    """True when ``path`` starts with the binary trace magic."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_header(path: PathLike) -> BinaryTraceInfo:
    """Read and validate the fixed header of a binary trace file."""
    path = Path(path)
    with path.open("rb") as handle:
        blob = handle.read(HEADER.size)
    if len(blob) < HEADER.size:
        raise TraceFormatError(
            f"file too short for a binary trace header "
            f"({len(blob)} < {HEADER.size} bytes)", path=path,
        )
    magic, version, flags, num_cores, count = HEADER.unpack(blob)
    if magic != MAGIC:
        raise TraceFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r}); not a binary trace",
            path=path,
        )
    if version > VERSION:
        raise TraceFormatError(
            f"unsupported binary trace version {version} "
            f"(this reader understands <= {VERSION})", path=path,
        )
    return BinaryTraceInfo(
        path=str(path),
        version=version,
        compressed=bool(flags & FLAG_GZIP),
        num_cores=num_cores,
        access_count=None if count == UNKNOWN_COUNT else count,
        file_bytes=path.stat().st_size,
    )


class BinaryTraceWriter:
    """Stream accesses into a binary trace file; a context manager.

    Parameters
    ----------
    path:
        Destination file.
    num_cores:
        Core count recorded in the header (0 = unspecified).
    compress:
        Gzip the record payload (the header stays uncompressed).
    compresslevel:
        zlib level for ``compress=True``; the default 6 trades a slightly
        slower write for ~15% smaller files than level 1.
    """

    def __init__(self, path: PathLike, num_cores: int = 0,
                 compress: bool = True, compresslevel: int = 6) -> None:
        if num_cores < 0:
            raise ValueError("num_cores must be non-negative")
        self._path = Path(path)
        self._num_cores = num_cores
        self._compress = compress
        self._compresslevel = compresslevel
        self._raw: Optional[IO[bytes]] = None
        self._payload: Optional[IO[bytes]] = None
        self._buffer: List[bytes] = []
        self._count = 0

    def __enter__(self) -> "BinaryTraceWriter":
        self._raw = self._path.open("wb")
        self._raw.write(self._header(UNKNOWN_COUNT))
        if self._compress:
            self._payload = gzip.GzipFile(
                fileobj=self._raw, mode="wb",
                compresslevel=self._compresslevel, mtime=0,
            )
        else:
            self._payload = self._raw
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only finalize the header on a clean exit: an aborted stream keeps
        # the UNKNOWN_COUNT sentinel, so a partially-written file can never
        # pass for a complete trace (``trace info`` reports it as
        # non-finalized).
        self.close(finalize=exc_type is None)

    def _header(self, count: int) -> bytes:
        flags = FLAG_GZIP if self._compress else 0
        return HEADER.pack(MAGIC, VERSION, flags, self._num_cores, count)

    def write(self, access: MemoryAccess) -> None:
        """Append one access."""
        if self._payload is None:
            raise RuntimeError(
                "BinaryTraceWriter must be used as a context manager"
            )
        if not (0 <= access.address <= _MAX_U64
                and 0 <= access.pc <= _MAX_U64
                and 0 <= access.timestamp <= _MAX_U64):
            raise TraceFormatError(
                f"field outside the unsigned 64-bit range, not "
                f"representable: {access!r}", path=self._path,
            )
        if not 0 <= access.core_id <= _MAX_U16:
            raise TraceFormatError(
                f"core_id {access.core_id} outside the unsigned 16-bit "
                f"range", path=self._path,
            )
        self._buffer.append(RECORD.pack(
            access.address, access.pc, access.timestamp, access.core_id,
            1 if access.access_type is AccessType.WRITE else 0,
        ))
        self._count += 1
        if len(self._buffer) >= DEFAULT_CHUNK_RECORDS:
            self._flush()

    def write_all(self, accesses: Iterable[MemoryAccess]) -> None:
        """Append every access from an iterable, chunk by chunk."""
        for access in accesses:
            self.write(access)

    @property
    def count(self) -> int:
        """Number of accesses written so far."""
        return self._count

    def _flush(self) -> None:
        if self._buffer:
            self._payload.write(b"".join(self._buffer))
            self._buffer.clear()

    def close(self, finalize: bool = True) -> None:
        """Finish the payload and patch the final access count in place.

        With ``finalize=False`` the header keeps the :data:`UNKNOWN_COUNT`
        sentinel, marking the stream as aborted/incomplete.
        """
        if self._raw is None:
            return
        self._flush()
        if self._payload is not self._raw:
            self._payload.close()  # ends the gzip member
        if finalize and self._raw.seekable():
            self._raw.seek(0)
            self._raw.write(self._header(self._count))
        self._raw.close()
        self._raw = None
        self._payload = None


class BinaryTraceReader:
    """Iterate over a binary trace file; re-iterable and streaming.

    Iterating never materializes more than one chunk
    (:data:`DEFAULT_CHUNK_RECORDS` records) at a time.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def info(self) -> BinaryTraceInfo:
        """The decoded file header."""
        return read_header(self._path)

    def _open_payload(self) -> "tuple[IO[bytes], IO[bytes]]":
        """Open the record payload; returns ``(payload, raw)`` for closing."""
        info = read_header(self._path)  # validates magic/version
        raw = self._path.open("rb")
        raw.seek(HEADER.size)
        if info.compressed:
            return gzip.GzipFile(fileobj=raw, mode="rb"), raw
        return raw, raw

    def iter_chunks(self, chunk_records: int = DEFAULT_CHUNK_RECORDS,
                    ) -> Iterator[List[MemoryAccess]]:
        """Yield the trace as lists of at most ``chunk_records`` accesses."""
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        chunk_bytes = chunk_records * RECORD.size
        payload, raw = self._open_payload()
        try:
            pending = b""
            while True:
                blob = payload.read(chunk_bytes)
                if not blob:
                    break
                if pending:
                    blob = pending + blob
                    pending = b""
                trailing = len(blob) % RECORD.size
                if trailing:
                    pending = blob[-trailing:]
                    blob = blob[:-trailing]
                yield _decode_records(blob)
            if pending:
                raise TraceFormatError(
                    f"truncated binary trace: {len(pending)} trailing bytes "
                    f"do not form a whole {RECORD.size}-byte record",
                    path=self._path,
                )
        finally:
            payload.close()
            raw.close()

    def __iter__(self) -> Iterator[MemoryAccess]:
        for chunk in self.iter_chunks():
            yield from chunk

    def read_all(self) -> List[MemoryAccess]:
        """Read the whole trace into a list.

        Decodes the payload in one pass (a transient second copy of the
        packed bytes, ~27 MB per million accesses); use :meth:`iter_chunks`
        when even that must not be held at once.
        """
        payload, raw = self._open_payload()
        try:
            blob = payload.read()
        finally:
            payload.close()
            raw.close()
        if len(blob) % RECORD.size:
            raise TraceFormatError(
                f"truncated binary trace: {len(blob) % RECORD.size} trailing "
                f"bytes do not form a whole {RECORD.size}-byte record",
                path=self._path,
            )
        return _decode_records(blob)


def write_trace_bin(path: PathLike, accesses: Iterable[MemoryAccess],
                    num_cores: int = 0, compress: bool = True) -> int:
    """Write all accesses to ``path`` in binary form; returns the count."""
    with BinaryTraceWriter(path, num_cores=num_cores,
                           compress=compress) as writer:
        writer.write_all(accesses)
        return writer.count


def read_trace_bin(path: PathLike) -> List[MemoryAccess]:
    """Read a whole binary trace from ``path``."""
    return BinaryTraceReader(path).read_all()


__all__ = [
    "BinaryTraceInfo",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "DEFAULT_CHUNK_RECORDS",
    "FLAG_GZIP",
    "MAGIC",
    "UNKNOWN_COUNT",
    "VERSION",
    "is_binary_trace",
    "read_header",
    "read_trace_bin",
    "write_trace_bin",
]
