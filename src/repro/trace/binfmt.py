"""Compact struct-packed binary trace format with streaming access.

This is the format the :class:`repro.trace.store.TraceStore` persists traces
in.  Design goals, in order: (1) traces far larger than memory stream through
fixed-size chunks in both directions, (2) loading is bounded by record
*construction*, not parsing -- decoding combines
:meth:`struct.Struct.iter_unpack` with direct ``tuple.__new__`` construction
(see :func:`_decode_records`), which makes it several times faster than the
text codec -- (3) the file is
self-describing: a fixed-size **uncompressed** header precedes the (optionally
compressed) record payload, so ``repro trace info`` can report version,
core count, and access count without decompressing anything -- and (4) files
are **seekable at chunk granularity**: each streaming chunk is written as an
independent compression member, and a sidecar :class:`ChunkIndex` maps record
indices to the file offsets of those members, so a measurement window deep in
the trace opens without decoding the prefix (the sampled-simulation layer in
:mod:`repro.sampling` builds on this).

Layout::

    offset 0: HEADER  = magic b"RPTR" | version u16 | flags u16
                        | num_cores u32 | access_count u64     (20 bytes, LE)
    offset 20: PAYLOAD = access_count x RECORD, as a sequence of per-chunk
                         codec members (gzip members when flags & FLAG_GZIP,
                         zstd frames when flags & FLAG_ZSTD, raw otherwise)

    RECORD = address u64 | pc u64 | timestamp u64
             | core_id u16 | access_type u8                    (27 bytes, LE)

``access_count`` is written as :data:`UNKNOWN_COUNT` while a stream is being
produced and patched in place when the writer closes (the header is outside
the compressed members precisely so this seek-back works for compressed
traces too; on a non-seekable target the sentinel simply remains).

Compression codecs: ``gzip`` (stdlib, the default), ``zstd`` (used when
``compression.zstd`` -- Python 3.14+ -- or the third-party ``zstandard``
package is importable; better ratio and much faster decompression), and
``none``.  Both compressed codecs concatenate their members transparently on
sequential reads, so a whole-trace read never consults the chunk index.
"""

from __future__ import annotations

import bisect
import gzip
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.trace.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

PathLike = Union[str, Path]

#: First four bytes of every binary trace file ("RePro TRace").
MAGIC = b"RPTR"
#: Current format version.
VERSION = 1
#: Header flag: the record payload is a sequence of gzip members.
FLAG_GZIP = 0x0001
#: Header flag: the record payload is a sequence of zstd frames.
FLAG_ZSTD = 0x0002
#: ``access_count`` value meaning "stream was not finalized".
UNKNOWN_COUNT = 2 ** 64 - 1

HEADER = struct.Struct("<4sHHIQ")
RECORD = struct.Struct("<QQQHB")

#: Records per streaming chunk (~432 KB of packed payload).
DEFAULT_CHUNK_RECORDS = 16384

#: Codec names accepted by the writer (and reported by the reader).
CODEC_NONE = "none"
CODEC_GZIP = "gzip"
CODEC_ZSTD = "zstd"
CODECS = (CODEC_NONE, CODEC_GZIP, CODEC_ZSTD)

_CODEC_FLAGS = {CODEC_NONE: 0, CODEC_GZIP: FLAG_GZIP, CODEC_ZSTD: FLAG_ZSTD}
_DEFAULT_LEVELS = {CODEC_GZIP: 6, CODEC_ZSTD: 3}

_TYPE_FROM_CODE = (AccessType.READ, AccessType.WRITE)

_MAX_U64 = 2 ** 64 - 1
_MAX_U16 = 2 ** 16 - 1


# --------------------------------------------------------------------- #
# Codec backends
# --------------------------------------------------------------------- #
def _zstd_backend():
    """The available zstd implementation, or ``None``.

    Prefers the stdlib ``compression.zstd`` (Python 3.14+) and falls back to
    the third-party ``zstandard`` package; both expose ``compress``/
    member-decompression primitives under slightly different names, so this
    returns a small adapter tuple ``(compress, decompressobj_factory)``.
    """
    try:
        from compression import zstd as _stdlib_zstd  # Python >= 3.14

        return (
            lambda blob, level: _stdlib_zstd.compress(blob, level),
            lambda: _stdlib_zstd.ZstdDecompressor(),
        )
    except ImportError:
        pass
    try:
        import zstandard as _zstandard
    except ImportError:
        return None
    return (
        lambda blob, level: _zstandard.ZstdCompressor(level=level).compress(blob),
        lambda: _zstandard.ZstdDecompressor().decompressobj(),
    )


def zstd_available() -> bool:
    """True when a zstd implementation is importable."""
    return _zstd_backend() is not None


def available_codecs() -> "tuple[str, ...]":
    """Codec names usable on this interpreter."""
    if zstd_available():
        return CODECS
    return (CODEC_NONE, CODEC_GZIP)


def _codec_from_flags(flags: int, path: PathLike) -> str:
    if flags & FLAG_ZSTD:
        return CODEC_ZSTD
    if flags & FLAG_GZIP:
        return CODEC_GZIP
    return CODEC_NONE


def _require_zstd(path: PathLike):
    backend = _zstd_backend()
    if backend is None:
        raise TraceFormatError(
            "zstd-compressed trace but no zstd implementation is available "
            "(install 'zstandard' or use Python >= 3.14)", path=path,
        )
    return backend


def _compress_chunk(blob: bytes, codec: str, level: int,
                    path: PathLike) -> bytes:
    """One chunk of packed records as a complete, standalone codec member."""
    if codec == CODEC_NONE:
        return blob
    if codec == CODEC_GZIP:
        # mtime=0 keeps the bytes deterministic across writes.
        return gzip.compress(blob, compresslevel=level, mtime=0)
    compress, _ = _require_zstd(path)
    return compress(blob, level)


def _decompressobj_factory(codec: str, path: PathLike):
    """A factory of one-member decompressor objects for ``codec``.

    The returned objects expose ``decompress``, ``eof`` and ``unused_data``
    (the zlib protocol, which both zstd backends also follow), which is what
    member-boundary scans and member-range decompression need.
    """
    if codec == CODEC_GZIP:
        return lambda: zlib.decompressobj(wbits=16 + zlib.MAX_WBITS)
    if codec == CODEC_ZSTD:
        _, factory = _require_zstd(path)
        return factory
    raise ValueError(f"codec {codec!r} has no decompressor")


def decompress_members(blob: bytes, codec: str,
                       path: PathLike = "<memory>") -> bytes:
    """Decompress a byte range holding one or more whole codec members."""
    if codec == CODEC_NONE:
        return blob
    factory = _decompressobj_factory(codec, path)
    parts = []
    view = memoryview(blob)
    while len(view):
        member = factory()
        parts.append(member.decompress(view))
        if not member.eof:
            raise TraceFormatError(
                "truncated compression member in binary trace payload",
                path=path,
            )
        view = memoryview(member.unused_data)
    return b"".join(parts)


def _decode_records(blob) -> List[MemoryAccess]:
    """Decode a whole-record payload slice into MemoryAccess objects.

    This is the hottest loop of the trace subsystem (a million-access trace
    is a million constructions), so it bypasses the validating constructor:
    ``tuple.__new__`` on the namedtuple subclass, with fields already
    range-guaranteed by the unsigned struct encoding.  Positional indexing
    into the unpacked record measures slightly faster than tuple unpacking.
    """
    tuple_new = tuple.__new__
    cls = MemoryAccess
    types = _TYPE_FROM_CODE
    return [
        tuple_new(cls, (r[0], r[1], types[r[4]], r[3], r[2]))
        for r in RECORD.iter_unpack(blob)
    ]


@dataclass(frozen=True)
class BinaryTraceInfo:
    """Decoded header of a binary trace file."""

    path: str
    version: int
    compressed: bool
    num_cores: int
    #: ``None`` when the stream was never finalized (:data:`UNKNOWN_COUNT`).
    access_count: Optional[int]
    file_bytes: int
    #: Payload codec name (one of :data:`CODECS`).
    codec: str = CODEC_GZIP


def is_binary_trace(path: PathLike) -> bool:
    """True when ``path`` starts with the binary trace magic."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_header(path: PathLike) -> BinaryTraceInfo:
    """Read and validate the fixed header of a binary trace file."""
    path = Path(path)
    with path.open("rb") as handle:
        blob = handle.read(HEADER.size)
    if len(blob) < HEADER.size:
        raise TraceFormatError(
            f"file too short for a binary trace header "
            f"({len(blob)} < {HEADER.size} bytes)", path=path,
        )
    magic, version, flags, num_cores, count = HEADER.unpack(blob)
    if magic != MAGIC:
        raise TraceFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r}); not a binary trace",
            path=path,
        )
    if version > VERSION:
        raise TraceFormatError(
            f"unsupported binary trace version {version} "
            f"(this reader understands <= {VERSION})", path=path,
        )
    codec = _codec_from_flags(flags, path)
    return BinaryTraceInfo(
        path=str(path),
        version=version,
        compressed=codec != CODEC_NONE,
        num_cores=num_cores,
        access_count=None if count == UNKNOWN_COUNT else count,
        file_bytes=path.stat().st_size,
        codec=codec,
    )


# --------------------------------------------------------------------- #
# Chunk index sidecar
# --------------------------------------------------------------------- #
#: Suffix appended to a trace path to name its chunk-index sidecar.
INDEX_SUFFIX = ".rpti"
INDEX_MAGIC = b"RPTI"
INDEX_VERSION = 1
#: magic | version u16 | flags u16 | chunk_records u32 | access_count u64
#: | num_entries u64
INDEX_HEADER = struct.Struct("<4sHHIQQ")
#: start_record u64 | absolute file offset of the chunk's codec member u64
INDEX_ENTRY = struct.Struct("<QQ")


def index_path_for(trace_path: PathLike) -> Path:
    """The sidecar path holding the chunk index of ``trace_path``."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.name + INDEX_SUFFIX)


@dataclass(frozen=True)
class ChunkIndex:
    """Maps record indices to file offsets of per-chunk codec members.

    Entry ``i`` says: the member starting at file offset ``offsets[i]``
    decodes to records ``[starts[i], starts[i+1])`` (the last entry runs to
    ``access_count``).  Written as a sidecar by :class:`BinaryTraceWriter`
    and reconstructable for files that predate the sidecar (see
    :meth:`reconstruct`); consumed by the seekable readers in
    :mod:`repro.sampling.seekable`.
    """

    codec: str
    access_count: int
    chunk_records: int
    #: Record index of the first record of each chunk, ascending.
    starts: Tuple[int, ...]
    #: Absolute file offset of each chunk's codec member.
    offsets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.offsets):
            raise ValueError("starts and offsets must have equal length")
        if list(self.starts) != sorted(set(self.starts)):
            raise ValueError("chunk starts must be strictly ascending")

    def __len__(self) -> int:
        return len(self.starts)

    def chunk_containing(self, record_index: int) -> int:
        """Index of the chunk entry holding ``record_index``."""
        if not self.starts:
            raise ValueError("empty chunk index has no chunks")
        if not 0 <= record_index < self.access_count:
            raise IndexError(
                f"record {record_index} outside [0, {self.access_count})"
            )
        return bisect.bisect_right(self.starts, record_index) - 1

    def chunk_records_of(self, chunk: int) -> int:
        """Number of records the ``chunk``-th member decodes to."""
        stop = (self.starts[chunk + 1] if chunk + 1 < len(self.starts)
                else self.access_count)
        return stop - self.starts[chunk]

    # ------------------------------------------------------------------ #
    def save(self, trace_path: PathLike) -> Path:
        """Write the sidecar next to ``trace_path``; returns its path."""
        path = index_path_for(trace_path)
        blob = [INDEX_HEADER.pack(
            INDEX_MAGIC, INDEX_VERSION, _CODEC_FLAGS[self.codec],
            self.chunk_records, self.access_count, len(self.starts),
        )]
        blob.extend(INDEX_ENTRY.pack(start, offset)
                    for start, offset in zip(self.starts, self.offsets))
        path.write_bytes(b"".join(blob))
        return path

    @classmethod
    def load(cls, trace_path: PathLike) -> Optional["ChunkIndex"]:
        """Load and validate the sidecar of ``trace_path``.

        Returns ``None`` when the sidecar is missing, corrupt, or stale
        (its access count or codec disagrees with the trace header) -- the
        caller then falls back to :meth:`reconstruct`.
        """
        sidecar = index_path_for(trace_path)
        try:
            blob = sidecar.read_bytes()
            info = read_header(trace_path)
        except (OSError, TraceFormatError):
            return None
        if len(blob) < INDEX_HEADER.size:
            return None
        magic, version, flags, chunk_records, count, entries = (
            INDEX_HEADER.unpack_from(blob)
        )
        if (magic != INDEX_MAGIC or version > INDEX_VERSION
                or len(blob) != INDEX_HEADER.size + entries * INDEX_ENTRY.size):
            return None
        codec = _codec_from_flags(flags, trace_path)
        if codec != info.codec or info.access_count != count:
            return None  # stale: the trace was rewritten since
        pairs = list(INDEX_ENTRY.iter_unpack(blob[INDEX_HEADER.size:]))
        starts = tuple(p[0] for p in pairs)
        offsets = tuple(p[1] for p in pairs)
        if offsets and (offsets[0] < HEADER.size
                        or offsets[-1] >= info.file_bytes):
            return None
        try:
            return cls(codec=codec, access_count=count,
                       chunk_records=chunk_records, starts=starts,
                       offsets=offsets)
        except ValueError:
            return None

    @classmethod
    def reconstruct(cls, trace_path: PathLike) -> "ChunkIndex":
        """Rebuild the index of a trace written without a sidecar.

        Uncompressed traces index in O(1) (records are fixed-size, offsets
        are arithmetic).  Compressed traces are scanned once for member
        boundaries (cheap: decompression without record construction); a
        legacy single-member file naturally yields a one-entry index, which
        window readers treat as "no interior seek points".
        """
        info = read_header(trace_path)
        if info.access_count is None:
            raise TraceFormatError(
                "cannot index a non-finalized trace (unknown access count)",
                path=trace_path,
            )
        count = info.access_count
        if info.codec == CODEC_NONE:
            starts = tuple(range(0, count, DEFAULT_CHUNK_RECORDS))
            offsets = tuple(HEADER.size + s * RECORD.size for s in starts)
            return cls(codec=info.codec, access_count=count,
                       chunk_records=DEFAULT_CHUNK_RECORDS, starts=starts,
                       offsets=offsets)
        starts_list: List[int] = []
        offsets_list: List[int] = []
        factory = _decompressobj_factory(info.codec, trace_path)
        with Path(trace_path).open("rb") as handle:
            handle.seek(HEADER.size)
            member_offset = HEADER.size
            records_seen = 0
            decomp = None
            member_bytes = 0
            pending = b""
            while True:
                chunk = pending or handle.read(1 << 20)
                pending = b""
                if not chunk:
                    break
                if decomp is None:
                    decomp = factory()
                    starts_list.append(records_seen)
                    offsets_list.append(member_offset)
                    member_bytes = 0
                consumed = len(chunk)
                member_bytes += len(decomp.decompress(chunk))
                if decomp.eof:
                    unused = decomp.unused_data
                    consumed -= len(unused)
                    records_seen += member_bytes // RECORD.size
                    pending = unused
                    decomp = None
                member_offset += consumed
            if decomp is not None:
                raise TraceFormatError(
                    "truncated compression member while indexing",
                    path=trace_path,
                )
        return cls(codec=info.codec, access_count=count,
                   chunk_records=DEFAULT_CHUNK_RECORDS,
                   starts=tuple(starts_list), offsets=tuple(offsets_list))

    @classmethod
    def ensure(cls, trace_path: PathLike, save: bool = True) -> "ChunkIndex":
        """The index of ``trace_path``: loaded, else reconstructed (+saved)."""
        index = cls.load(trace_path)
        if index is not None:
            return index
        index = cls.reconstruct(trace_path)
        if save:
            try:
                index.save(trace_path)
            except OSError:
                pass  # read-only directory: the in-memory index still works
        return index


class BinaryTraceWriter:
    """Stream accesses into a binary trace file; a context manager.

    Each buffered chunk is written as an independent codec member and its
    ``(first record, file offset)`` pair is recorded; on a clean close the
    pairs become the :class:`ChunkIndex` sidecar, so readers can open a
    window anywhere in the trace without decoding the prefix.

    Parameters
    ----------
    path:
        Destination file.
    num_cores:
        Core count recorded in the header (0 = unspecified).
    compress:
        Compress the record payload (the header stays uncompressed).
    compresslevel:
        Codec compression level; ``None`` picks the codec default (gzip 6 --
        trades a slightly slower write for ~15% smaller files than level 1 --
        or zstd 3).
    codec:
        Payload codec (:data:`CODECS`); ``None`` derives it from ``compress``
        (gzip when true).  ``"zstd"`` requires a zstd implementation.
    write_index:
        Write the :class:`ChunkIndex` sidecar on a clean close.
    """

    def __init__(self, path: PathLike, num_cores: int = 0,
                 compress: bool = True,
                 compresslevel: Optional[int] = None,
                 codec: Optional[str] = None,
                 write_index: bool = True) -> None:
        if num_cores < 0:
            raise ValueError("num_cores must be non-negative")
        if codec is None:
            codec = CODEC_GZIP if compress else CODEC_NONE
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r}; known: {CODECS}")
        if codec == CODEC_ZSTD:
            _require_zstd(path)
        self._path = Path(path)
        self._num_cores = num_cores
        self._codec = codec
        self._compresslevel = (compresslevel if compresslevel is not None
                               else _DEFAULT_LEVELS.get(codec, 0))
        self._write_index = write_index
        self._raw: Optional[IO[bytes]] = None
        self._buffer: List[bytes] = []
        self._count = 0
        self._index_starts: List[int] = []
        self._index_offsets: List[int] = []

    def __enter__(self) -> "BinaryTraceWriter":
        self._raw = self._path.open("wb")
        self._raw.write(self._header(UNKNOWN_COUNT))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only finalize the header on a clean exit: an aborted stream keeps
        # the UNKNOWN_COUNT sentinel, so a partially-written file can never
        # pass for a complete trace (``trace info`` reports it as
        # non-finalized).
        self.close(finalize=exc_type is None)

    def _header(self, count: int) -> bytes:
        flags = _CODEC_FLAGS[self._codec]
        return HEADER.pack(MAGIC, VERSION, flags, self._num_cores, count)

    def write(self, access: MemoryAccess) -> None:
        """Append one access."""
        if self._raw is None:
            raise RuntimeError(
                "BinaryTraceWriter must be used as a context manager"
            )
        if not (0 <= access.address <= _MAX_U64
                and 0 <= access.pc <= _MAX_U64
                and 0 <= access.timestamp <= _MAX_U64):
            raise TraceFormatError(
                f"field outside the unsigned 64-bit range, not "
                f"representable: {access!r}", path=self._path,
            )
        if not 0 <= access.core_id <= _MAX_U16:
            raise TraceFormatError(
                f"core_id {access.core_id} outside the unsigned 16-bit "
                f"range", path=self._path,
            )
        self._buffer.append(RECORD.pack(
            access.address, access.pc, access.timestamp, access.core_id,
            1 if access.access_type is AccessType.WRITE else 0,
        ))
        self._count += 1
        if len(self._buffer) >= DEFAULT_CHUNK_RECORDS:
            self._flush()

    def write_all(self, accesses: Iterable[MemoryAccess]) -> None:
        """Append every access from an iterable, chunk by chunk."""
        for access in accesses:
            self.write(access)

    @property
    def count(self) -> int:
        """Number of accesses written so far."""
        return self._count

    def _flush(self) -> None:
        if not self._buffer:
            return
        self._index_starts.append(self._count - len(self._buffer))
        self._index_offsets.append(self._raw.tell())
        blob = b"".join(self._buffer)
        self._raw.write(_compress_chunk(blob, self._codec,
                                        self._compresslevel, self._path))
        self._buffer.clear()

    def close(self, finalize: bool = True) -> None:
        """Finish the payload and patch the final access count in place.

        With ``finalize=False`` the header keeps the :data:`UNKNOWN_COUNT`
        sentinel, marking the stream as aborted/incomplete (and no chunk
        index is written).
        """
        if self._raw is None:
            return
        self._flush()
        if finalize and self._raw.seekable():
            self._raw.seek(0)
            self._raw.write(self._header(self._count))
            if self._write_index:
                try:
                    ChunkIndex(
                        codec=self._codec, access_count=self._count,
                        chunk_records=DEFAULT_CHUNK_RECORDS,
                        starts=tuple(self._index_starts),
                        offsets=tuple(self._index_offsets),
                    ).save(self._path)
                except OSError:
                    # The sidecar is an optional accelerator (readers
                    # reconstruct it on demand); failing to write it must
                    # not fail the completed trace write.
                    pass
        self._raw.close()
        self._raw = None


class BinaryTraceReader:
    """Iterate over a binary trace file; re-iterable and streaming.

    Iterating never materializes more than one chunk
    (:data:`DEFAULT_CHUNK_RECORDS` records) at a time.  For random access
    into uncompressed traces see
    :class:`repro.sampling.seekable.MmapTraceReader`; the :meth:`read_window`
    here is the streaming fallback (it skips the prefix without constructing
    records, but still reads through it).
    """

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def info(self) -> BinaryTraceInfo:
        """The decoded file header."""
        return read_header(self._path)

    def _open_payload(self) -> "tuple[IO[bytes], IO[bytes]]":
        """Open the record payload; returns ``(payload, raw)`` for closing."""
        info = read_header(self._path)  # validates magic/version
        raw = self._path.open("rb")
        raw.seek(HEADER.size)
        if info.codec == CODEC_GZIP:
            return gzip.GzipFile(fileobj=raw, mode="rb"), raw
        if info.codec == CODEC_ZSTD:
            return _ZstdMemberStream(raw, self._path), raw
        return raw, raw

    def iter_chunks(self, chunk_records: int = DEFAULT_CHUNK_RECORDS,
                    ) -> Iterator[List[MemoryAccess]]:
        """Yield the trace as lists of at most ``chunk_records`` accesses."""
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        chunk_bytes = chunk_records * RECORD.size
        payload, raw = self._open_payload()
        try:
            pending = b""
            while True:
                blob = payload.read(chunk_bytes)
                if not blob:
                    break
                if pending:
                    blob = pending + blob
                    pending = b""
                trailing = len(blob) % RECORD.size
                if trailing:
                    pending = blob[-trailing:]
                    blob = blob[:-trailing]
                yield _decode_records(blob)
            if pending:
                raise TraceFormatError(
                    f"truncated binary trace: {len(pending)} trailing bytes "
                    f"do not form a whole {RECORD.size}-byte record",
                    path=self._path,
                )
        finally:
            payload.close()
            raw.close()

    def __iter__(self) -> Iterator[MemoryAccess]:
        for chunk in self.iter_chunks():
            yield from chunk

    def read_all(self) -> List[MemoryAccess]:
        """Read the whole trace into a list.

        Decodes the payload in one pass (a transient second copy of the
        packed bytes, ~27 MB per million accesses); use :meth:`iter_chunks`
        when even that must not be held at once.
        """
        payload, raw = self._open_payload()
        try:
            blob = payload.read()
        finally:
            payload.close()
            raw.close()
        if len(blob) % RECORD.size:
            raise TraceFormatError(
                f"truncated binary trace: {len(blob) % RECORD.size} trailing "
                f"bytes do not form a whole {RECORD.size}-byte record",
                path=self._path,
            )
        return _decode_records(blob)

    def read_window(self, start: int, stop: int) -> List[MemoryAccess]:
        """Records ``[start, stop)``, skipping the prefix without decoding.

        The prefix is still *read* (and decompressed, for compressed
        payloads) -- this is the sequential fallback.  The seekable readers
        in :mod:`repro.sampling.seekable` open windows in O(window) instead.
        """
        if start < 0 or stop < start:
            raise ValueError("need 0 <= start <= stop")
        payload, raw = self._open_payload()
        try:
            skip = start * RECORD.size
            if payload is raw:
                raw.seek(HEADER.size + skip)
            else:
                while skip > 0:
                    blob = payload.read(min(skip, 1 << 20))
                    if not blob:
                        return []
                    skip -= len(blob)
            blob = payload.read((stop - start) * RECORD.size)
        finally:
            payload.close()
            raw.close()
        return _decode_records(blob[:len(blob) - len(blob) % RECORD.size])


class _ZstdMemberStream:
    """Minimal read-only file object over concatenated zstd frames."""

    def __init__(self, raw: IO[bytes], path: PathLike) -> None:
        self._raw = raw
        self._path = path
        self._factory = _decompressobj_factory(CODEC_ZSTD, path)
        self._decomp = None
        self._buffer = b""
        self._eof = False

    def read(self, size: int = -1) -> bytes:
        parts = []
        remaining = size if size >= 0 else None
        while remaining is None or remaining > 0:
            if self._buffer:
                take = (len(self._buffer) if remaining is None
                        else min(remaining, len(self._buffer)))
                parts.append(self._buffer[:take])
                self._buffer = self._buffer[take:]
                if remaining is not None:
                    remaining -= take
                continue
            if self._eof:
                break
            chunk = self._raw.read(1 << 20)
            if not chunk:
                if self._decomp is not None:
                    raise TraceFormatError(
                        "truncated zstd frame in binary trace payload",
                        path=self._path,
                    )
                self._eof = True
                break
            while chunk:
                if self._decomp is None:
                    self._decomp = self._factory()
                self._buffer += self._decomp.decompress(chunk)
                if self._decomp.eof:
                    chunk = self._decomp.unused_data
                    self._decomp = None
                else:
                    chunk = b""
        return b"".join(parts)

    def close(self) -> None:
        self._decomp = None
        self._buffer = b""


def write_trace_bin(path: PathLike, accesses: Iterable[MemoryAccess],
                    num_cores: int = 0, compress: bool = True,
                    codec: Optional[str] = None,
                    write_index: bool = True) -> int:
    """Write all accesses to ``path`` in binary form; returns the count."""
    with BinaryTraceWriter(path, num_cores=num_cores, compress=compress,
                           codec=codec, write_index=write_index) as writer:
        writer.write_all(accesses)
        return writer.count


def read_trace_bin(path: PathLike) -> List[MemoryAccess]:
    """Read a whole binary trace from ``path``."""
    return BinaryTraceReader(path).read_all()


__all__ = [
    "BinaryTraceInfo",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "ChunkIndex",
    "CODECS",
    "CODEC_GZIP",
    "CODEC_NONE",
    "CODEC_ZSTD",
    "DEFAULT_CHUNK_RECORDS",
    "FLAG_GZIP",
    "FLAG_ZSTD",
    "INDEX_SUFFIX",
    "MAGIC",
    "UNKNOWN_COUNT",
    "VERSION",
    "available_codecs",
    "decompress_members",
    "index_path_for",
    "is_binary_trace",
    "read_header",
    "read_trace_bin",
    "write_trace_bin",
    "zstd_available",
]
