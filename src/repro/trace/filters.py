"""Trace stream transformations.

These generators operate lazily so multi-million-access synthetic traces never
need to be materialized unless a test explicitly asks for a list.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.trace.record import MemoryAccess


def limit_trace(trace: Iterable[MemoryAccess], max_accesses: int) -> Iterator[MemoryAccess]:
    """Yield at most ``max_accesses`` accesses from ``trace``.

    Never pulls more than ``max_accesses`` items from the underlying
    iterable, so a limited pipeline stops generation work exactly at the
    limit.
    """
    if max_accesses < 0:
        raise ValueError("max_accesses must be non-negative")
    if max_accesses == 0:
        return
    for index, access in enumerate(trace, start=1):
        yield access
        if index >= max_accesses:
            return


def split_warmup(
    trace: Sequence[MemoryAccess], warmup_fraction: float
) -> Tuple[List[MemoryAccess], List[MemoryAccess]]:
    """Split a trace into (warmup, measurement) portions.

    The paper uses two thirds of each trace for cache warm-up; the default
    experiment harness follows that convention via this helper.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    split = int(len(trace) * warmup_fraction)
    return list(trace[:split]), list(trace[split:])


def interleave_traces(traces: Sequence[Iterable[MemoryAccess]]) -> Iterator[MemoryAccess]:
    """Merge per-core traces into one stream ordered by timestamp.

    Ties are broken by the position of the source trace, which keeps the merge
    deterministic.  This models the multiplexing of the 16 cores' L2-miss
    streams at the DRAM cache controller.
    """
    iterators = [iter(t) for t in traces]
    heap: List[Tuple[int, int, int, MemoryAccess]] = []
    for source_index, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heap.append((first.timestamp, source_index, 0, first))
    heapq.heapify(heap)
    sequence = len(heap)
    while heap:
        _, source_index, _, access = heapq.heappop(heap)
        yield access
        following = next(iterators[source_index], None)
        if following is not None:
            heapq.heappush(
                heap, (following.timestamp, source_index, sequence, following)
            )
            sequence += 1
