"""Reading and writing traces in a simple line-oriented text format.

Each line is ``timestamp core_id access_type pc address`` with addresses and
PCs in hexadecimal.  Lines starting with ``#`` are comments.  The format is
deliberately trivial so traces can be produced or inspected with standard
text tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.trace.record import AccessType, MemoryAccess

PathLike = Union[str, Path]

_TYPE_TO_CODE = {AccessType.READ: "R", AccessType.WRITE: "W"}
_CODE_TO_TYPE = {"R": AccessType.READ, "W": AccessType.WRITE}


def format_access(access: MemoryAccess) -> str:
    """Render one access as a trace line."""
    code = _TYPE_TO_CODE[access.access_type]
    return (
        f"{access.timestamp} {access.core_id} {code} "
        f"{access.pc:#x} {access.address:#x}"
    )


def parse_access(line: str) -> MemoryAccess:
    """Parse one trace line back into a :class:`MemoryAccess`.

    Raises ``ValueError`` for malformed lines.
    """
    parts = line.split()
    if len(parts) != 5:
        raise ValueError(f"malformed trace line (expected 5 fields): {line!r}")
    timestamp_str, core_str, code, pc_str, addr_str = parts
    if code not in _CODE_TO_TYPE:
        raise ValueError(f"unknown access type code {code!r} in line {line!r}")
    return MemoryAccess(
        timestamp=int(timestamp_str),
        core_id=int(core_str),
        access_type=_CODE_TO_TYPE[code],
        pc=int(pc_str, 16),
        address=int(addr_str, 16),
    )


class TraceWriter:
    """Write accesses to a trace file; usable as a context manager."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._handle = None
        self._count = 0

    def __enter__(self) -> "TraceWriter":
        self._handle = self._path.open("w", encoding="utf-8")
        self._handle.write("# repro trace v1: timestamp core type pc address\n")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def write(self, access: MemoryAccess) -> None:
        """Append one access."""
        if self._handle is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        self._handle.write(format_access(access) + "\n")
        self._count += 1

    def write_all(self, accesses: Iterable[MemoryAccess]) -> None:
        """Append every access from an iterable."""
        for access in accesses:
            self.write(access)

    @property
    def count(self) -> int:
        """Number of accesses written so far."""
        return self._count

    def close(self) -> None:
        """Close the underlying file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TraceReader:
    """Iterate over the accesses stored in a trace file."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    def __iter__(self) -> Iterator[MemoryAccess]:
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                yield parse_access(line)

    def read_all(self) -> List[MemoryAccess]:
        """Read the whole trace into a list."""
        return list(self)


def write_trace(path: PathLike, accesses: Iterable[MemoryAccess]) -> int:
    """Write all accesses to ``path``; returns the number written."""
    with TraceWriter(path) as writer:
        writer.write_all(accesses)
        return writer.count


def read_trace(path: PathLike) -> List[MemoryAccess]:
    """Read all accesses from ``path``."""
    return TraceReader(path).read_all()
