"""Reading and writing traces in a simple line-oriented text format.

Each line is ``timestamp core_id access_type pc address`` with addresses and
PCs in hexadecimal.  Lines starting with ``#`` are comments; blank lines and
trailing whitespace are ignored, and the ``R``/``W`` access-type codes are
accepted in either case.  The format is deliberately trivial so traces can be
produced or inspected with standard text tools.  Paths ending in ``.gz``
(or files starting with the gzip magic) are compressed/decompressed
transparently.

Malformed lines raise :class:`repro.trace.errors.TraceFormatError` carrying
the file name and line number.  For the compact binary format used by the
trace store see :mod:`repro.trace.binfmt`.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.trace.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

PathLike = Union[str, Path]

_TYPE_TO_CODE = {AccessType.READ: "R", AccessType.WRITE: "W"}
_CODE_TO_TYPE = {
    "R": AccessType.READ, "W": AccessType.WRITE,
    "r": AccessType.READ, "w": AccessType.WRITE,
}

#: Two-byte magic prefix of gzip streams.
GZIP_MAGIC = b"\x1f\x8b"


def is_gzip_path(path: PathLike) -> bool:
    """True when ``path`` holds (or, by suffix, should hold) gzip data."""
    path = Path(path)
    if path.suffix == ".gz":
        return True
    try:
        with path.open("rb") as handle:
            return handle.read(2) == GZIP_MAGIC
    except OSError:
        return False


def open_text(path: PathLike, mode: str = "r") -> IO[str]:
    """Open a possibly-gzipped file in text mode."""
    path = Path(path)
    compressed = path.suffix == ".gz" if "w" in mode else is_gzip_path(path)
    if compressed:
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def format_access(access: MemoryAccess) -> str:
    """Render one access as a trace line."""
    code = _TYPE_TO_CODE[access.access_type]
    return (
        f"{access.timestamp} {access.core_id} {code} "
        f"{access.pc:#x} {access.address:#x}"
    )


def parse_access(line: str, path: Optional[PathLike] = None,
                 line_number: Optional[int] = None) -> MemoryAccess:
    """Parse one trace line back into a :class:`MemoryAccess`.

    Raises :class:`TraceFormatError` (a ``ValueError``) for malformed lines,
    naming ``path`` and ``line_number`` when provided.
    """
    parts = line.split()
    if len(parts) != 5:
        raise TraceFormatError(
            f"malformed trace line (expected 5 fields, got {len(parts)}): "
            f"{line.strip()!r}", path=path, line=line_number,
        )
    timestamp_str, core_str, code, pc_str, addr_str = parts
    access_type = _CODE_TO_TYPE.get(code)
    if access_type is None:
        raise TraceFormatError(
            f"unknown access type code {code!r} (expected R or W) in line "
            f"{line.strip()!r}", path=path, line=line_number,
        )
    try:
        return MemoryAccess(
            timestamp=int(timestamp_str),
            core_id=int(core_str),
            access_type=access_type,
            pc=int(pc_str, 16),
            address=int(addr_str, 16),
        )
    except ValueError as exc:
        raise TraceFormatError(
            f"bad field in trace line {line.strip()!r}: {exc}",
            path=path, line=line_number,
        ) from None


class TraceWriter:
    """Write accesses to a trace file; usable as a context manager."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._handle: Optional[IO[str]] = None
        self._count = 0

    def __enter__(self) -> "TraceWriter":
        self._handle = open_text(self._path, "w")
        self._handle.write("# repro trace v1: timestamp core type pc address\n")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def write(self, access: MemoryAccess) -> None:
        """Append one access."""
        if self._handle is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        self._handle.write(format_access(access) + "\n")
        self._count += 1

    def write_all(self, accesses: Iterable[MemoryAccess]) -> None:
        """Append every access from an iterable."""
        for access in accesses:
            self.write(access)

    @property
    def count(self) -> int:
        """Number of accesses written so far."""
        return self._count

    def close(self) -> None:
        """Close the underlying file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TraceReader:
    """Iterate over the accesses stored in a (possibly gzipped) trace file."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    def __iter__(self) -> Iterator[MemoryAccess]:
        with open_text(self._path, "r") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                yield parse_access(line, path=self._path,
                                   line_number=line_number)

    def read_all(self) -> List[MemoryAccess]:
        """Read the whole trace into a list."""
        return list(self)


def write_trace(path: PathLike, accesses: Iterable[MemoryAccess]) -> int:
    """Write all accesses to ``path``; returns the number written."""
    with TraceWriter(path) as writer:
        writer.write_all(accesses)
        return writer.count


def read_trace(path: PathLike) -> List[MemoryAccess]:
    """Read all accesses from ``path``."""
    return TraceReader(path).read_all()
