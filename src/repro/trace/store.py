"""On-disk trace store: generate every synthetic trace once, ever.

A :class:`TraceStore` is a content-addressed directory of binary traces
(:mod:`repro.trace.binfmt`) keyed by the full identity of a synthetic trace:
``(profile, scale, num_cores, seed, num_accesses)`` plus the generator
algorithm version (:data:`repro.workloads.generator.GENERATOR_VERSION`).
Because synthetic traces are deterministic functions of that key, a store
entry is interchangeable with regeneration -- so sweeps, ProcessPool workers,
benchmark sessions, and CI runs all share one copy per distinct trace instead
of regenerating it (generation dominates sweep wall-clock; loading the binary
form is several times faster).

Layout and lifecycle:

* Location: the ``REPRO_TRACE_STORE`` environment variable, else
  ``$XDG_CACHE_HOME/repro/traces`` (``~/.cache/repro/traces``).  Setting
  ``REPRO_TRACE_STORE`` to ``off``/``none``/``0`` disables the store
  (the executor then falls back to in-memory generation only).
* Writes are atomic (temp file + :func:`os.replace`), so concurrent sweeps
  and worker pools can share a store directory without coordination; when
  two processes race to create the same entry, both write identical bytes
  and the last rename wins.
* Keys embed a hash of every profile field and the generator version, so a
  change to a workload's statistics or to the generator algorithm can never
  replay a stale trace.
* ``max_bytes`` budget: least-recently-*used* entries (load hits refresh an
  entry's mtime) are evicted after each write.  The default budget is
  :data:`DEFAULT_MAX_BYTES` (override with the ``REPRO_TRACE_STORE_BYTES``
  environment variable; ``0``/``none``/``unlimited`` disables the budget), so
  a long-lived dev machine can no longer grow the store without bound.
* Each entry's chunk-index sidecar (``.rptr.rpti``, see
  :class:`repro.trace.binfmt.ChunkIndex`) lives and dies with the entry:
  written through the same atomic rename, removed by eviction, counted by
  the budget.  ``store.gc()`` additionally sweeps orphaned sidecars and
  stale temp files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import re
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.obs.core import current as obs_current
from repro.trace.binfmt import (INDEX_SUFFIX, BinaryTraceReader,
                                BinaryTraceWriter, index_path_for,
                                read_header)
from repro.trace.errors import TraceFormatError
from repro.trace.record import MemoryAccess
from repro.utils.units import parse_size
from repro.workloads.generator import GENERATOR_VERSION
from repro.workloads.profile import WorkloadProfile

PathLike = Union[str, Path]

#: ``REPRO_TRACE_STORE`` values that disable the store entirely.
DISABLE_VALUES = frozenset({"off", "none", "0", "disabled", "no"})

#: Environment variable overriding the store directory (or disabling it).
ENV_VAR = "REPRO_TRACE_STORE"

#: Environment variable overriding the default size budget (a size string;
#: ``0``/``none``/``unlimited`` means no budget).
BYTES_ENV_VAR = "REPRO_TRACE_STORE_BYTES"

#: Default size budget of a store (2 GiB): large enough that benchmark and
#: sweep working sets never thrash, small enough that a dev machine's cache
#: directory stays bounded.
DEFAULT_MAX_BYTES = 2 * 1024 ** 3

_SUFFIX = ".rptr"

#: Temp files younger than this are presumed to belong to a live writer and
#: are never swept by :meth:`TraceStore.gc`.
_STALE_TMP_SECONDS = 60 * 60

#: Sentinel distinguishing "use the default budget" from an explicit None.
_BUDGET_UNSET = object()


def default_root() -> Path:
    """The default store directory (XDG cache convention)."""
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "traces"


def configured_root() -> Optional[Path]:
    """The store directory per the environment; ``None`` when disabled."""
    value = os.environ.get(ENV_VAR, "").strip()
    if value.lower() in DISABLE_VALUES and value != "":
        return None
    if value:
        return Path(value)
    return default_root()


def default_max_bytes() -> Optional[int]:
    """The store budget per the environment; ``None`` means unlimited.

    A malformed ``REPRO_TRACE_STORE_BYTES`` falls back to the default
    budget: a bad environment variable must never crash sweeps (the store
    is an optional cache, and the conservative reading of a broken budget
    is "budgeted").
    """
    value = os.environ.get(BYTES_ENV_VAR, "").strip()
    if not value:
        return DEFAULT_MAX_BYTES
    if value.lower() in DISABLE_VALUES or value.lower() == "unlimited":
        return None
    try:
        budget = parse_size(value)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return budget if budget > 0 else None


def trace_key_string(profile: WorkloadProfile, scale: int, num_cores: int,
                     seed: int, num_accesses: int) -> str:
    """The canonical, human-readable identity string of a synthetic trace.

    Every profile field participates (sizes normalized to bytes), plus the
    generator version and the run parameters; the store key is a hash of
    this string.
    """
    parts = [f"generator=v{GENERATOR_VERSION}"]
    for field in dataclasses.fields(profile):
        value = getattr(profile, field.name)
        if field.name == "working_set":
            value = parse_size(value)
        parts.append(f"{field.name}={value!r}")
    parts.append(f"scale={scale}")
    parts.append(f"num_cores={num_cores}")
    parts.append(f"seed={seed}")
    parts.append(f"num_accesses={num_accesses}")
    return "|".join(parts)


@dataclass
class StoreStats:
    """Counters of one :class:`TraceStore` instance's activity."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0


class TraceStore:
    """A directory of binary traces shared across processes and runs.

    Parameters
    ----------
    root:
        Store directory; defaults to :func:`configured_root` (and raises
        ``ValueError`` if the environment disabled the store).
    max_bytes:
        Size budget; exceeding it after a write evicts least-recently-used
        entries until back under budget.  Defaults to
        :func:`default_max_bytes` (the ``REPRO_TRACE_STORE_BYTES``
        environment variable, else :data:`DEFAULT_MAX_BYTES`); pass ``None``
        for an explicitly unbounded store.
    compress:
        Gzip new entries (recommended; ~6x smaller).
    """

    def __init__(self, root: Optional[PathLike] = None,
                 max_bytes=_BUDGET_UNSET,
                 compress: bool = True) -> None:
        if root is None:
            root = configured_root()
            if root is None:
                raise ValueError(
                    f"trace store disabled via {ENV_VAR}; pass an explicit "
                    f"root to force one"
                )
        self.root = Path(root)
        if max_bytes is _BUDGET_UNSET:
            max_bytes = default_max_bytes()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self.compress = compress
        self.stats = StoreStats()

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def key(self, profile: WorkloadProfile, scale: int, num_cores: int,
            seed: int, num_accesses: int) -> str:
        """The store key (filename stem) for one synthetic trace identity."""
        identity = trace_key_string(profile, scale, num_cores, seed,
                                    num_accesses)
        digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:32]
        slug = re.sub(r"[^a-z0-9]+", "-", profile.name.lower()).strip("-")
        return f"{slug or 'trace'}-{digest}"

    def path_for(self, key: str) -> Path:
        """The file a given key is (or would be) stored at."""
        return self.root / f"{key}{_SUFFIX}"

    def contains(self, key: str) -> bool:
        """True when the store holds an entry for ``key``."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def open_reader(self, key: str) -> Optional[BinaryTraceReader]:
        """A streaming reader for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's recency (LRU eviction order).
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            obs_current().counter("trace_store_misses")
            return None
        try:
            read_header(path)  # reject corrupt/foreign files up front
        except TraceFormatError:
            self.stats.misses += 1
            obs_current().counter("trace_store_misses")
            self._unlink_entry(path)
            return None
        self.stats.hits += 1
        obs_current().counter("trace_store_hits")
        os.utime(path)
        return BinaryTraceReader(path)

    def load(self, key: str) -> Optional[List[MemoryAccess]]:
        """Materialize the trace stored under ``key``; ``None`` on a miss.

        An entry whose *payload* turns out to be corrupt (truncated gzip
        stream, garbage record bytes -- e.g. a partially copied store
        directory) is quarantined like a header-level corruption: the file
        is dropped and the lookup counts as a miss, so callers regenerate
        instead of crashing.
        """
        reader = self.open_reader(key)
        if reader is None:
            return None
        try:
            return reader.read_all()
        except (OSError, EOFError, ValueError, IndexError, zlib.error):
            self.stats.hits -= 1
            self.stats.misses += 1
            obs_current().counter("trace_store_hits", -1)
            obs_current().counter("trace_store_misses")
            self._unlink_entry(self.path_for(key))
            return None

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def put_chunks(self, key: str,
                   chunks: Iterable[List[MemoryAccess]],
                   num_cores: int = 0,
                   collect: bool = False) -> Optional[List[MemoryAccess]]:
        """Stream chunked accesses into the store entry for ``key``.

        The entry is written to a temp file and atomically renamed, so
        readers never observe partial traces.  With ``collect=True`` the
        written accesses are also accumulated and returned (the executor's
        write-through path: one pass generates, persists, and materializes).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        tmp = final.with_suffix(f"{_SUFFIX}.tmp.{os.getpid()}")
        collected: Optional[List[MemoryAccess]] = [] if collect else None
        try:
            with BinaryTraceWriter(tmp, num_cores=num_cores,
                                   compress=self.compress) as writer:
                for chunk in chunks:
                    writer.write_all(chunk)
                    if collected is not None:
                        collected.extend(chunk)
            os.replace(tmp, final)
            # The chunk-index sidecar follows its entry through the rename
            # (readers validate it against the trace header, so a lost or
            # torn sidecar is only ever a reconstruction, never corruption).
            if index_path_for(tmp).exists():
                os.replace(index_path_for(tmp), index_path_for(final))
        finally:
            tmp.unlink(missing_ok=True)
            index_path_for(tmp).unlink(missing_ok=True)
        self.stats.writes += 1
        obs_current().counter("trace_store_writes")
        self._evict_over_budget(protect=final)
        return collected

    def put(self, key: str, accesses: Iterable[MemoryAccess],
            num_cores: int = 0) -> Path:
        """Store a whole access stream under ``key``; returns its path."""
        self.put_chunks(key, [list(accesses)], num_cores=num_cores)
        return self.path_for(key)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> List[Path]:
        """All store entries, least recently used first."""
        if not self.root.exists():
            return []
        files = [p for p in self.root.glob(f"*{_SUFFIX}") if p.is_file()]
        return sorted(files, key=lambda p: (p.stat().st_mtime, p.name))

    def __len__(self) -> int:
        return len(self.entries())

    @staticmethod
    def _entry_bytes(path: Path) -> int:
        """Size of one entry plus its chunk-index sidecar (if any)."""
        total = path.stat().st_size
        sidecar = index_path_for(path)
        if sidecar.exists():
            total += sidecar.stat().st_size
        return total

    def _unlink_entry(self, path: Path) -> int:
        """Remove one entry and its sidecar; returns bytes freed."""
        freed = 0
        for victim in (path, index_path_for(path)):
            try:
                freed += victim.stat().st_size
            except OSError:
                continue
            victim.unlink(missing_ok=True)
        return freed

    def total_bytes(self) -> int:
        """Bytes currently occupied by store entries and their sidecars."""
        return sum(self._entry_bytes(p) for p in self.entries())

    def _evict_over_budget(self, protect: Optional[Path] = None) -> int:
        if self.max_bytes is None:
            return 0
        entries = self.entries()
        total = sum(self._entry_bytes(p) for p in entries)
        freed = 0
        for path in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            reclaimed = self._unlink_entry(path)
            total -= reclaimed
            freed += reclaimed
            self.stats.evictions += 1
        return freed

    def evict_to(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Returns the number of bytes reclaimed.
        """
        previous = self.max_bytes
        self.max_bytes = max_bytes
        try:
            return self._evict_over_budget()
        finally:
            self.max_bytes = previous

    def gc(self, max_bytes=_BUDGET_UNSET) -> int:
        """Collect garbage; returns the number of bytes reclaimed.

        Three passes: (1) stale temp files from crashed writers (only
        files older than an hour -- a younger temp may belong to a live
        writer mid-``put_chunks``, whose ``os.replace`` must not be pulled
        out from under it), (2) orphaned chunk-index sidecars whose trace
        entry is gone, (3) LRU eviction down to ``max_bytes`` (defaulting
        to the store's own budget; pass ``None`` to skip the eviction
        pass).
        """
        if max_bytes is _BUDGET_UNSET:
            max_bytes = self.max_bytes
        freed = 0
        if self.root.exists():
            now = time.time()
            for stale in self.root.glob(f"*{_SUFFIX}.tmp.*"):
                try:
                    stat = stale.stat()
                    if now - stat.st_mtime < _STALE_TMP_SECONDS:
                        continue
                    stale.unlink()
                    freed += stat.st_size
                except OSError:
                    continue
            entry_names = {p.name for p in self.root.glob(f"*{_SUFFIX}")}
            for sidecar in self.root.glob(f"*{_SUFFIX}{INDEX_SUFFIX}"):
                if sidecar.name[:-len(INDEX_SUFFIX)] not in entry_names:
                    try:
                        freed += sidecar.stat().st_size
                        sidecar.unlink()
                    except OSError:
                        continue
        if max_bytes is not None:
            freed += self.evict_to(max_bytes)
        return freed

    def clear(self) -> int:
        """Remove every entry (and its sidecar); returns the number removed."""
        removed = 0
        for path in self.entries():
            self._unlink_entry(path)
            removed += 1
        return removed


__all__ = [
    "BYTES_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "DISABLE_VALUES",
    "ENV_VAR",
    "StoreStats",
    "TraceStore",
    "configured_root",
    "default_max_bytes",
    "default_root",
    "trace_key_string",
]
