"""Ingestion adapters: replay traces captured by external tools.

The simulator's native formats are the text codec (:mod:`repro.trace.io`) and
the binary codec (:mod:`repro.trace.binfmt`).  This module adapts two common
external shapes into :class:`MemoryAccess` streams so real workload traces
become first-class workloads (usable in :class:`repro.sim.spec.SweepSpec`
grids via trace-file workloads, and convertible with ``repro trace convert``):

**ChampSim-style** (``.champsim`` / ``.champsimtrace``): whitespace-separated
lines of ``pc address type [core [cycle]]``.  ``pc`` and ``address`` are hex
(``0x`` prefix optional); ``type`` is ``R``/``W``, ``L``/``S`` (load/store),
or ``0``/``1``.  When the ``cycle`` column is absent, timestamps
auto-increment in line order.  Comment lines start with ``#``.

**CSV** (``.csv``): a header row names the columns.  ``address`` is required;
``pc``, ``type``, ``core``, and ``timestamp`` are optional (missing columns
default to 0 / read / auto-increment).  Numeric cells may be decimal or
``0x``-prefixed hex.

**gem5** (``.gem5``): the text a gem5 run prints with
``--debug-flags=MemoryAccess`` redirected to a file, i.e. lines of the form
``<tick>: <object>: Read ... [Aa]ddr(ess) 0x... [size N]``.  The access verb
(``Read``/``Write`` and their packet-command spellings ``ReadReq``,
``WriteReq``, ``ReadExReq``, ``WritebackDirty``, ...) decides the access
type; the core id is recovered from a ``cpuN`` component of the object path
when present; the tick becomes the timestamp.  Debug output is noisy by
nature (other flags interleave freely), so lines that do not look like a
memory access are skipped rather than rejected -- but a file that yields *no*
accesses at all raises :class:`TraceFormatError`.

All adapters stream line by line, are gzip-transparent (``.gz``), and raise
:class:`TraceFormatError` with file and line number on malformed input.

The :data:`FORMATS` registry ties every known format name to its reader (and
writer, for the native formats); :func:`detect_format` sniffs a file, and
:func:`convert_trace` streams any readable format into any writable one.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Optional, Union

from repro.trace import binfmt, io as trace_io
from repro.trace.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

PathLike = Union[str, Path]

_CHAMPSIM_TYPES = {
    "R": AccessType.READ, "W": AccessType.WRITE,
    "r": AccessType.READ, "w": AccessType.WRITE,
    "L": AccessType.READ, "S": AccessType.WRITE,
    "l": AccessType.READ, "s": AccessType.WRITE,
    "0": AccessType.READ, "1": AccessType.WRITE,
}

_CSV_TYPES = dict(_CHAMPSIM_TYPES)
_CSV_TYPES.update({
    "read": AccessType.READ, "write": AccessType.WRITE,
    "READ": AccessType.READ, "WRITE": AccessType.WRITE,
})


def _parse_hex(field: str, what: str, path: PathLike,
               line_number: int) -> int:
    """Parse a hex number (``0x`` prefix optional)."""
    try:
        return int(field, 16)
    except ValueError:
        raise TraceFormatError(
            f"bad {what} {field!r} (expected hex)", path=path,
            line=line_number,
        ) from None


def _parse_int(field: str, what: str, path: PathLike,
               line_number: int) -> int:
    """Parse a number that may be decimal or ``0x``-prefixed hex."""
    try:
        return int(field, 0)
    except ValueError:
        raise TraceFormatError(
            f"bad {what} {field!r} (expected a decimal or 0x-hex number)",
            path=path, line=line_number,
        ) from None


def iter_champsim(path: PathLike) -> Iterator[MemoryAccess]:
    """Stream a ChampSim-style text trace (see the module docstring)."""
    timestamp = 0
    with trace_io.open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if not 3 <= len(parts) <= 5:
                raise TraceFormatError(
                    f"malformed ChampSim-style line (expected 3-5 fields, "
                    f"got {len(parts)}): {line!r}", path=path,
                    line=line_number,
                )
            pc = _parse_hex(parts[0], "pc", path, line_number)
            address = _parse_hex(parts[1], "address", path, line_number)
            access_type = _CHAMPSIM_TYPES.get(parts[2])
            if access_type is None:
                raise TraceFormatError(
                    f"unknown access type {parts[2]!r} (expected R/W, L/S, "
                    f"or 0/1)", path=path, line=line_number,
                )
            core_id = (_parse_int(parts[3], "core", path, line_number)
                       if len(parts) >= 4 else 0)
            if len(parts) == 5:
                timestamp = _parse_int(parts[4], "cycle", path, line_number)
            try:
                access = MemoryAccess(
                    address=address, pc=pc, access_type=access_type,
                    core_id=core_id, timestamp=timestamp,
                )
            except ValueError as exc:
                raise TraceFormatError(str(exc), path=path,
                                       line=line_number) from None
            yield access
            timestamp += 1


def iter_csv(path: PathLike) -> Iterator[MemoryAccess]:
    """Stream a CSV trace with a header row (see the module docstring)."""
    with trace_io.open_text(path, "r") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return
        columns = {name.strip().lower(): index
                   for index, name in enumerate(header)}
        if "address" not in columns:
            raise TraceFormatError(
                f"CSV trace needs an 'address' column; header has "
                f"{[name.strip() for name in header]}", path=path, line=1,
            )
        address_col = columns["address"]
        pc_col = columns.get("pc")
        type_col = columns.get("type")
        core_col = columns.get("core")
        timestamp_col = columns.get("timestamp")
        auto_timestamp = 0
        for line_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                cells = {
                    "address": row[address_col],
                    "pc": row[pc_col] if pc_col is not None else "0",
                    "type": row[type_col] if type_col is not None else "R",
                    "core": row[core_col] if core_col is not None else "0",
                    "timestamp": (row[timestamp_col]
                                  if timestamp_col is not None else ""),
                }
            except IndexError:
                raise TraceFormatError(
                    f"row has {len(row)} cells but the header names "
                    f"{len(header)} columns", path=path, line=line_number,
                ) from None
            access_type = _CSV_TYPES.get(cells["type"].strip())
            if access_type is None:
                raise TraceFormatError(
                    f"unknown access type {cells['type']!r}", path=path,
                    line=line_number,
                )
            if cells["timestamp"].strip():
                timestamp = _parse_int(cells["timestamp"], "timestamp",
                                       path, line_number)
            else:
                timestamp = auto_timestamp
            try:
                access = MemoryAccess(
                    address=_parse_int(cells["address"], "address", path,
                                       line_number),
                    pc=_parse_int(cells["pc"], "pc", path, line_number),
                    access_type=access_type,
                    core_id=_parse_int(cells["core"], "core", path,
                                       line_number),
                    timestamp=timestamp,
                )
            except TraceFormatError:
                raise
            except ValueError as exc:
                raise TraceFormatError(str(exc), path=path,
                                       line=line_number) from None
            yield access
            auto_timestamp += 1


# --------------------------------------------------------------------- #
# gem5 --debug-flags=MemoryAccess dumps
# --------------------------------------------------------------------- #
#: ``tick: path.to.object: rest`` -- the shape of every gem5 DPRINTF line.
_GEM5_LINE = re.compile(r"^\s*(\d+)\s*:\s*(\S+?):\s*(.*)$")
#: The address operand: ``address 0x2a``, ``addr=0x2a``, ``Addr 42``, ...
_GEM5_ADDR = re.compile(r"\b(?:address|addr)[ =:]+(0x[0-9a-fA-F]+|\d+)\b",
                        re.IGNORECASE)
#: Optional program counter some CPU debug flags include.
_GEM5_PC = re.compile(r"\bpc[ =:]+(0x[0-9a-fA-F]+|\d+)\b", re.IGNORECASE)
#: ``cpu3`` (or ``cpu03``) component of the object path names the core.
_GEM5_CPU = re.compile(r"\bcpu(\d+)\b", re.IGNORECASE)

#: First word of the line body -> access type.  Covers the plain
#: AbstractMemory verbs ("Read"/"Write") and the *request* packet-command
#: spellings cache/port debug flags print.  Response commands (ReadResp,
#: WriteResp) are deliberately absent: a dump logging both sides of a
#: transaction must not count it twice.
_GEM5_VERBS = {
    "read": AccessType.READ,
    "readreq": AccessType.READ,
    "readex": AccessType.READ,
    "readexreq": AccessType.READ,
    "readsharedreq": AccessType.READ,
    "readcleanreq": AccessType.READ,
    "ifetch": AccessType.READ,
    "swap": AccessType.WRITE,
    "write": AccessType.WRITE,
    "writereq": AccessType.WRITE,
    "writeline": AccessType.WRITE,
    "writelinereq": AccessType.WRITE,
    "writeback": AccessType.WRITE,
    "writebackdirty": AccessType.WRITE,
    "writebackclean": AccessType.WRITE,
}


def iter_gem5(path: PathLike) -> Iterator[MemoryAccess]:
    """Stream a gem5 ``--debug-flags=MemoryAccess`` text dump.

    Lines that do not parse as a memory access (other debug flags, stats
    banners, warnings) are skipped; a dump that contains no access at all is
    rejected so a wrong file does not silently become an empty trace.
    """
    count = 0
    with trace_io.open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            match = _GEM5_LINE.match(line)
            if match is None:
                continue
            tick, source, body = match.groups()
            verb = body.split(None, 1)[0] if body else ""
            access_type = _GEM5_VERBS.get(verb.rstrip(":").lower())
            if access_type is None:
                continue
            addr_match = _GEM5_ADDR.search(body)
            if addr_match is None:
                continue
            pc_match = _GEM5_PC.search(body)
            cpu_match = _GEM5_CPU.search(source)
            try:
                access = MemoryAccess(
                    address=int(addr_match.group(1), 0),
                    pc=int(pc_match.group(1), 0) if pc_match else 0,
                    access_type=access_type,
                    core_id=int(cpu_match.group(1)) if cpu_match else 0,
                    timestamp=int(tick),
                )
            except ValueError as exc:
                raise TraceFormatError(str(exc), path=path,
                                       line=line_number) from None
            yield access
            count += 1
    if count == 0:
        raise TraceFormatError(
            "no memory accesses found; expected gem5 --debug-flags="
            "MemoryAccess output (tick: object: Read/Write ... address ...)",
            path=path,
        )


# --------------------------------------------------------------------- #
# Format registry
# --------------------------------------------------------------------- #
Reader = Callable[[PathLike], Iterable[MemoryAccess]]
#: Writers take ``(path, accesses, num_cores)``; formats without core-count
#: metadata (text) simply ignore the last argument.
Writer = Callable[[PathLike, Iterable[MemoryAccess], int], int]


@dataclass(frozen=True)
class TraceFormat:
    """One entry of the trace-format registry."""

    name: str
    description: str
    reader: Reader
    #: ``None`` for read-only (ingestion) formats.
    writer: Optional[Writer] = None
    suffixes: "tuple[str, ...]" = ()

    @property
    def writable(self) -> bool:
        return self.writer is not None


def _write_text(path: PathLike, accesses: Iterable[MemoryAccess],
                num_cores: int = 0) -> int:
    return trace_io.write_trace(path, accesses)


def _write_binary(path: PathLike, accesses: Iterable[MemoryAccess],
                  num_cores: int = 0) -> int:
    return binfmt.write_trace_bin(path, accesses, num_cores=num_cores)


FORMATS: Dict[str, TraceFormat] = {
    fmt.name: fmt for fmt in (
        TraceFormat(
            name="binary",
            description="repro struct-packed binary (gzip payload)",
            reader=lambda path: binfmt.BinaryTraceReader(path),
            writer=_write_binary,
            suffixes=(".rptr", ".bin"),
        ),
        TraceFormat(
            name="text",
            description="repro line-oriented text",
            reader=lambda path: trace_io.TraceReader(path),
            writer=_write_text,
            suffixes=(".trace", ".txt"),
        ),
        TraceFormat(
            name="champsim",
            description="ChampSim-style text (pc address type [core [cycle]])",
            reader=iter_champsim,
            suffixes=(".champsim", ".champsimtrace"),
        ),
        TraceFormat(
            name="csv",
            description="CSV with a header row (address[,pc,type,core,timestamp])",
            reader=iter_csv,
            suffixes=(".csv",),
        ),
        TraceFormat(
            name="gem5",
            description="gem5 --debug-flags=MemoryAccess text dump",
            reader=iter_gem5,
            suffixes=(".gem5",),
        ),
    )
}


def detect_format(path: PathLike) -> str:
    """Name the trace format of ``path`` by magic bytes, then by suffix.

    Binary traces are recognized by their magic regardless of name; for
    everything else the (gzip-stripped) suffix decides, with plain text as
    the fallback.
    """
    path = Path(path)
    if path.exists() and binfmt.is_binary_trace(path):
        return "binary"
    suffixes = [s.lower() for s in path.suffixes if s.lower() != ".gz"]
    suffix = suffixes[-1] if suffixes else ""
    for fmt in FORMATS.values():
        if suffix in fmt.suffixes:
            return fmt.name
    return "text"


def resolve_format(name: Optional[str], path: PathLike,
                   for_writing: bool = False) -> TraceFormat:
    """Look up a format by explicit ``name``, or detect it from ``path``."""
    if name is None or name == "auto":
        name = detect_format(path)
    try:
        fmt = FORMATS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace format {name!r}; known: {sorted(FORMATS)}"
        ) from None
    if for_writing and not fmt.writable:
        raise ValueError(
            f"trace format {fmt.name!r} is ingestion-only (cannot write); "
            f"writable formats: "
            f"{sorted(f.name for f in FORMATS.values() if f.writable)}"
        )
    return fmt


def open_trace(path: PathLike,
               fmt: Optional[str] = None) -> Iterable[MemoryAccess]:
    """An iterable over the accesses of ``path`` in any readable format."""
    return resolve_format(fmt, path).reader(path)


def convert_trace(src: PathLike, dst: PathLike,
                  in_format: Optional[str] = None,
                  out_format: Optional[str] = None,
                  limit: Optional[int] = None,
                  codec: Optional[str] = None) -> int:
    """Stream ``src`` into ``dst``, converting formats; returns the count.

    Formats default to auto-detection (by magic, then suffix).  ``limit``
    truncates the output to the first N accesses.  A binary source's core
    count carries over into a binary destination's header.  ``codec``
    selects the binary payload codec (:data:`repro.trace.binfmt.CODECS`) and
    is rejected for non-binary destinations.
    """
    from repro.trace.filters import limit_trace

    fmt_in = resolve_format(in_format, src)
    fmt_out = resolve_format(out_format, dst, for_writing=True)
    if codec is not None and fmt_out.name != "binary":
        raise ValueError(
            f"--codec applies only to binary output, not {fmt_out.name!r}"
        )
    num_cores = (binfmt.read_header(src).num_cores
                 if fmt_in.name == "binary" else 0)
    stream: Iterable[MemoryAccess] = fmt_in.reader(src)
    if limit is not None:
        stream = limit_trace(stream, limit)
    if codec is not None:
        return binfmt.write_trace_bin(dst, stream, num_cores=num_cores,
                                      codec=codec)
    return fmt_out.writer(dst, stream, num_cores)


__all__ = [
    "FORMATS",
    "TraceFormat",
    "convert_trace",
    "detect_format",
    "iter_champsim",
    "iter_csv",
    "iter_gem5",
    "open_trace",
    "resolve_format",
]
