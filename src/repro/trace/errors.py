"""Errors shared by the trace codecs and ingestion adapters.

:class:`TraceFormatError` subclasses :class:`ValueError` so existing callers
that caught ``ValueError`` for malformed trace data keep working, while new
code can catch the precise type and report *where* a trace is broken.
"""

from __future__ import annotations

from typing import Optional


class TraceFormatError(ValueError):
    """A trace file (text, binary, or external format) is malformed.

    Carries the offending file ``path`` and 1-based ``line`` number when
    known, and includes both in the rendered message.
    """

    def __init__(self, message: str, path: Optional[object] = None,
                 line: Optional[int] = None) -> None:
        self.path = str(path) if path is not None else None
        self.line = line
        location = ""
        if self.path is not None and line is not None:
            location = f"{self.path}:{line}: "
        elif self.path is not None:
            location = f"{self.path}: "
        elif line is not None:
            location = f"line {line}: "
        super().__init__(f"{location}{message}")


__all__ = ["TraceFormatError"]
