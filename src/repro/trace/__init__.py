"""Memory access traces.

The reproduction is trace-driven: workload generators produce streams of
:class:`repro.trace.record.MemoryAccess` records (the L2-miss stream that the
DRAM cache observes), which the cache models consume.  Traces can also be
written to and read from a simple text format for inspection and replay.
"""

from repro.trace.record import AccessType, MemoryAccess
from repro.trace.io import TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.filters import interleave_traces, limit_trace, split_warmup

__all__ = [
    "AccessType",
    "MemoryAccess",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "interleave_traces",
    "limit_trace",
    "split_warmup",
]
