"""Memory access traces: records, codecs, pipelines, and the trace store.

The reproduction is trace-driven: workload generators produce streams of
:class:`repro.trace.record.MemoryAccess` records (the L2-miss stream that the
DRAM cache observes), which the cache models consume.  Around that record
type this package provides:

* :mod:`repro.trace.io` -- the line-oriented text codec (inspectable with
  standard tools, gzip-transparent);
* :mod:`repro.trace.binfmt` -- the compact struct-packed binary codec with a
  self-describing header and chunked streaming in both directions;
* :mod:`repro.trace.adapters` -- ingestion of external formats
  (ChampSim-style, CSV) and format conversion;
* :mod:`repro.trace.pipeline` -- :class:`TraceSource`, a re-iterable stream
  with composable lazy transforms (window, core select, address remap,
  downsample, interleave);
* :mod:`repro.trace.store` -- the on-disk :class:`TraceStore` that lets every
  distinct synthetic trace be generated once, ever, across processes and
  runs;
* :mod:`repro.trace.filters` -- plain generator transforms that also plug
  into pipelines via :meth:`TraceSource.transform`.
"""

from repro.trace.record import AccessType, MemoryAccess
from repro.trace.errors import TraceFormatError
from repro.trace.io import TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.binfmt import (
    BinaryTraceInfo,
    BinaryTraceReader,
    BinaryTraceWriter,
    ChunkIndex,
    available_codecs,
    is_binary_trace,
    read_trace_bin,
    write_trace_bin,
    zstd_available,
)
from repro.trace.adapters import convert_trace, detect_format, open_trace
from repro.trace.filters import interleave_traces, limit_trace, split_warmup
from repro.trace.pipeline import (
    FileSource,
    IterableSource,
    SyntheticSource,
    TraceSource,
    as_source,
)
from repro.trace.store import TraceStore

__all__ = [
    "AccessType",
    "MemoryAccess",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
    "BinaryTraceInfo",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "ChunkIndex",
    "available_codecs",
    "is_binary_trace",
    "read_trace_bin",
    "write_trace_bin",
    "zstd_available",
    "convert_trace",
    "detect_format",
    "open_trace",
    "interleave_traces",
    "limit_trace",
    "split_warmup",
    "FileSource",
    "IterableSource",
    "SyntheticSource",
    "TraceSource",
    "as_source",
    "TraceStore",
]
