"""The memory access record consumed by all cache models.

A :class:`MemoryAccess` describes one L2-miss request as seen by the
die-stacked DRAM cache controller: the physical block address, whether it is
a read or a write(-back), the program counter of the triggering instruction
(needed by the footprint predictor), and the issuing core.

``MemoryAccess`` is a :func:`collections.namedtuple` subclass rather than a
dataclass: trace replay creates tens of millions of these records (the
synthetic generator, the binary trace reader, and every ingestion adapter are
all bounded by construction rate), and tuple allocation is roughly twice as
fast as a ``__dict__``-backed dataclass while keeping the records immutable,
hashable, and picklable.  Field order is part of the binary trace format's
contract (see :mod:`repro.trace.binfmt`) and must not change.
"""

from __future__ import annotations

import enum
from collections import namedtuple

#: Block size in bytes assumed throughout the paper and this reproduction.
BLOCK_SIZE = 64


class AccessType(enum.Enum):
    """Kind of memory access."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        """True for writes."""
        return self is AccessType.WRITE


_MemoryAccessBase = namedtuple(
    "MemoryAccess", ("address", "pc", "access_type", "core_id", "timestamp")
)


class MemoryAccess(_MemoryAccessBase):
    """One request arriving at the DRAM cache controller.

    Attributes
    ----------
    address:
        Physical byte address of the access (block-aligned addresses are not
        required; the cache models align internally).
    pc:
        Program counter of the instruction that triggered the access.  The
        footprint predictor indexes its history table with (pc, offset).
    access_type:
        Read or write.
    core_id:
        Issuing core (0-based).  Used by the per-core miss predictor of the
        Alloy Cache and for per-core statistics.
    timestamp:
        Logical time of the access (e.g. instruction count or cycle at issue).
        Monotonically non-decreasing within a trace.
    """

    __slots__ = ()

    def __new__(cls, address: int, pc: int,
                access_type: AccessType = AccessType.READ,
                core_id: int = 0, timestamp: int = 0) -> "MemoryAccess":
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if pc < 0:
            raise ValueError(f"pc must be non-negative, got {pc}")
        if core_id < 0:
            raise ValueError(f"core_id must be non-negative, got {core_id}")
        return _MemoryAccessBase.__new__(
            cls, address, pc, access_type, core_id, timestamp
        )

    @property
    def is_write(self) -> bool:
        """True if this is a write access."""
        return self.access_type.is_write

    @property
    def block_address(self) -> int:
        """The 64-byte-block number containing this address."""
        return self.address // BLOCK_SIZE

    def block_aligned(self) -> "MemoryAccess":
        """A copy of this access with the address aligned to its block base."""
        aligned = self.block_address * BLOCK_SIZE
        if aligned == self.address:
            return self
        return self._replace(address=aligned)

    def page_number(self, page_size: int) -> int:
        """Page number for a given page size in bytes."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        return self.address // page_size

    def page_offset_blocks(self, page_size: int) -> int:
        """Block offset of this access within its page."""
        if page_size % BLOCK_SIZE:
            raise ValueError("page_size must be a multiple of the block size")
        return (self.address % page_size) // BLOCK_SIZE
