"""Composable, lazily-evaluated trace pipelines.

A :class:`TraceSource` is a *re-iterable* stream of
:class:`~repro.trace.record.MemoryAccess` records with chainable transforms.
Nothing is computed until the source is iterated, and every transform returns
a new source, so multi-million-access pipelines never materialize
intermediate lists::

    from repro.trace.pipeline import FileSource

    source = (FileSource("cloudsuite.rptr")
              .window(1_000_000, 2_000_000)   # slice out a steady-state region
              .cores(0, 1, 2, 3)              # keep four cores' streams
              .remap_addresses(lambda a: a % (1 << 32))
              .downsample(0.1, seed=7))       # deterministic 10% sample
    for access in source:                     # streams chunk by chunk
        ...
    source.write("sampled.rptr")              # or persist, still streaming

Sources
-------
* :class:`FileSource` -- any on-disk trace; the format (binary, text,
  ChampSim-style, CSV; each optionally gzipped) is auto-detected through
  :mod:`repro.trace.adapters`.
* :class:`SyntheticSource` -- a deterministic synthetic workload
  (:class:`~repro.workloads.generator.SyntheticWorkload`); every iteration
  replays the identical stream.
* :class:`IterableSource` -- wraps an in-memory sequence or a zero-argument
  iterator factory.

Transforms compose with the plain generator functions in
:mod:`repro.trace.filters` through :meth:`TraceSource.transform`, which
accepts any ``fn(iterable, *args, **kwargs) -> iterator``::

    from repro.trace.filters import limit_trace
    source.transform(limit_trace, 50_000)     # same as source.limit(50_000)
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import (Callable, Iterable, Iterator, List, Optional, Sequence,
                    Union)

from repro.trace import adapters
from repro.trace.filters import interleave_traces, limit_trace
from repro.trace.record import MemoryAccess
from repro.utils.hashing import mix64

PathLike = Union[str, Path]

#: A transform maps one access stream to another.
Transform = Callable[..., Iterator[MemoryAccess]]


class TraceSource:
    """Base class: a re-iterable access stream with lazy combinators.

    Subclasses implement :meth:`__iter__`; everything else chains.
    Iterating the same source twice must yield the identical stream (all
    built-in sources guarantee this; it is what lets the executor replay a
    pipeline for warm-up and measurement without buffering).
    """

    def __iter__(self) -> Iterator[MemoryAccess]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Composable transforms (each returns a new lazy source)
    # ------------------------------------------------------------------ #
    def transform(self, fn: Transform, *args, **kwargs) -> "TraceSource":
        """Apply any ``fn(iterable, *args, **kwargs) -> iterator`` lazily.

        This is the extension point that lets the plain generator functions
        in :mod:`repro.trace.filters` (and user code) plug into a pipeline.
        """
        return _TransformedSource(self, fn, args, kwargs)

    def limit(self, max_accesses: int) -> "TraceSource":
        """Keep at most the first ``max_accesses`` accesses."""
        return self.transform(limit_trace, max_accesses)

    def window(self, start: int, stop: Optional[int] = None) -> "TraceSource":
        """Slice the stream by position: accesses ``[start, stop)``."""
        if start < 0 or (stop is not None and stop < start):
            raise ValueError("window needs 0 <= start <= stop")
        return self.transform(
            lambda stream: itertools.islice(stream, start, stop)
        )

    def filter(self, predicate: Callable[[MemoryAccess], bool],
               ) -> "TraceSource":
        """Keep only accesses for which ``predicate`` is true."""
        return self.transform(
            lambda stream: (a for a in stream if predicate(a))
        )

    def map(self, fn: Callable[[MemoryAccess], MemoryAccess],
            ) -> "TraceSource":
        """Apply ``fn`` to every access."""
        return self.transform(lambda stream: (fn(a) for a in stream))

    def remap_addresses(self, fn: Callable[[int], int]) -> "TraceSource":
        """Rewrite every address through ``fn`` (e.g. fold, offset, mask)."""
        return self.map(lambda a: a._replace(address=fn(a.address)))

    def cores(self, *core_ids: int) -> "TraceSource":
        """Keep only the streams of the given cores."""
        keep = frozenset(core_ids)
        return self.filter(lambda a: a.core_id in keep)

    def downsample(self, fraction: float, seed: int = 0) -> "TraceSource":
        """Keep a deterministic pseudo-random ``fraction`` of the stream.

        The keep/drop decision hashes ``(seed, position)``, so the same
        source downsampled twice with the same arguments yields the same
        sample, and a sample is always a subsequence of the original.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        threshold = int(fraction * (1 << 64))

        def sample(stream: Iterable[MemoryAccess]) -> Iterator[MemoryAccess]:
            for position, access in enumerate(stream):
                if mix64(seed * 0x9E3779B97F4A7C15 + position) < threshold:
                    yield access

        return self.transform(sample)

    @staticmethod
    def interleave(sources: Sequence["TraceSource"]) -> "TraceSource":
        """Merge several sources into one stream ordered by timestamp.

        Uses the deterministic heap merge of
        :func:`repro.trace.filters.interleave_traces` (ties break by source
        position), i.e. the multiplexing of per-core miss streams at the
        DRAM cache controller.
        """
        sources = tuple(sources)
        return _InterleavedSource(sources)

    # ------------------------------------------------------------------ #
    # Terminals
    # ------------------------------------------------------------------ #
    def materialize(self) -> List[MemoryAccess]:
        """Evaluate the pipeline into a list."""
        return list(self)

    def count(self) -> int:
        """Number of accesses in the stream (consumes one iteration)."""
        return sum(1 for _ in self)

    def write(self, path: PathLike, fmt: Optional[str] = None,
              num_cores: int = 0) -> int:
        """Stream the pipeline into a trace file; returns the count written.

        ``fmt`` is a :data:`repro.trace.adapters.FORMATS` name, defaulting
        to auto-detection from the suffix (binary for ``.rptr``/``.bin``).
        ``num_cores`` is recorded in a binary destination's header; when
        omitted, the core count of the pipeline's root :class:`FileSource`
        (if any) carries over.
        """
        out = adapters.resolve_format(fmt, path, for_writing=True)
        if not num_cores:
            num_cores = self._source_num_cores()
        return out.writer(path, self, num_cores)

    def _source_num_cores(self) -> int:
        """Core-count metadata of the pipeline's root source (0 = unknown)."""
        return 0


class IterableSource(TraceSource):
    """A source over an in-memory sequence or an iterator factory.

    ``accesses`` may be a sequence (re-iterated directly) or a zero-argument
    callable returning a fresh iterator (for generator-backed streams).
    """

    def __init__(self, accesses: Union[Sequence[MemoryAccess],
                                       Callable[[], Iterable[MemoryAccess]]],
                 ) -> None:
        if callable(accesses):
            self._factory = accesses
        else:
            self._factory = lambda: iter(accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._factory())


class FileSource(TraceSource):
    """A source streaming from an on-disk trace in any readable format."""

    def __init__(self, path: PathLike, fmt: Optional[str] = None) -> None:
        self.path = Path(path)
        self.format = adapters.resolve_format(fmt, path).name

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(adapters.open_trace(self.path, self.format))

    def _source_num_cores(self) -> int:
        if self.format == "binary":
            from repro.trace.binfmt import read_header

            return read_header(self.path).num_cores
        return 0

    def __repr__(self) -> str:
        return f"FileSource({str(self.path)!r}, format={self.format!r})"


class SyntheticSource(TraceSource):
    """A deterministic synthetic workload as a re-iterable source.

    Every iteration constructs a fresh
    :class:`~repro.workloads.generator.SyntheticWorkload`, so the stream is
    identical each time (and the source stays picklable/cheap to ship to
    worker processes -- only the profile and scalars travel).
    """

    def __init__(self, profile, count: int, num_cores: int = 16,
                 seed: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.profile = profile
        self.count_target = count
        self.num_cores = num_cores
        self.seed = seed

    def __iter__(self) -> Iterator[MemoryAccess]:
        from repro.workloads.generator import SyntheticWorkload

        workload = SyntheticWorkload(self.profile, num_cores=self.num_cores,
                                     seed=self.seed)
        return workload.accesses(self.count_target)

    def _source_num_cores(self) -> int:
        return self.num_cores

    def __repr__(self) -> str:
        return (f"SyntheticSource({self.profile.name!r}, "
                f"count={self.count_target}, num_cores={self.num_cores}, "
                f"seed={self.seed})")


class _TransformedSource(TraceSource):
    """A source with one lazy transform applied on every iteration."""

    def __init__(self, parent: TraceSource, fn: Transform, args, kwargs,
                 ) -> None:
        self._parent = parent
        self._fn = fn
        self._args = args
        self._kwargs = kwargs

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._fn(self._parent, *self._args, **self._kwargs))

    def _source_num_cores(self) -> int:
        return self._parent._source_num_cores()


class _InterleavedSource(TraceSource):
    """Timestamp-ordered merge of several sources."""

    def __init__(self, sources: Sequence[TraceSource]) -> None:
        self._sources = tuple(sources)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return interleave_traces(self._sources)


def as_source(trace: Union[TraceSource, Sequence[MemoryAccess], PathLike],
              ) -> TraceSource:
    """Coerce a source, an in-memory trace, or a path into a TraceSource."""
    if isinstance(trace, TraceSource):
        return trace
    if isinstance(trace, (str, Path)):
        return FileSource(trace)
    return IterableSource(trace)


__all__ = [
    "FileSource",
    "IterableSource",
    "SyntheticSource",
    "TraceSource",
    "as_source",
]
