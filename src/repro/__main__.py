"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

from repro.cli import run

if __name__ == "__main__":
    run()
