"""Design-space autotuning: enumeration, successive halving, Pareto analysis.

* :mod:`repro.search.space` -- the declarative :class:`SearchSpace` over the
  five component roles, with constraint predicates cutting the cross product
  to buildable compositions.
* :mod:`repro.search.driver` -- the :class:`TuneSearch` successive-halving
  driver: seeded candidate draw, CI-widening rungs on the durable queue,
  resumable JSON state.
* :mod:`repro.search.frontier` -- CI-aware dominance, the rung prune, the
  Pareto frontier, and the deterministic SRAM overhead cost model.
"""

from repro.search.driver import (
    PAPER_BASELINES,
    REFERENCE_DESIGNS,
    TuneConfig,
    TuneSearch,
    TuneState,
    list_searches,
    load_search,
)
from repro.search.frontier import (
    DesignPoint,
    ci_dominates,
    pareto_frontier,
    prune_by_interval,
    sram_overhead_bytes,
)
from repro.search.space import SearchSpace, default_space

__all__ = [
    "DesignPoint",
    "PAPER_BASELINES",
    "REFERENCE_DESIGNS",
    "SearchSpace",
    "TuneConfig",
    "TuneSearch",
    "TuneState",
    "ci_dominates",
    "default_space",
    "list_searches",
    "load_search",
    "pareto_frontier",
    "prune_by_interval",
    "sram_overhead_bytes",
]
