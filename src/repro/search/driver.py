"""Successive-halving search over the composable design space.

The driver wires the declarative :class:`~repro.search.space.SearchSpace`
to the durable queue: a seeded random draw of candidate compositions runs
through *rungs* of increasing measurement fidelity, where each rung widens
the sampled window budget and tightens the CI target
(:class:`~repro.sampling.windows.SamplingConfig`), prunes the candidates
whose confidence interval is dominated beyond noise
(:func:`~repro.search.frontier.prune_by_interval`), and promotes the rest.

Every rung is one idempotent :class:`~repro.sim.spec.SweepSpec` submitted
through the :class:`~repro.queue.service.SweepService`, so a search killed
mid-rung resumes exactly where it stopped: finished jobs are never re-run,
fully archived rungs cost zero simulation, and the search's own progress
lives in a JSON state file under ``<queue dir>/tune/`` written atomically
after every step.

The final rung measures the survivors *and* the six paper designs at the
same fidelity, feeding the CI-aware Pareto frontier
(:func:`~repro.search.frontier.pareto_frontier`); frontier candidates are
the search's winners, registered in the design registry under their stable
``tune-<digest>`` names so they re-run like any shipped design.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dramcache.spec import ComponentSpec, DesignSpec
from repro.obs.core import emit_event, start_run
from repro.queue.service import PathLike, SweepService
from repro.sampling.windows import SamplingConfig
from repro.search.frontier import (
    OBJECTIVES,
    DesignPoint,
    dominated_baselines,
    interval_from_record,
    pareto_frontier,
    prune_by_interval,
    sram_overhead_bytes,
)
from repro.search.space import ROLES, SearchSpace, default_space
from repro.sim.experiment import ExperimentConfig
from repro.sim.registry import DESIGNS
from repro.sim.spec import SweepSpec
from repro.stats.confidence import ConfidenceInterval
from repro.utils.units import parse_size

#: The paper's six designs, measured alongside the final rung's survivors.
PAPER_BASELINES = ("unison", "alloy", "footprint", "loh_hill", "ideal",
                   "no_cache")
#: Baselines that anchor the axes but stay out of the dominance pool
#: (ideal would trivially dominate the whole frontier away).
REFERENCE_DESIGNS = ("ideal", "no_cache")

STATE_VERSION = 1
TUNE_DIRNAME = "tune"


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuneConfig:
    """Everything one search run depends on (hashed into its token)."""

    workload: str = "Web Search"
    capacity: str = "1GB"
    seed: int = 1
    #: Candidates drawn (seeded) from the space; the whole space when the
    #: space is smaller.
    num_candidates: int = 36
    rungs: int = 3
    #: Halving factor: each rung keeps ~1/eta of its designs and multiplies
    #: the window budget (and divides the CI target) by eta.
    eta: int = 2
    scale: int = 1024
    num_accesses: int = 120_000
    num_cores: int = 16
    window_accesses: int = 2_000
    warmup_accesses: int = 2_000
    checkpoint_accesses: int = 20_000
    min_windows: int = 3
    #: Rung 0's window budget; rung r gets ``base_windows * eta**r``.
    base_windows: int = 4
    #: Rung 0's CI target; rung r gets ``base_relative_error / eta**r``.
    base_relative_error: float = 0.10
    include_baselines: bool = True

    def __post_init__(self) -> None:
        if self.rungs < 1:
            raise ValueError("a search needs at least one rung")
        if self.eta < 2:
            raise ValueError("eta must be at least 2 (nothing halves below)")
        if self.num_candidates < 1:
            raise ValueError("num_candidates must be positive")
        if self.base_windows < self.min_windows:
            raise ValueError("base_windows must be >= min_windows")
        parse_size(self.capacity)  # fail at declaration, not mid-search

    def rung_sampling(self, rung: int) -> SamplingConfig:
        """Rung ``rung``'s measurement fidelity: wider budget, tighter CI."""
        factor = self.eta ** rung
        return SamplingConfig(
            window_accesses=self.window_accesses,
            warmup_accesses=self.warmup_accesses,
            checkpoint_accesses=self.checkpoint_accesses,
            min_windows=self.min_windows,
            max_windows=self.base_windows * factor,
            target_relative_error=self.base_relative_error / factor,
            seed=self.seed,
        )

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(scale=self.scale,
                                num_accesses=self.num_accesses,
                                num_cores=self.num_cores, seed=self.seed)

    def to_config(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_config(cls, config: Dict[str, object]) -> "TuneConfig":
        return cls(**config)


# --------------------------------------------------------------------- #
# DesignSpec <-> JSON (the state file persists the candidate recipes so a
# resumed process re-registers exactly the designs it measured).
# --------------------------------------------------------------------- #
def serialize_spec(spec: DesignSpec) -> Dict[str, object]:
    return {
        "name": spec.name,
        "description": spec.description,
        "components": {
            role: [getattr(spec, role).kind, getattr(spec, role).params_dict()]
            for role in ROLES
        },
    }


def deserialize_spec(data: Dict[str, object]) -> DesignSpec:
    components = {
        role: ComponentSpec(kind, params)
        for role, (kind, params) in data["components"].items()
    }
    return DesignSpec(name=data["name"], description=data["description"],
                      **components)


# --------------------------------------------------------------------- #
@dataclass
class TuneState:
    """The durable progress of one search (JSON under ``<queue>/tune/``)."""

    token: str
    config: TuneConfig
    space_config: Dict[str, object]
    candidates: List[Dict[str, object]]
    rungs: List[Dict[str, object]] = field(default_factory=list)
    status: str = "planned"
    winners: List[str] = field(default_factory=list)
    frontier: Optional[Dict[str, object]] = None

    def candidate_specs(self) -> List[DesignSpec]:
        return [deserialize_spec(data) for data in self.candidates]

    def candidate_names(self) -> List[str]:
        return [data["name"] for data in self.candidates]

    # ------------------------------------------------------------------ #
    def to_json(self) -> Dict[str, object]:
        return {
            "version": STATE_VERSION,
            "token": self.token,
            "status": self.status,
            "config": self.config.to_config(),
            "space": self.space_config,
            "candidates": self.candidates,
            "rungs": self.rungs,
            "winners": self.winners,
            "frontier": self.frontier,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TuneState":
        if data.get("version") != STATE_VERSION:
            raise ValueError(
                f"tune state version {data.get('version')!r} is not "
                f"supported (expected {STATE_VERSION})"
            )
        return cls(
            token=data["token"],
            config=TuneConfig.from_config(data["config"]),
            space_config=data["space"],
            candidates=data["candidates"],
            rungs=data["rungs"],
            status=data["status"],
            winners=data.get("winners", []),
            frontier=data.get("frontier"),
        )

    def save(self, path: Path) -> None:
        """Atomic write: a kill between rungs never corrupts the state."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Path) -> "TuneState":
        return cls.from_json(json.loads(Path(path).read_text()))


def search_token(config: TuneConfig, space: SearchSpace,
                 names: Sequence[str]) -> str:
    payload = json.dumps(
        {"config": config.to_config(), "space": space.to_config(),
         "candidates": list(names)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# --------------------------------------------------------------------- #
class TuneSearch:
    """Plan, run, resume, and analyze one successive-halving search."""

    def __init__(self, config: TuneConfig,
                 space: Optional[SearchSpace] = None,
                 service: Optional[SweepService] = None,
                 queue_dir: Optional[PathLike] = None) -> None:
        self.config = config
        self.space = space or default_space()
        self.service = service or SweepService(queue_dir)
        self.tune_dir = self.service.queue_dir / TUNE_DIRNAME

    # ------------------------------------------------------------------ #
    # Planning and state persistence
    # ------------------------------------------------------------------ #
    def select_candidates(self) -> List[DesignSpec]:
        """The seeded draw: deterministic for (space, seed, count)."""
        pool = self.space.candidates()
        if len(pool) <= self.config.num_candidates:
            return pool
        rng = random.Random(self.config.seed)
        chosen = sorted(rng.sample(range(len(pool)),
                                   self.config.num_candidates))
        return [pool[index] for index in chosen]

    def state_path(self, token: str) -> Path:
        return self.tune_dir / f"{token}.json"

    def plan(self) -> TuneState:
        """Create (or reload) the search state for this config + space."""
        specs = self.select_candidates()
        token = search_token(self.config, self.space,
                             [spec.name for spec in specs])
        path = self.state_path(token)
        if path.is_file():
            return TuneState.load(path)
        state = TuneState(
            token=token,
            config=self.config,
            space_config=self.space.to_config(),
            candidates=[serialize_spec(spec) for spec in specs],
        )
        state.save(path)
        return state

    def register_candidates(self, state: TuneState) -> None:
        """Install the candidate specs in the design registry.

        Workers fork from this process (or assemble in it), so registering
        here is what lets ``ExperimentSpec`` cells resolve ``tune-*`` names.
        ``replace=True`` keeps reloads idempotent.
        """
        for spec in state.candidate_specs():
            DESIGNS.register_spec(spec, replace=True)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def _rung_designs(self, state: TuneState, rung: int) -> List[str]:
        if rung == 0:
            return state.candidate_names()
        return list(state.rungs[rung - 1]["survivors"])

    def _rung_spec(self, state: TuneState, rung: int,
                   designs: Sequence[str]) -> SweepSpec:
        final = rung == self.config.rungs - 1
        sweep_designs = list(designs)
        if final and self.config.include_baselines:
            sweep_designs += [name for name in PAPER_BASELINES
                              if name not in sweep_designs]
        return SweepSpec(
            designs=tuple(sweep_designs),
            workloads=(self.config.workload,),
            capacities=(self.config.capacity,),
            config=self.config.experiment_config(),
            sampling=self.config.rung_sampling(rung),
        )

    def run(self, state: Optional[TuneState] = None,
            workers: Optional[int] = 1) -> TuneState:
        """Drive every unfinished rung to completion and build the frontier.

        Safe to call on a half-finished search: rungs whose sweeps are
        archived re-run zero jobs, and a rung interrupted mid-flight
        resumes from the job store (idempotent submit + lease recovery).
        """
        state = state or self.plan()
        self.register_candidates(state)
        path = self.state_path(state.token)
        if state.status == "planned":
            state.status = "running"
            state.save(path)
        with start_run("tune", sweep=state.token,
                       candidates=len(state.candidates),
                       rungs=self.config.rungs) as obs_run:
            for rung in range(self.config.rungs):
                self._run_rung(state, rung, workers, obs_run)
                state.save(path)
        state.frontier = self.build_frontier(state)
        state.winners = list(state.frontier["winners"])
        state.status = "complete"
        state.save(path)
        return state

    def _run_rung(self, state: TuneState, rung: int,
                  workers: Optional[int], obs_run) -> None:
        if rung < len(state.rungs) and state.rungs[rung]["status"] == "done":
            return
        designs = self._rung_designs(state, rung)
        spec = self._rung_spec(state, rung, designs)
        if rung >= len(state.rungs):
            sampling = self.config.rung_sampling(rung)
            state.rungs.append({
                "rung": rung,
                "designs": list(designs),
                "max_windows": sampling.max_windows,
                "target_relative_error": sampling.target_relative_error,
                "sweep_token": None,
                "status": "pending",
                "survivors": [],
                "pruned": [],
                "results": {},
            })
        record = state.rungs[rung]

        outcome = self.service.submit(spec)
        record["sweep_token"] = outcome.token
        state.save(self.state_path(state.token))

        with obs_run.span(f"rung{rung}"):
            results = self.service.run(spec, workers=workers)

        by_name: Dict[str, object] = {res.design: res for res in results}
        record["results"] = {
            name: {
                "miss_ratio": interval_from_record(res, "miss_ratio").mean,
                "miss_half_width":
                    interval_from_record(res, "miss_ratio").half_width,
                "speedup": interval_from_record(res, "speedup").mean,
                "speedup_half_width":
                    interval_from_record(res, "speedup").half_width,
            }
            for name, res in sorted(by_name.items())
        }

        final = rung == self.config.rungs - 1
        if final:
            survivors, pruned = list(designs), []
        else:
            entries = [
                (name, ConfidenceInterval(
                    mean=record["results"][name]["miss_ratio"],
                    half_width=record["results"][name]["miss_half_width"]))
                for name in designs
            ]
            keep = max(1, math.ceil(len(designs) / self.config.eta))
            survivors, pruned = prune_by_interval(entries, keep)
        record["survivors"] = survivors
        record["pruned"] = pruned
        record["status"] = "done"
        emit_event("tune.rung", sweep=state.token, rung=rung,
                   candidates=len(designs), survivors=len(survivors),
                   pruned=len(pruned), sweep_token=outcome.token)

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def _final_record(self, state: TuneState) -> Dict[str, object]:
        if not state.rungs or state.rungs[-1]["status"] != "done":
            raise RuntimeError(
                f"search {state.token} has no completed final rung yet"
            )
        return state.rungs[-1]

    def _spec_of(self, state: TuneState, name: str) -> DesignSpec:
        for data in state.candidates:
            if data["name"] == name:
                return deserialize_spec(data)
        entry = DESIGNS.resolve(name)
        if entry.spec is None:
            raise ValueError(f"design {name!r} has no declarative spec")
        return entry.spec

    def build_frontier(self, state: TuneState) -> Dict[str, object]:
        """The frontier artifact of the search's final (full-fidelity) rung."""
        record = self._final_record(state)
        capacity_bytes = parse_size(self.config.capacity)
        candidate_names = set(record["designs"])
        points: List[DesignPoint] = []
        for name, cell in sorted(record["results"].items()):
            spec = self._spec_of(state, name)
            point = DesignPoint(
                name=name,
                miss_ratio=ConfidenceInterval(
                    mean=cell["miss_ratio"],
                    half_width=cell["miss_half_width"]),
                speedup=ConfidenceInterval(
                    mean=cell["speedup"],
                    half_width=cell["speedup_half_width"]),
                sram_overhead_bytes=sram_overhead_bytes(
                    spec, capacity_bytes, self.config.num_cores),
                reference=name in REFERENCE_DESIGNS,
            )
            points.append(point)
        frontier_points = pareto_frontier(points)
        frontier_names = [p.name for p in frontier_points]
        baselines = [p for p in points if p.name in PAPER_BASELINES]
        designs_payload = []
        for point in points:
            spec = self._spec_of(state, point.name)
            designs_payload.append({
                "name": point.name,
                "kind": ("candidate" if point.name in candidate_names
                         else "baseline"),
                "reference": point.reference,
                "components": {role: getattr(spec, role).describe()
                               for role in ROLES},
                "miss_ratio": {"mean": point.miss_ratio.mean,
                               "half_width": point.miss_ratio.half_width},
                "speedup": {"mean": point.speedup.mean,
                            "half_width": point.speedup.half_width},
                "sram_overhead_bytes": point.sram_overhead_bytes,
                "on_frontier": point.name in frontier_names,
                "dominates_baselines": dominated_baselines(point, baselines),
            })
        winners = [name for name in frontier_names
                   if name in candidate_names]
        return {
            "version": 1,
            "search": state.token,
            "workload": self.config.workload,
            "capacity": self.config.capacity,
            "objectives": [list(pair) for pair in OBJECTIVES],
            "sweep_token": record["sweep_token"],
            "designs": designs_payload,
            "frontier": frontier_names,
            "winners": winners,
        }

    def verify_winner(self, state: TuneState,
                      name: Optional[str] = None) -> Dict[str, object]:
        """Re-run a winner *by its registered name* and diff the records.

        The serial in-memory executor must reproduce the archived final-rung
        record bit-identically (the PR6 queue-vs-serial guarantee); any
        mismatch means the registered spec does not round-trip its own
        measurement and fails loudly here.
        """
        from repro.sim.executor import run_sweep

        self.register_candidates(state)
        record = self._final_record(state)
        if name is None:
            if not state.winners:
                raise RuntimeError(f"search {state.token} has no winners yet")
            name = state.winners[0]
        final_rung = len(state.rungs) - 1
        spec = SweepSpec(
            designs=(name,),
            workloads=(self.config.workload,),
            capacities=(self.config.capacity,),
            config=self.config.experiment_config(),
            sampling=self.config.rung_sampling(final_rung),
        )
        rerun = run_sweep(spec, workers=1)[0]
        with self.service.archive() as archive:
            archived_set = archive.get(record["sweep_token"])
        if archived_set is None:
            raise RuntimeError(
                f"final rung sweep {record['sweep_token']} is not archived"
            )
        archived = next(res for res in archived_set if res.design == name)
        identical = asdict(rerun) == asdict(archived)
        return {
            "design": name,
            "identical": identical,
            "miss_ratio": rerun.miss_ratio,
            "archived_miss_ratio": archived.miss_ratio,
        }


# --------------------------------------------------------------------- #
# Module-level conveniences (the CLI's entry points)
# --------------------------------------------------------------------- #
def list_searches(queue_dir: Optional[PathLike] = None) -> List[TuneState]:
    """Every persisted search state under the queue's tune directory."""
    service = SweepService(queue_dir)
    tune_dir = service.queue_dir / TUNE_DIRNAME
    states = []
    for path in sorted(tune_dir.glob("*.json")):
        try:
            states.append(TuneState.load(path))
        except (ValueError, KeyError, json.JSONDecodeError):
            continue
    return states


def load_search(token: str, queue_dir: Optional[PathLike] = None,
                ) -> Tuple[TuneSearch, TuneState]:
    """Rehydrate a search (driver + state) from its persisted token."""
    service = SweepService(queue_dir)
    path = service.queue_dir / TUNE_DIRNAME / f"{token}.json"
    if not path.is_file():
        raise KeyError(f"no tune state for token {token!r} at {path}")
    state = TuneState.load(path)
    space = SearchSpace.from_config(state.space_config)
    search = TuneSearch(state.config, space=space, service=service)
    return search, state


__all__ = [
    "PAPER_BASELINES",
    "REFERENCE_DESIGNS",
    "TuneConfig",
    "TuneSearch",
    "TuneState",
    "deserialize_spec",
    "list_searches",
    "load_search",
    "search_token",
    "serialize_spec",
]
