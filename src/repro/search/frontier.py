"""CI-aware Pareto analysis over sampled design measurements.

Sampled runs report each metric as a mean plus a 95% confidence half-width
(:class:`~repro.stats.confidence.ConfidenceInterval`).  Treating those means
as exact would let measurement noise fabricate dominance, so both the
successive-halving prune and the final Pareto frontier compare *intervals*:

* design A only dominates design B on an objective when A's **pessimistic**
  bound is at least as good as B's **optimistic** bound -- overlapping
  intervals never decide;
* a rung prune keeps every design whose optimistic bound still reaches the
  cutoff set by the promoted designs' pessimistic bounds.

Objectives are fixed to the paper's axes: miss ratio (minimize), speedup
over no-cache (maximize), and estimated SRAM overhead in bytes (minimize --
the deterministic cost model in :func:`sram_overhead_bytes`, covering SRAM
tag arrays, the MissMap, and the predictor tables of Table IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.cache_configs import (
    FOOTPRINT_TABLE_ENTRIES,
    SINGLETON_TABLE_ENTRIES,
    way_predictor_index_bits_for_capacity,
)
from repro.dramcache.spec import DesignSpec
from repro.stats.confidence import ConfidenceInterval

#: (metric key, direction); direction "min" or "max".
OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("miss_ratio", "min"),
    ("speedup", "max"),
    ("sram_overhead_bytes", "min"),
)


def _get(record, key, default=None):
    """Field access across ExperimentResult objects and plain dicts."""
    if isinstance(record, dict):
        return record.get(key, default)
    return getattr(record, key, default)


def interval_from_record(record, metric: str) -> ConfidenceInterval:
    """The sampled CI of ``metric`` ("miss_ratio" or "speedup").

    Unsampled (full-run) records carry no half-width keys and collapse to
    zero-width intervals -- the measurement is exact, so interval dominance
    degenerates to plain mean comparison, which is what exactness means.
    """
    extra = _get(record, "extra", None) or {}
    if metric == "miss_ratio":
        mean = float(_get(record, "miss_ratio", 0.0))
        half = float(extra.get("sampling_miss_ratio_half_width", 0.0))
    elif metric == "speedup":
        mean = float(_get(record, "speedup_vs_no_cache", 0.0) or 0.0)
        half = float(extra.get("sampling_speedup_half_width", 0.0))
    else:
        raise ValueError(f"unknown sampled metric {metric!r}")
    return ConfidenceInterval(mean=mean, half_width=half)


# --------------------------------------------------------------------- #
# Deterministic SRAM cost model
# --------------------------------------------------------------------- #
def sram_overhead_bytes(spec: DesignSpec, capacity_bytes: int,
                        num_cores: int = 16) -> int:
    """Estimated on-die SRAM the design spends beyond the data arrays.

    A coarse but deterministic cost model mirroring the paper's Table IV
    accounting: SRAM tag arrays (Footprint Cache), the MissMap (Loh-Hill),
    and the predictor tables (way predictor, MAP-I, footprint history +
    singleton).  Designs keeping tags in the stacked DRAM charge nothing
    for them -- that is exactly the overhead axis the paper trades on.
    """
    total = 0
    tag_params = spec.tags.params_dict()
    if spec.tags.kind == "sram-page":
        page_size = int(tag_params.get("page_size", 2048))
        # ~64 bits per page entry: tag, valid/dirty footprint bits, LRU.
        total += (capacity_bytes // page_size) * 8
    elif spec.tags.kind == "missmap":
        # The paper's MissMap: ~4 bytes of SRAM per 4KB-page entry covering
        # a working set several times the cache (2MB per GB cached).
        total += capacity_bytes // 512

    hit_params = spec.hit_predictor.params_dict()
    if spec.hit_predictor.kind == "way":
        index_bits = int(hit_params.get(
            "index_bits",
            way_predictor_index_bits_for_capacity(capacity_bytes)))
        associativity = int(tag_params.get("associativity", 32))
        way_bits = max(1, math.ceil(math.log2(max(2, associativity))))
        total += ((1 << index_bits) * way_bits + 7) // 8
    elif spec.hit_predictor.kind == "map-i":
        entries_per_core = int(hit_params.get("entries_per_core", 256))
        total += num_cores * entries_per_core * 2

    fetch_params = spec.fetch.params_dict()
    if spec.fetch.kind == "footprint":
        table_entries = int(fetch_params.get("table_entries",
                                             FOOTPRINT_TABLE_ENTRIES))
        singleton_entries = int(fetch_params.get("singleton_entries",
                                                 SINGLETON_TABLE_ENTRIES))
        # History entry: tag + footprint bitvector (~8B); singleton: ~8B.
        total += table_entries * 8 + singleton_entries * 8

    # Writeback and replacement state ride the tag entries themselves.
    return total


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class DesignPoint:
    """One design's measured position in objective space."""

    name: str
    miss_ratio: ConfidenceInterval
    speedup: ConfidenceInterval
    sram_overhead_bytes: int
    #: Reference designs (ideal, no-cache) anchor the axes but are not
    #: admitted to the frontier -- ideal would trivially dominate it away.
    reference: bool = False
    meta: Dict[str, object] = field(default_factory=dict, compare=False)

    def objective(self, key: str) -> ConfidenceInterval:
        if key == "miss_ratio":
            return self.miss_ratio
        if key == "speedup":
            return self.speedup
        if key == "sram_overhead_bytes":
            return ConfidenceInterval(mean=float(self.sram_overhead_bytes),
                                      half_width=0.0)
        raise ValueError(f"unknown objective {key!r}")


def point_from_record(record, spec: DesignSpec, capacity_bytes: int,
                      num_cores: int = 16, *,
                      reference: bool = False) -> DesignPoint:
    """Build the objective-space point of one sampled/exact result."""
    return DesignPoint(
        name=spec.name,
        miss_ratio=interval_from_record(record, "miss_ratio"),
        speedup=interval_from_record(record, "speedup"),
        sram_overhead_bytes=sram_overhead_bytes(spec, capacity_bytes,
                                                num_cores),
        reference=reference,
    )


def ci_dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """True when ``a`` dominates ``b`` beyond measurement noise.

    For every objective, a's *pessimistic* bound must be at least as good
    as b's *optimistic* bound, and strictly better on at least one.  Any
    CI overlap on any objective therefore blocks dominance -- noise can
    demote a design only when the evidence is unambiguous.
    """
    strict = False
    for key, direction in OBJECTIVES:
        ia, ib = a.objective(key), b.objective(key)
        if direction == "min":
            worst_a, best_b = ia.upper, ib.lower
            if worst_a > best_b:
                return False
            if worst_a < best_b:
                strict = True
        else:
            worst_a, best_b = ia.lower, ib.upper
            if worst_a < best_b:
                return False
            if worst_a > best_b:
                strict = True
    return strict


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated, non-reference points, deterministically ordered.

    Reference points neither join the frontier nor knock candidates off
    it; they exist for reporting (who beats no-cache?).  Output is sorted
    by (miss-ratio mean, name) so equal inputs produce equal artifacts.
    """
    pool = [p for p in points if not p.reference]
    frontier = [p for p in pool
                if not any(ci_dominates(q, p) for q in pool if q.name != p.name)]
    return sorted(frontier, key=lambda p: (p.miss_ratio.mean, p.name))


def dominated_baselines(point: DesignPoint,
                        baselines: Sequence[DesignPoint]) -> List[str]:
    """Names of the baseline points this design CI-dominates."""
    return sorted(b.name for b in baselines
                  if b.name != point.name and ci_dominates(point, b))


# --------------------------------------------------------------------- #
# Successive-halving rung prune
# --------------------------------------------------------------------- #
def prune_by_interval(entries: Sequence[Tuple[str, ConfidenceInterval]],
                      keep: int) -> Tuple[List[str], List[str]]:
    """Split rung entries into (survivors, pruned) on a minimized metric.

    Ranks by (mean, name); the cutoff is the ``keep``-th best entry's CI
    *upper* bound, and only designs whose CI *lower* bound exceeds it are
    pruned -- a design whose interval still overlaps the promotion zone
    survives to be measured at higher fidelity instead of being discarded
    on noise.  Deterministic: ties in mean break on name.
    """
    if keep < 1:
        raise ValueError("must keep at least one design per rung")
    ranked = sorted(entries, key=lambda item: (item[1].mean, item[0]))
    if len(ranked) <= keep:
        return [name for name, _ in ranked], []
    cutoff = max(interval.upper for _, interval in ranked[:keep])
    survivors, pruned = [], []
    for name, interval in ranked:
        if len(survivors) < keep or interval.lower <= cutoff:
            survivors.append(name)
        else:
            pruned.append(name)
    return survivors, pruned


__all__ = [
    "OBJECTIVES",
    "DesignPoint",
    "ci_dominates",
    "dominated_baselines",
    "interval_from_record",
    "pareto_frontier",
    "point_from_record",
    "prune_by_interval",
    "sram_overhead_bytes",
]
