"""Declarative enumeration of the composable design space.

A :class:`SearchSpace` lists the component options of each of the five
policy roles (tag organization, hit predictor, fetch, writeback,
replacement) plus the *constraint predicates* that cut the raw cross
product down to buildable, meaningful compositions -- e.g. footprint
fetching needs a page/region view wider than one block, and a replacement
choice only matters where there are ways to choose between.

Every valid combination becomes a :class:`~repro.dramcache.spec.DesignSpec`
named ``tune-<digest>``, where the digest hashes the component recipe, so
candidate names are stable across processes and sessions -- the search
driver persists them in its state file and re-registers them on resume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.dramcache.spec import ComponentSpec, DesignSpec

#: One candidate composition: role name -> component spec.
Combo = Mapping[str, ComponentSpec]

#: Tag organizations with multi-block page frames and real set ways.
PAGE_TAG_KINDS = ("dram-page", "sram-page")
#: Tag organizations holding per-set replacement state (a victim choice).
REPLACEMENT_TAG_KINDS = ("dram-page", "sram-page", "missmap")

ROLES = ("tags", "hit_predictor", "fetch", "writeback", "replacement")


def _page_blocks(tags: ComponentSpec) -> int:
    """Blocks per page frame the fetch policy sees on this organization."""
    params = tags.params_dict()
    if tags.kind == "dram-page":
        return int(params.get("blocks_per_page", 15))
    if tags.kind == "sram-page":
        return int(params.get("page_size", 2048)) // 64
    if tags.kind == "direct-mapped":
        return int(params.get("page_blocks", 1))
    return 1


# --------------------------------------------------------------------- #
# Constraint predicates (named module-level functions: picklable, and the
# search state can report which constraints shaped the space).
# --------------------------------------------------------------------- #
def way_prediction_needs_page_ways(combo: Combo) -> bool:
    """Way prediction only pays off on set-associative page organizations."""
    return (combo["hit_predictor"].kind != "way"
            or combo["tags"].kind in PAGE_TAG_KINDS)


def footprint_needs_region_observer(combo: Combo) -> bool:
    """Footprint fetch needs a page/region view wider than one block."""
    return (combo["fetch"].kind != "footprint"
            or _page_blocks(combo["tags"]) > 1)


def full_page_needs_pages(combo: Combo) -> bool:
    """Full-page fetch degenerates to demand fetch on one-block frames."""
    return (combo["fetch"].kind != "full-page"
            or _page_blocks(combo["tags"]) > 1)


def replacement_needs_ways(combo: Combo) -> bool:
    """A victim policy only matters where sets have more than one way."""
    return (combo["replacement"].kind == "lru"
            or combo["tags"].kind in REPLACEMENT_TAG_KINDS)


def missmap_is_block_granular(combo: Combo) -> bool:
    """The MissMap organization tracks single blocks: demand fetch only."""
    return combo["tags"].kind != "missmap" or combo["fetch"].kind == "demand"


DEFAULT_CONSTRAINTS: Tuple[Callable[[Combo], bool], ...] = (
    way_prediction_needs_page_ways,
    footprint_needs_region_observer,
    full_page_needs_pages,
    replacement_needs_ways,
    missmap_is_block_granular,
)


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchSpace:
    """The component options per role plus the validity constraints."""

    tags: Tuple[ComponentSpec, ...]
    hit_predictors: Tuple[ComponentSpec, ...]
    fetches: Tuple[ComponentSpec, ...]
    writebacks: Tuple[ComponentSpec, ...]
    replacements: Tuple[ComponentSpec, ...]
    constraints: Tuple[Callable[[Combo], bool], ...] = DEFAULT_CONSTRAINTS

    def __post_init__(self) -> None:
        for role, options in self._role_options().items():
            if not options:
                raise ValueError(f"SearchSpace.{role} must not be empty")

    def _role_options(self) -> Dict[str, Tuple[ComponentSpec, ...]]:
        return {
            "tags": self.tags,
            "hit_predictor": self.hit_predictors,
            "fetch": self.fetches,
            "writeback": self.writebacks,
            "replacement": self.replacements,
        }

    # ------------------------------------------------------------------ #
    def combos(self) -> List[Dict[str, ComponentSpec]]:
        """Valid combinations, in deterministic nested enumeration order."""
        valid = []
        for tags in self.tags:
            for hit in self.hit_predictors:
                for fetch in self.fetches:
                    for writeback in self.writebacks:
                        for replacement in self.replacements:
                            combo = {
                                "tags": tags,
                                "hit_predictor": hit,
                                "fetch": fetch,
                                "writeback": writeback,
                                "replacement": replacement,
                            }
                            if all(check(combo)
                                   for check in self.constraints):
                                valid.append(combo)
        return valid

    def candidates(self) -> List[DesignSpec]:
        """One ``tune-<digest>`` DesignSpec per valid combination."""
        return [candidate_spec(combo) for combo in self.combos()]

    def __len__(self) -> int:
        return len(self.combos())

    def describe(self) -> str:
        options = self._role_options()
        shape = " x ".join(f"{len(opts)} {role}" for role, opts
                           in options.items())
        return (f"{shape} = {len(self)} valid candidates "
                f"({len(self.constraints)} constraints)")

    # ------------------------------------------------------------------ #
    # JSON round-trip (the tune state file persists the space it searched)
    # ------------------------------------------------------------------ #
    def to_config(self) -> Dict[str, object]:
        return {
            "roles": {
                role: [[spec.kind, spec.params_dict()] for spec in options]
                for role, options in self._role_options().items()
            },
            "constraints": [check.__name__ for check in self.constraints],
        }

    @classmethod
    def from_config(cls, config: Mapping[str, object]) -> "SearchSpace":
        roles = config["roles"]

        def parse(role: str) -> Tuple[ComponentSpec, ...]:
            return tuple(ComponentSpec(kind, params)
                         for kind, params in roles[role])

        known = {check.__name__: check for check in DEFAULT_CONSTRAINTS}
        constraints = tuple(known[name] for name in config["constraints"]
                            if name in known)
        return cls(tags=parse("tags"), hit_predictors=parse("hit_predictor"),
                   fetches=parse("fetch"), writebacks=parse("writeback"),
                   replacements=parse("replacement"),
                   constraints=constraints)


def candidate_name(combo: Combo) -> str:
    """Stable ``tune-<digest>`` name hashing the component recipe."""
    recipe = ";".join(f"{role}:{combo[role].token()}" for role in ROLES)
    return "tune-" + hashlib.sha256(recipe.encode("utf-8")).hexdigest()[:8]


def candidate_spec(combo: Combo) -> DesignSpec:
    """The generic-engine DesignSpec of one valid combination."""
    description = " + ".join(combo[role].describe() for role in ROLES)
    return DesignSpec(
        name=candidate_name(combo),
        tags=combo["tags"],
        hit_predictor=combo["hit_predictor"],
        fetch=combo["fetch"],
        writeback=combo["writeback"],
        replacement=combo["replacement"],
        description=f"tuned hybrid: {description}",
    )


def default_space() -> SearchSpace:
    """The stock hybrid grid: 66 valid compositions over five roles."""
    return SearchSpace(
        tags=(
            ComponentSpec("dram-page"),
            ComponentSpec("sram-page"),
            ComponentSpec("direct-mapped", {"page_blocks": 15}),
            ComponentSpec("missmap"),
        ),
        hit_predictors=(
            ComponentSpec("none"),
            ComponentSpec("way"),
            ComponentSpec("map-i"),
        ),
        fetches=(
            ComponentSpec("demand"),
            ComponentSpec("full-page"),
            ComponentSpec("footprint"),
        ),
        writebacks=(ComponentSpec("dirty"),),
        replacements=(
            ComponentSpec("lru"),
            ComponentSpec("random"),
            ComponentSpec("rrip"),
        ),
    )


__all__ = [
    "DEFAULT_CONSTRAINTS",
    "PAGE_TAG_KINDS",
    "REPLACEMENT_TAG_KINDS",
    "SearchSpace",
    "candidate_name",
    "candidate_spec",
    "default_space",
]
