"""Fused batch-warming kernels, bit-identical to the scalar engine.

Functional warming replays a trace prologue purely for its *state* side
effects -- tag arrays, LRU clocks, predictor tables, DRAM bank/channel
timing horizons -- and then calls ``reset_stats()``, discarding every
resettable statistic the replay produced.  The scalar path still pays for
those statistics: each access walks four policy-role objects, builds
``Lookup``/``HitPrediction``/``FetchDecision``/``AccessResult`` instances,
and updates a dozen counters that are about to be zeroed.

Each kernel below fuses one tag organization's entire service loop
(composed engine + tag organization + predictors + DRAM timing) into a
single Python loop over flat locals.  The rules that make the result
*bit-identical* to ``warm_up`` followed by ``reset_stats()``:

* every persistent state mutation happens in the same order, with the
  same values, as the scalar engine (including dict/OrderedDict insertion
  order, which pickles);
* every DRAM device operation is issued in the same order with the same
  (address, num_bytes, now, is_write) arguments, so the flattened timing
  state (:mod:`repro.engine.dramflat`) and the non-resettable
  request/byte counters come out identical;
* purely resettable statistics are skipped entirely.

:func:`select_kernel` gates dispatch on *exact* component types: a
subclass anywhere in the composition falls back to the scalar engine
rather than risk a silently-diverging shortcut.
"""

from __future__ import annotations

from itertools import repeat

from repro.cache.replacement import LruPolicy
from repro.dramcache.base import DramCacheModel
from repro.dramcache.composed import ComposedDramCache
from repro.dramcache.components import (
    AlwaysHitTags,
    DemandBlockFetch,
    DirectMappedBlockTags,
    DisabledMissPrediction,
    DramPageTags,
    DropDirtyPolicy,
    FootprintFetch,
    FullPageFetch,
    MissMapBlockTags,
    MissPredictionPolicy,
    NoCacheTags,
    NoHitPrediction,
    OracleWayPrediction,
    SramPageTags,
    WayPredictionPolicy,
    WritebackDirtyPolicy,
)
from repro.engine.dramflat import flatten_controller
from repro.predictors.singleton import SingletonEntry
from repro.trace.record import BLOCK_SIZE
from repro.utils.bitvector import BitVector
from repro.utils.hashing import mix64

# Exact types only: subclasses may override behaviour the kernels inline.
_NO_PREDICTION_TYPES = (NoHitPrediction, OracleWayPrediction,
                        DisabledMissPrediction)
_WRITEBACK_TYPES = (WritebackDirtyPolicy, DropDirtyPolicy)
_STATELESS_FETCH_TYPES = (DemandBlockFetch, FullPageFetch)
_FETCH_TYPES = (DemandBlockFetch, FullPageFetch, FootprintFetch)


def _lru_only(tags) -> bool:
    """True when every per-set replacement policy is exactly LRU.

    The set-associative and MissMap kernels inline LRU's clock/recency
    updates; any other replacement component (random, RRIP) must take the
    scalar path, which drives the real policy objects.
    """
    return all(type(policy) is LruPolicy for policy in tags.lru)


def select_kernel(design):
    """Return the fused kernel covering ``design``, or None (scalar path).

    Coverage is decided by identity: the design must be a
    :class:`ComposedDramCache` running the stock ``access``/
    ``_service_request`` drivers, and all four policy roles must be exact
    instances of the component classes the kernels transliterate.
    """
    if not isinstance(design, ComposedDramCache):
        return None
    cls = type(design)
    if cls._service_request is not ComposedDramCache._service_request:
        return None
    if cls.access is not DramCacheModel.access:
        return None
    hp_type = type(design.hit_predictor)
    hp_none = hp_type in _NO_PREDICTION_TYPES
    fetch_type = type(design.fetch)
    if type(design.writeback) not in _WRITEBACK_TYPES:
        return None

    tags_type = type(design.tags)
    if tags_type in (DramPageTags, SramPageTags):
        if not (hp_none or hp_type is WayPredictionPolicy):
            return None
        if fetch_type not in _FETCH_TYPES:
            return None
        if not _lru_only(design.tags):
            return None
        return _warm_page_set_assoc
    if tags_type is DirectMappedBlockTags:
        if not (hp_none or hp_type is MissPredictionPolicy):
            return None
        if fetch_type not in _FETCH_TYPES:
            return None
        return _warm_direct_mapped
    if tags_type is MissMapBlockTags:
        if not hp_none or fetch_type not in _STATELESS_FETCH_TYPES:
            return None
        if not _lru_only(design.tags):
            return None
        return _warm_missmap
    if tags_type is AlwaysHitTags:
        if not hp_none:
            return None
        return _warm_always_hit
    if tags_type is NoCacheTags:
        if not hp_none or fetch_type not in _STATELESS_FETCH_TYPES:
            return None
        return _warm_no_cache
    return None


class _FootprintState:
    """Flat view of a FootprintFetch (history table + singleton table).

    Methods transliterate ``FootprintFetch.plan`` / ``on_bypass`` /
    ``learn_eviction`` and ``FootprintPredictor.predict`` / ``update``,
    mutating the *real* dicts in place (their insertion order pickles) and
    keeping only the clock and the non-resettable singleton counters in
    locals until :meth:`flush`.
    """

    __slots__ = ("fp", "st", "sets", "recency", "clock", "num_sets",
                 "assoc", "default_ones", "width", "st_width", "entries",
                 "cap", "ins", "pro", "evi")

    def __init__(self, fetch: FootprintFetch) -> None:
        fp = fetch.predictor
        st = fetch.singleton_table
        self.fp = fp
        self.st = st
        self.sets = fp._sets
        self.recency = fp._recency
        self.clock = fp._clock
        self.num_sets = fp.num_sets
        self.assoc = fp.associativity
        self.default_ones = fp.default_all_blocks
        self.width = fp.blocks_per_page
        self.st_width = st.blocks_per_page
        self.entries = st._entries
        self.cap = st.num_entries
        self.ins = st.insertions
        self.pro = st.promotions
        self.evi = st.evictions

    def update(self, pc: int, offset: int, value: int) -> None:
        """FootprintPredictor.update with the footprint as a plain int."""
        set_index = mix64(pc * 1000003 + offset) % self.num_sets
        key = (pc, offset)
        entries = self.sets.setdefault(set_index, {})
        if key not in entries and len(entries) >= self.assoc:
            recency = self.recency.get(set_index)
            if recency:
                victim = min(entries, key=lambda k: recency.get(k, 0))
                recency.pop(victim, None)
            else:
                # No recency info: min() over all-equal keys picks the
                # first in iteration order, exactly like the scalar path.
                victim = next(iter(entries))
            del entries[victim]
        entries[key] = BitVector(self.width, value)
        self.clock += 1
        recency = self.recency.get(set_index)
        if recency is None:
            recency = {}
            self.recency[set_index] = recency
        recency[key] = self.clock

    def plan(self, page: int, pc: int, offset: int):
        """FootprintFetch.plan -> (footprint_value, from_history, bypass,
        note_singleton)."""
        bit = 1 << offset
        entries = self.entries
        entry = entries.get(page)
        corrected = False
        if entry is not None:
            entries.move_to_end(page)
            observed = entry.observed
            value = observed._value | bit
            observed._value = value
            if value & (value - 1):
                # A second block was demanded: not a singleton after all.
                del entries[page]
                self.pro += 1
                self.update(entry.trigger_pc, entry.trigger_offset, value)
                corrected = True
        set_index = mix64(pc * 1000003 + offset) % self.num_sets
        history = self.sets.get(set_index)
        trained = history.get((pc, offset)) if history is not None else None
        if trained is not None:
            self.clock += 1
            recency = self.recency.get(set_index)
            if recency is None:
                recency = {}
                self.recency[set_index] = recency
            recency[(pc, offset)] = self.clock
            footprint = trained._value | bit
            if footprint == bit:
                return bit, True, True, not corrected
            return footprint, True, False, False
        if self.default_ones:
            return (1 << self.width) - 1, False, False, False
        return bit, False, False, False

    def insert_singleton(self, page: int, pc: int, offset: int) -> None:
        """SingletonTable.insert (the on_bypass path)."""
        entries = self.entries
        if page in entries:
            entries.pop(page)
        elif len(entries) >= self.cap:
            entries.popitem(last=False)
            self.evi += 1
        entries[page] = SingletonEntry(
            page_number=page,
            trigger_pc=pc,
            trigger_offset=offset,
            observed=BitVector(self.st_width, 1 << offset),
        )
        self.ins += 1

    def learn_eviction(self, trigger_pc: int, trigger_offset: int,
                       demanded_value: int) -> None:
        if demanded_value == 0:
            demanded_value = 1 << trigger_offset
        self.update(trigger_pc, trigger_offset, demanded_value)

    def flush(self) -> None:
        self.fp._clock = self.clock
        self.st.insertions = self.ins
        self.st.promotions = self.pro
        self.st.evictions = self.evi


# --------------------------------------------------------------------- #
# Kernel A: set-associative page organizations (Unison / Footprint Cache)
# --------------------------------------------------------------------- #
def _warm_page_set_assoc(design, cols) -> None:
    tags = design.tags
    is_dram = type(tags) is DramPageTags
    cfg = tags.config
    num_sets = tags.num_sets
    assoc = tags.associativity
    bpp = tags.blocks_per_page
    frames = tags.frames
    lru = tags.lru

    stacked_flat = flatten_controller(design.stacked.controller)
    memory_flat = flatten_controller(design.memory.controller)
    s_access = stacked_flat.access
    s_burst = stacked_flat.burst
    s_pair = stacked_flat.read_pair
    m_access = memory_flat.access
    m_burst = memory_flat.burst
    srow_bytes = design.stacked.row_bytes
    memory = design.memory
    m_read = m_written = m_req = 0

    if is_dram:
        layout = tags.layout
        ppr = layout.pages_per_row
        pres_pp = layout.presence_bytes_per_page
        pres_set = layout.presence_bytes_per_set
        other_base = layout.presence_bytes_per_row
        meta_bytes = layout.pc_offset_bytes_per_page
        data_base = layout.data_base_offset
        page_bytes = layout.page_data_bytes
        block_bytes = cfg.block_size
        overhead = cfg.tag_read_overhead_cycles
        serialized = tags.hit_path == "serialized"
    else:
        ppr = tags.pages_per_row
        page_bytes = cfg.page_size
        block_bytes = cfg.block_size
        tag_latency = tags.tag_latency_cycles

    hp = design.hit_predictor
    way_pred = type(hp) is WayPredictionPolicy
    if way_pred:
        predictor = hp.predictor
        wp_table = predictor._table
        wp_assoc = predictor.associativity
        penalty = hp.mispredict_penalty_cycles
        wp_idx = cols.way_indices(bpp, predictor.index_bits)
    else:
        wp_idx = repeat(0)

    fetch = design.fetch
    fp = _FootprintState(fetch) if type(fetch) is FootprintFetch else None
    full_page = type(fetch) is FullPageFetch
    ones_mask = (1 << bpp) - 1
    wb_dirty = type(design.writeback) is WritebackDirtyPolicy

    # A page resides in at most one frame; allocations happen only on page
    # misses and evictions delete, so this stays a bijection.
    page_way = {}
    for set_index in range(num_sets):
        for way, frame in enumerate(frames[set_index]):
            if frame.valid:
                page_way[frame.page_number] = way

    # Device addresses are pure functions of the frame index, so derive the
    # row/slot arithmetic once per frame instead of once per access.
    # ``frame_base[f]`` is the data address of frame ``f``'s first block;
    # for the in-DRAM layout, ``pres_addr[f]`` / ``meta_addr[f]`` locate its
    # presence and PC/offset metadata and ``tag_addr[s]`` the set's tag read.
    num_frames = num_sets * assoc
    frame_base = []
    if is_dram:
        pres_addr = []
        meta_addr = []
        for f in range(num_frames):
            row = f // ppr
            slot = f - row * ppr
            base = row * srow_bytes
            frame_base.append(base + data_base + slot * page_bytes)
            pres_addr.append(base + slot * pres_pp)
            meta_addr.append(base + other_base + slot * meta_bytes)
        tag_addr = [pres_addr[s * assoc] for s in range(num_sets)]
    else:
        for f in range(num_frames):
            row = f // ppr
            frame_base.append(row * srow_bytes + (f - row * ppr) * page_bytes)

    # LRU state, flattened (clocks in a list, the live recency dicts
    # aliased so in-place mutation matches the scalar engine bit-for-bit).
    lru_clock = [policy._clock for policy in lru]
    lru_rec = [policy._recency for policy in lru]

    now = design._now
    gap = design._interarrival

    for block, pc, is_write, widx in zip(cols.blk, cols.pc, cols.wr, wp_idx):
        now += gap
        page = block // bpp
        offset = block - page * bpp
        try:
            way = page_way[page]
        except KeyError:
            way = -1
        if way >= 0:
            set_index = page % num_sets
            frame = frames[set_index][way]
            # Way-predictor training (observe) happens on every page hit.
            if way_pred:
                predicted = wp_table[widx]
                wp_table[widx] = way
                correct = predicted == way
            else:
                correct = True
            # tags.touch
            frame.demanded._value |= 1 << offset
            if is_write:
                frame.dbits._value |= 1 << offset
            clock = lru_clock[set_index] + 1
            lru_clock[set_index] = clock
            lru_rec[set_index][way] = clock

            if (frame.vbits._value >> offset) & 1:
                # Block hit.
                if is_dram:
                    set_base = set_index * assoc
                    read_way = way if correct else (way + 1) % wp_assoc
                    latency = s_pair(
                        tag_addr[set_index], pres_set,
                        frame_base[set_base + read_way]
                        + offset * block_bytes,
                        BLOCK_SIZE, now, serialized) + overhead
                    if not correct:
                        latency += penalty
                    if is_write:
                        # on_hit_write targets the *actual* way.
                        s_access(
                            frame_base[set_base + way]
                            + offset * block_bytes,
                            block_bytes, now, True)
                else:
                    address = (frame_base[set_index * assoc + way]
                               + offset * block_bytes)
                    latency = tag_latency + s_access(address, block_bytes,
                                                     now, False)
                    if is_write:
                        s_access(address, block_bytes, now, True)
                now += latency
                continue

            # Page hit, block miss (footprint underprediction).
            if is_dram:
                lookup_lat = s_access(tag_addr[set_index], pres_set, now,
                                      False) + overhead
            else:
                lookup_lat = tag_latency
            offchip = m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, False)
            m_read += 1
            m_req += 1
            # tags.fill_block
            frame.vbits._value |= 1 << offset
            s_access(frame_base[set_index * assoc + way]
                     + offset * block_bytes,
                     block_bytes, now, True)
            now += lookup_lat + offchip
            continue

        # Trigger miss.
        set_index = page % num_sets
        if is_dram:
            lookup_lat = s_access(tag_addr[set_index], pres_set, now,
                                  False) + overhead
        else:
            lookup_lat = tag_latency

        if fp is not None:
            footprint, from_history, bypass, note = fp.plan(page, pc, offset)
            if bypass:
                offchip = m_access(block * BLOCK_SIZE, BLOCK_SIZE, now,
                                   False)
                m_read += 1
                m_req += 1
                if note:
                    fp.insert_singleton(page, pc, offset)
                now += lookup_lat + offchip
                continue
            footprint |= 1 << offset
        elif full_page:
            footprint = ones_mask
            from_history = False
        else:
            footprint = 1 << offset
            from_history = False

        # allocate: LRU victim, evict, fetch, install, device fill.
        set_frames = frames[set_index]
        victim = -1
        for way, frame in enumerate(set_frames):
            if not frame.valid:
                victim = way
                break
        if victim < 0:
            recency = lru_rec[set_index]
            victim = 0
            best = recency[0]
            for way in range(1, assoc):
                if recency[way] < best:
                    best = recency[way]
                    victim = way
        frame = set_frames[victim]
        if frame.valid:
            if is_dram:
                s_access(meta_addr[set_index * assoc + victim],
                         meta_bytes, now, False)
            if fp is not None:
                fp.learn_eviction(frame.trigger_pc, frame.trigger_offset,
                                  frame.demanded._value)
            dirty = frame.dbits._value & frame.vbits._value
            if dirty and wb_dirty:
                m_burst(frame.page_number * bpp * BLOCK_SIZE, BLOCK_SIZE,
                        dirty, BLOCK_SIZE, now, True)
                m_written += bin(dirty).count("1")
                m_req += 1
            del page_way[frame.page_number]

        # Fetch the footprint's blocks; the trigger (lowest) read is the
        # critical one whose latency the request observes.
        offchip = m_burst(page * bpp * BLOCK_SIZE, BLOCK_SIZE, footprint,
                          BLOCK_SIZE, now, False)
        m_read += bin(footprint).count("1")
        m_req += 1

        frame.valid = True
        frame.page_number = page
        frame.vbits = BitVector(bpp, footprint)
        frame.dbits = BitVector(bpp, (1 << offset) if is_write else 0)
        frame.demanded = BitVector(bpp, 1 << offset)
        frame.predicted = BitVector(bpp, footprint)
        frame.predicted_from_history = from_history
        frame.trigger_pc = pc
        frame.trigger_offset = offset
        clock = lru_clock[set_index] + 1
        lru_clock[set_index] = clock
        lru_rec[set_index][victim] = clock
        page_way[page] = victim

        fill_frame = set_index * assoc + victim
        s_burst(frame_base[fill_frame], block_bytes, footprint, BLOCK_SIZE,
                now, True)
        if is_dram:
            s_access(pres_addr[fill_frame], pres_pp, now, True)
        now += lookup_lat + offchip

    design._now = now
    for policy, clock in zip(lru, lru_clock):
        policy._clock = clock
    stacked_flat.writeback()
    memory_flat.writeback()
    memory.blocks_read += m_read
    memory.blocks_written += m_written
    memory.requests += m_req
    if fp is not None:
        fp.flush()


# --------------------------------------------------------------------- #
# Kernel B: direct-mapped TAD organization (Alloy, alloy+footprint)
# --------------------------------------------------------------------- #
def _warm_direct_mapped(design, cols) -> None:
    tags = design.tags
    cfg = tags.config
    num_blocks = tags.num_blocks
    bpp = tags.blocks_per_page
    tag_array = tags.tag_array
    dirty = tags.dirty
    blocks_per_row = cfg.blocks_per_row
    tad_bytes = cfg.tad_bytes
    regions = tags._regions
    region_cap = tags.region_observer_entries

    stacked_flat = flatten_controller(design.stacked.controller)
    memory_flat = flatten_controller(design.memory.controller)
    s_access = stacked_flat.access
    m_access = memory_flat.access
    srow_bytes = design.stacked.row_bytes
    memory = design.memory
    m_read = m_written = m_req = 0

    hp = design.hit_predictor
    mapi = type(hp) is MissPredictionPolicy
    if mapi:
        predictor = hp.predictor
        mp_tables = predictor._tables
        mp_max = predictor._max_value
        mp_threshold = predictor._threshold
        pred_lat = hp.latency_cycles
        mp_idx = cols.mapi_indices(predictor._index_bits,
                                   predictor.entries_per_core)
    else:
        pred_lat = 0
        mp_idx = repeat(0)

    fetch = design.fetch
    fp = _FootprintState(fetch) if type(fetch) is FootprintFetch else None
    full_page = type(fetch) is FullPageFetch
    ones_mask = (1 << bpp) - 1
    wb_dirty = type(design.writeback) is WritebackDirtyPolicy

    now = design._now
    gap = design._interarrival

    for block, pc, is_write, core, pidx in zip(cols.blk, cols.pc, cols.wr,
                                               cols.core, mp_idx):
        now += gap
        frame = block % num_blocks
        hit = tag_array[frame] == block // num_blocks
        if mapi:
            table = mp_tables[core]
            counter = table[pidx]
            predicted_miss = counter >= mp_threshold
            if hit:
                table[pidx] = counter - 1 if counter > 0 else 0
            else:
                table[pidx] = counter + 1 if counter < mp_max else counter
        else:
            predicted_miss = False

        if hit:
            # tags.touch -> region observer demand (multi-block pages only).
            if bpp > 1:
                page = block // bpp
                entry = regions.pop(page, None)
                if entry is not None:
                    entry[2]._value |= 1 << (block - page * bpp)
                    regions[page] = entry
            row = frame // blocks_per_row
            tad_address = (row * srow_bytes
                           + (frame - row * blocks_per_row) * tad_bytes)
            latency = pred_lat + s_access(tad_address, tad_bytes, now, False)
            if predicted_miss:
                # The (wrongly) issued parallel off-chip read completes too.
                m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, False)
                m_read += 1
                m_req += 1
            if is_write:
                s_access(tad_address, tad_bytes, now, True)
                dirty[frame] = True
            now += latency
            continue

        # Miss path.
        if predicted_miss:
            lookup_lat = 0
        else:
            row = frame // blocks_per_row
            lookup_lat = s_access(
                row * srow_bytes
                + (frame - row * blocks_per_row) * tad_bytes,
                tad_bytes, now, False)
        page = block // bpp
        offset = block - page * bpp

        if fp is not None:
            footprint, from_history, bypass, note = fp.plan(page, pc, offset)
            if bypass:
                offchip = m_access(block * BLOCK_SIZE, BLOCK_SIZE, now,
                                   False)
                m_read += 1
                m_req += 1
                if note:
                    fp.insert_singleton(page, pc, offset)
                now += pred_lat + lookup_lat + offchip
                continue
            footprint |= 1 << offset
        elif full_page:
            footprint = ones_mask
            from_history = False
        else:
            footprint = 1 << offset
            from_history = False

        if footprint == 1 << offset:
            # Single-block allocation (the Alloy fast path).
            offchip = m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, False)
            m_read += 1
            m_req += 1
            old_tag = tag_array[frame]
            if old_tag >= 0 and dirty[frame] and wb_dirty:
                m_access((old_tag * num_blocks + frame) * BLOCK_SIZE,
                         BLOCK_SIZE, now, True)
                m_written += 1
                m_req += 1
            tag_array[frame] = block // num_blocks
            dirty[frame] = is_write
            row = frame // blocks_per_row
            s_access(row * srow_bytes
                     + (frame - row * blocks_per_row) * tad_bytes,
                     tad_bytes, now, True)
            now += pred_lat + lookup_lat + offchip
            continue

        # Multi-block footprint (hybrid): fetch the region, install each
        # block into its own direct-mapped frame.
        base_block = page * bpp
        value = footprint
        low = value & -value
        offchip = m_access((base_block + low.bit_length() - 1) * BLOCK_SIZE,
                           BLOCK_SIZE, now, False)
        m_read += 1
        value ^= low
        while value:
            low = value & -value
            m_access((base_block + low.bit_length() - 1) * BLOCK_SIZE,
                     BLOCK_SIZE, now, False)
            m_read += 1
            value ^= low
        m_req += 1

        value = footprint
        while value:
            low = value & -value
            fetched = base_block + low.bit_length() - 1
            value ^= low
            install_frame = fetched % num_blocks
            old_tag = tag_array[install_frame]
            if old_tag >= 0 and dirty[install_frame] and wb_dirty:
                m_access((old_tag * num_blocks + install_frame) * BLOCK_SIZE,
                         BLOCK_SIZE, now, True)
                m_written += 1
                m_req += 1
            tag_array[install_frame] = fetched // num_blocks
            dirty[install_frame] = is_write and fetched == block
            row = install_frame // blocks_per_row
            s_access(row * srow_bytes
                     + (install_frame - row * blocks_per_row) * tad_bytes,
                     tad_bytes, now, True)

        # _observe_allocation (bpp > 1 whenever the footprint is multi-bit).
        stale = regions.pop(page, None)
        if stale is None and len(regions) >= region_cap:
            stale = regions.pop(next(iter(regions)))
        if stale is not None and fp is not None:
            fp.learn_eviction(stale[0], stale[1], stale[2]._value)
        regions[page] = (pc, offset, BitVector(bpp, 1 << offset),
                        BitVector(bpp, footprint), from_history)
        now += pred_lat + lookup_lat + offchip

    design._now = now
    stacked_flat.writeback()
    memory_flat.writeback()
    memory.blocks_read += m_read
    memory.blocks_written += m_written
    memory.requests += m_req
    if fp is not None:
        fp.flush()


# --------------------------------------------------------------------- #
# Kernel C: MissMap-fronted set-per-row organization (Loh-Hill)
# --------------------------------------------------------------------- #
def _warm_missmap(design, cols) -> None:
    tags = design.tags
    num_sets = tags.num_sets
    assoc = tags.associativity
    tag_blocks = tags.tag_blocks_per_row
    block_bytes = tags.block_size
    mm_latency = tags.missmap_latency_cycles
    tag_array = tags.tag_array
    dirty = tags.dirty
    lru = tags.lru
    missmap = tags.missmap

    stacked_flat = flatten_controller(design.stacked.controller)
    memory_flat = flatten_controller(design.memory.controller)
    s_access = stacked_flat.access
    m_access = memory_flat.access
    srow_bytes = design.stacked.row_bytes
    memory = design.memory
    m_read = m_written = m_req = 0
    wb_dirty = type(design.writeback) is WritebackDirtyPolicy

    # Present block -> way, maintained alongside the real missmap dict.
    way_of = {}
    for set_index in range(num_sets):
        for way, tag in enumerate(tag_array[set_index]):
            if tag >= 0:
                block = tag * num_sets + set_index
                if missmap.get(block, False):
                    way_of[block] = way

    now = design._now
    gap = design._interarrival
    way_of_get = way_of.get
    tag_read_bytes = tag_blocks * block_bytes

    for block, is_write in zip(cols.blk, cols.wr):
        now += gap
        set_index = block % num_sets
        way = way_of_get(block, -1)
        if way >= 0:
            policy = lru[set_index]
            policy._clock += 1
            policy._recency[way] = policy._clock
            tag_lat = s_access(set_index * srow_bytes, tag_read_bytes, now,
                               False)
            data_lat = s_access(set_index * srow_bytes
                                + (tag_blocks + way) * block_bytes,
                                block_bytes, now, False)
            if is_write:
                dirty[set_index][way] = True
            now += mm_latency + tag_lat + data_lat
            continue

        # Miss: MissMap answers without a DRAM tag read; allocate.
        offchip = m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, False)
        m_read += 1
        m_req += 1
        row_tags = tag_array[set_index]
        try:
            victim = row_tags.index(-1)
        except ValueError:
            recency = lru[set_index]._recency
            victim = 0
            best = recency[0]
            for way in range(1, assoc):
                if recency[way] < best:
                    best = recency[way]
                    victim = way
        victim_tag = row_tags[victim]
        if victim_tag >= 0:
            victim_block = victim_tag * num_sets + set_index
            missmap.pop(victim_block, None)
            way_of.pop(victim_block, None)
            if dirty[set_index][victim] and wb_dirty:
                m_access(victim_block * BLOCK_SIZE, BLOCK_SIZE, now, True)
                m_written += 1
                m_req += 1
        row_tags[victim] = block // num_sets
        dirty[set_index][victim] = is_write
        policy = lru[set_index]
        policy._clock += 1
        policy._recency[victim] = policy._clock
        missmap[block] = True
        way_of[block] = victim
        s_access(set_index * srow_bytes, block_bytes, now, True)
        s_access(set_index * srow_bytes
                 + (tag_blocks + victim) * block_bytes,
                 block_bytes, now, True)
        now += mm_latency + offchip

    design._now = now
    stacked_flat.writeback()
    memory_flat.writeback()
    memory.blocks_read += m_read
    memory.blocks_written += m_written
    memory.requests += m_req


# --------------------------------------------------------------------- #
# Kernel D: the ideal always-hit reference
# --------------------------------------------------------------------- #
def _warm_always_hit(design, cols) -> None:
    tags = design.tags
    row_bytes = tags.row_buffer_size
    block_bytes = tags.block_size
    stacked_flat = flatten_controller(design.stacked.controller)
    s_access = stacked_flat.access
    srow_bytes = design.stacked.row_bytes

    now = design._now
    gap = design._interarrival
    for address in cols.addr:
        now += gap
        row = address // row_bytes
        offset = address % row_bytes // block_bytes * block_bytes
        now += s_access(row * srow_bytes + offset, block_bytes, now, False)

    design._now = now
    stacked_flat.writeback()


# --------------------------------------------------------------------- #
# Kernel E: no stacked cache, everything off chip
# --------------------------------------------------------------------- #
def _warm_no_cache(design, cols) -> None:
    memory_flat = flatten_controller(design.memory.controller)
    m_access = memory_flat.access
    memory = design.memory
    m_read = m_written = 0

    now = design._now
    gap = design._interarrival
    for block, is_write in zip(cols.blk, cols.wr):
        now += gap
        if is_write:
            now += m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, True)
            m_written += 1
        else:
            now += m_access(block * BLOCK_SIZE, BLOCK_SIZE, now, False)
            m_read += 1

    design._now = now
    memory_flat.writeback()
    memory.blocks_read += m_read
    memory.blocks_written += m_written
    memory.requests += m_read + m_written


__all__ = ["select_kernel"]
