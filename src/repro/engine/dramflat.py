"""Flattened DRAM timing state for the fused batch-warming kernels.

The object-graph timing model (``DramController`` -> ``Channel`` ->
``Bank``) is exact but slow: every access crosses three method calls and
builds an ``AccessResult``/``BankAccessResult`` pair.  During functional
warming the caller discards every latency *statistic* afterwards
(``reset_stats``), but the *state* the controller accumulates -- bank
open rows, per-bank timing horizons, channel data-bus reservations, the
tFAW activation window, and the non-resettable request/byte counters --
is part of the design's snapshot and must come out bit-identical.

:func:`flatten_controller` lifts one controller's state into flat local
lists inside a closure, services accesses with zero object construction,
and writes everything back (including re-derived ``BankState`` enums and
the activation ``deque``) when the batch ends.  The arithmetic below is a
line-for-line transliteration of ``dram/controller.py``, ``channel.py``
and ``bank.py``; any change there must be mirrored here (the batch-engine
equivalence tests catch drift).
"""

from __future__ import annotations

from collections import deque

from repro.dram.bank import BankState


class FlatDram:
    """Handle returned by :func:`flatten_controller`.

    ``access(address, num_bytes, now_cpu, is_write) -> latency_cpu`` mirrors
    ``DramController.access(...).latency_cpu_cycles``; ``writeback()`` must
    be called exactly once, after the batch, to restore the object graph.
    """

    __slots__ = ("access", "burst", "read_pair", "writeback")

    def __init__(self, access, burst, read_pair, writeback) -> None:
        self.access = access
        self.burst = burst
        self.read_pair = read_pair
        self.writeback = writeback


def flatten_controller(controller) -> FlatDram:
    """Capture ``controller`` into a closure-based flat timing engine."""
    config = controller.config
    timings = controller.timings
    mapping = controller.mapping
    channels = controller.channels
    cpu_per_dram = controller._cpu_per_dram

    num_channels = config.num_channels
    banks_per_channel = config.banks_per_rank
    row_bytes = mapping.row_bytes

    t_cas = timings.t_cas
    t_rcd = timings.t_rcd
    t_rp = timings.t_rp
    t_ras = timings.t_ras
    t_rc = timings.t_rc
    t_wr = timings.t_wr
    t_wtr = timings.t_wtr
    t_rtp = timings.t_rtp
    t_rrd = timings.t_rrd
    t_faw = timings.t_faw
    faw_window = 4  # Channel._recent_activates maxlen

    # Per-global-bank flat state, bank index g = channel * banks + bank.
    b_open = []   # open_row (-1 == idle; BankState is derived from this)
    b_act = []    # _next_activate
    b_col = []    # _next_column
    b_pre = []    # _next_precharge
    b_acts = []   # activations
    b_hits = []   # row_hits
    b_miss = []   # row_misses
    b_conf = []   # row_conflicts
    # Per-channel flat state.
    c_bus = []    # _data_bus_free
    c_last = []   # _last_activate
    c_recent = []  # _recent_activates as a plain list
    c_reads = []
    c_writes = []
    c_bytes = []
    for channel in channels:
        c_bus.append(channel._data_bus_free)
        c_last.append(channel._last_activate)
        c_recent.append(list(channel._recent_activates))
        c_reads.append(channel.reads)
        c_writes.append(channel.writes)
        c_bytes.append(channel.bytes_transferred)
        for bank in channel.banks:
            b_open.append(bank.open_row)
            b_act.append(bank._next_activate)
            b_col.append(bank._next_column)
            b_pre.append(bank._next_precharge)
            b_acts.append(bank.activations)
            b_hits.append(bank.row_hits)
            b_miss.append(bank.row_misses)
            b_conf.append(bank.row_conflicts)

    totals = [controller.total_requests]
    # data_cycles(num_bytes) is pure; warming uses only a handful of sizes.
    transfer_cache = {}
    data_cycles = timings.data_cycles

    def access(address: int, num_bytes: int, now_cpu: int,
               is_write: bool) -> int:
        # Kernels only issue positive sizes, so the controller's num_bytes
        # validation is elided here.
        # AddressMapping.decompose, inlined.
        stripe = address // row_bytes
        ch = stripe % num_channels
        stripe //= num_channels
        row = stripe // banks_per_channel
        g = ch * banks_per_channel + stripe % banks_per_channel

        now = int(now_cpu / cpu_per_dram)

        # Channel.access + Bank.access, inlined.
        if b_open[g] == row:
            b_hits[g] += 1
            column_issue = b_col[g]
            if now > column_issue:
                column_issue = now
            next_column = column_issue
        else:
            issue_time = c_last[ch] + t_rrd
            if now > issue_time:
                issue_time = now
            rec = c_recent[ch]
            if len(rec) == faw_window:
                faw_ready = rec[0] + t_faw
                if faw_ready > issue_time:
                    issue_time = faw_ready
                del rec[0]
            rec.append(issue_time)
            c_last[ch] = issue_time

            next_activate = b_act[g]
            if b_open[g] >= 0:
                # Row conflict: precharge the open row first.
                b_conf[g] += 1
                precharge_issue = b_pre[g]
                if issue_time > precharge_issue:
                    precharge_issue = issue_time
                ready = precharge_issue + t_rp
                if ready > next_activate:
                    next_activate = ready
            else:
                b_miss[g] += 1
                ready = issue_time
                if next_activate > ready:
                    ready = next_activate
            if next_activate > ready:
                activate_issue = next_activate
            else:
                activate_issue = ready
            b_open[g] = row
            b_acts[g] += 1
            b_act[g] = activate_issue + t_rc
            b_pre[g] = activate_issue + t_ras
            column_ready = activate_issue + t_rcd
            next_column = b_col[g]
            if column_ready > next_column:
                next_column = column_ready
            column_issue = next_column
            if now > column_issue:
                column_issue = now

        if is_write:
            data_start = column_issue
            horizon = column_issue + t_wr
            if horizon > b_pre[g]:
                b_pre[g] = horizon
            horizon = column_issue + t_wtr
            if horizon > next_column:
                next_column = horizon
            c_writes[ch] += 1
        else:
            data_start = column_issue + t_cas
            horizon = column_issue + t_rtp
            if horizon > b_pre[g]:
                b_pre[g] = horizon
            horizon = column_issue + 1
            if horizon > next_column:
                next_column = horizon
            c_reads[ch] += 1
        b_col[g] = next_column

        try:
            transfer = transfer_cache[num_bytes]
        except KeyError:
            transfer = transfer_cache[num_bytes] = data_cycles(num_bytes)
        if c_bus[ch] > data_start:
            data_start = c_bus[ch]
        data_end = data_start + transfer
        c_bus[ch] = data_end
        c_bytes[ch] += num_bytes
        totals[0] += 1

        # _to_cpu_cycles(data_end - now): ceil under float semantics.
        return int(-(-(data_end - now) * cpu_per_dram // 1))

    def burst(base: int, stride: int, mask: int, num_bytes: int,
              now_cpu: int, is_write: bool) -> int:
        """One device op per set bit of ``mask``, ascending, at
        ``base + bit_index * stride``; returns the *first* op's latency
        (the critical block of a fetch; fills and writebacks ignore it).

        Bit-identical to calling :func:`access` once per bit -- the only
        shortcut is skipping the address decompose while consecutive ops
        stay in the same DRAM row, which is the common case because a
        page's blocks live in one row.
        """
        now = int(now_cpu / cpu_per_dram)
        try:
            transfer = transfer_cache[num_bytes]
        except KeyError:
            transfer = transfer_cache[num_bytes] = data_cycles(num_bytes)
        first_latency = -1
        cur_stripe = -1
        ch = g = row = 0
        # Bank and channel state cached in locals across the run, flushed
        # whenever the run leaves the row and once at the end.
        open_row = col = act = pre = hits = miss = conf = acts = 0
        bus = last = reads = writes = nbytes = 0
        count = 0
        while mask:
            low = mask & -mask
            mask ^= low
            address = base + (low.bit_length() - 1) * stride
            stripe = address // row_bytes
            if stripe != cur_stripe:
                if cur_stripe >= 0:
                    b_open[g] = open_row
                    b_col[g] = col
                    b_act[g] = act
                    b_pre[g] = pre
                    b_hits[g] = hits
                    b_miss[g] = miss
                    b_conf[g] = conf
                    b_acts[g] = acts
                    c_bus[ch] = bus
                    c_last[ch] = last
                    c_reads[ch] = reads
                    c_writes[ch] = writes
                    c_bytes[ch] = nbytes
                cur_stripe = stripe
                ch = stripe % num_channels
                rest = stripe // num_channels
                row = rest // banks_per_channel
                g = ch * banks_per_channel + rest % banks_per_channel
                open_row = b_open[g]
                col = b_col[g]
                act = b_act[g]
                pre = b_pre[g]
                hits = b_hits[g]
                miss = b_miss[g]
                conf = b_conf[g]
                acts = b_acts[g]
                bus = c_bus[ch]
                last = c_last[ch]
                reads = c_reads[ch]
                writes = c_writes[ch]
                nbytes = c_bytes[ch]

            if open_row == row:
                hits += 1
                column_issue = col
                if now > column_issue:
                    column_issue = now
                next_column = column_issue
            else:
                issue_time = last + t_rrd
                if now > issue_time:
                    issue_time = now
                rec = c_recent[ch]
                if len(rec) == faw_window:
                    faw_ready = rec[0] + t_faw
                    if faw_ready > issue_time:
                        issue_time = faw_ready
                    del rec[0]
                rec.append(issue_time)
                last = issue_time

                next_activate = act
                if open_row >= 0:
                    conf += 1
                    precharge_issue = pre
                    if issue_time > precharge_issue:
                        precharge_issue = issue_time
                    ready = precharge_issue + t_rp
                    if ready > next_activate:
                        next_activate = ready
                else:
                    miss += 1
                    ready = issue_time
                    if next_activate > ready:
                        ready = next_activate
                if next_activate > ready:
                    activate_issue = next_activate
                else:
                    activate_issue = ready
                open_row = row
                acts += 1
                act = activate_issue + t_rc
                pre = activate_issue + t_ras
                column_ready = activate_issue + t_rcd
                next_column = col
                if column_ready > next_column:
                    next_column = column_ready
                column_issue = next_column
                if now > column_issue:
                    column_issue = now

            if is_write:
                data_start = column_issue
                horizon = column_issue + t_wr
                if horizon > pre:
                    pre = horizon
                horizon = column_issue + t_wtr
                if horizon > next_column:
                    next_column = horizon
                writes += 1
            else:
                data_start = column_issue + t_cas
                horizon = column_issue + t_rtp
                if horizon > pre:
                    pre = horizon
                horizon = column_issue + 1
                if horizon > next_column:
                    next_column = horizon
                reads += 1
            col = next_column

            if bus > data_start:
                data_start = bus
            data_end = data_start + transfer
            bus = data_end
            nbytes += num_bytes
            count += 1
            if first_latency < 0:
                first_latency = int(-(-(data_end - now) * cpu_per_dram
                                      // 1))
        if cur_stripe >= 0:
            b_open[g] = open_row
            b_col[g] = col
            b_act[g] = act
            b_pre[g] = pre
            b_hits[g] = hits
            b_miss[g] = miss
            b_conf[g] = conf
            b_acts[g] = acts
            c_bus[ch] = bus
            c_last[ch] = last
            c_reads[ch] = reads
            c_writes[ch] = writes
            c_bytes[ch] = nbytes
        totals[0] += count
        return first_latency

    def read_pair(addr_a: int, bytes_a: int, addr_b: int, bytes_b: int,
                  now_cpu: int, serialized: bool) -> int:
        """Two reads issued at the same instant (the page-hit tag+data
        pattern); returns their serialized sum or overlapped max.

        Bit-identical to two :func:`access` calls; fused to share the
        clock-domain conversion and, when both reads land in the same DRAM
        row (tags live beside the data in the in-DRAM layout), the address
        decompose.
        """
        now = int(now_cpu / cpu_per_dram)
        stripe_a = addr_a // row_bytes
        ch = stripe_a % num_channels
        rest = stripe_a // num_channels
        row = rest // banks_per_channel
        g = ch * banks_per_channel + rest % banks_per_channel

        # ---- read A --------------------------------------------------- #
        if b_open[g] == row:
            b_hits[g] += 1
            column_issue = b_col[g]
            if now > column_issue:
                column_issue = now
            next_column = column_issue
        else:
            issue_time = c_last[ch] + t_rrd
            if now > issue_time:
                issue_time = now
            rec = c_recent[ch]
            if len(rec) == faw_window:
                faw_ready = rec[0] + t_faw
                if faw_ready > issue_time:
                    issue_time = faw_ready
                del rec[0]
            rec.append(issue_time)
            c_last[ch] = issue_time

            next_activate = b_act[g]
            if b_open[g] >= 0:
                b_conf[g] += 1
                precharge_issue = b_pre[g]
                if issue_time > precharge_issue:
                    precharge_issue = issue_time
                ready = precharge_issue + t_rp
                if ready > next_activate:
                    next_activate = ready
            else:
                b_miss[g] += 1
                ready = issue_time
                if next_activate > ready:
                    ready = next_activate
            if next_activate > ready:
                activate_issue = next_activate
            else:
                activate_issue = ready
            b_open[g] = row
            b_acts[g] += 1
            b_act[g] = activate_issue + t_rc
            b_pre[g] = activate_issue + t_ras
            column_ready = activate_issue + t_rcd
            next_column = b_col[g]
            if column_ready > next_column:
                next_column = column_ready
            column_issue = next_column
            if now > column_issue:
                column_issue = now

        data_start = column_issue + t_cas
        horizon = column_issue + t_rtp
        if horizon > b_pre[g]:
            b_pre[g] = horizon
        horizon = column_issue + 1
        if horizon > next_column:
            next_column = horizon
        c_reads[ch] += 1
        b_col[g] = next_column

        try:
            transfer = transfer_cache[bytes_a]
        except KeyError:
            transfer = transfer_cache[bytes_a] = data_cycles(bytes_a)
        if c_bus[ch] > data_start:
            data_start = c_bus[ch]
        data_end = data_start + transfer
        c_bus[ch] = data_end
        c_bytes[ch] += bytes_a
        latency_a = int(-(-(data_end - now) * cpu_per_dram // 1))

        # ---- read B --------------------------------------------------- #
        stripe_b = addr_b // row_bytes
        if stripe_b != stripe_a:
            ch = stripe_b % num_channels
            rest = stripe_b // num_channels
            row = rest // banks_per_channel
            g = ch * banks_per_channel + rest % banks_per_channel

        if b_open[g] == row:
            b_hits[g] += 1
            column_issue = b_col[g]
            if now > column_issue:
                column_issue = now
            next_column = column_issue
        else:
            issue_time = c_last[ch] + t_rrd
            if now > issue_time:
                issue_time = now
            rec = c_recent[ch]
            if len(rec) == faw_window:
                faw_ready = rec[0] + t_faw
                if faw_ready > issue_time:
                    issue_time = faw_ready
                del rec[0]
            rec.append(issue_time)
            c_last[ch] = issue_time

            next_activate = b_act[g]
            if b_open[g] >= 0:
                b_conf[g] += 1
                precharge_issue = b_pre[g]
                if issue_time > precharge_issue:
                    precharge_issue = issue_time
                ready = precharge_issue + t_rp
                if ready > next_activate:
                    next_activate = ready
            else:
                b_miss[g] += 1
                ready = issue_time
                if next_activate > ready:
                    ready = next_activate
            if next_activate > ready:
                activate_issue = next_activate
            else:
                activate_issue = ready
            b_open[g] = row
            b_acts[g] += 1
            b_act[g] = activate_issue + t_rc
            b_pre[g] = activate_issue + t_ras
            column_ready = activate_issue + t_rcd
            next_column = b_col[g]
            if column_ready > next_column:
                next_column = column_ready
            column_issue = next_column
            if now > column_issue:
                column_issue = now

        data_start = column_issue + t_cas
        horizon = column_issue + t_rtp
        if horizon > b_pre[g]:
            b_pre[g] = horizon
        horizon = column_issue + 1
        if horizon > next_column:
            next_column = horizon
        c_reads[ch] += 1
        b_col[g] = next_column

        try:
            transfer = transfer_cache[bytes_b]
        except KeyError:
            transfer = transfer_cache[bytes_b] = data_cycles(bytes_b)
        if c_bus[ch] > data_start:
            data_start = c_bus[ch]
        data_end = data_start + transfer
        c_bus[ch] = data_end
        c_bytes[ch] += bytes_b
        totals[0] += 2
        latency_b = int(-(-(data_end - now) * cpu_per_dram // 1))

        if serialized:
            return latency_a + latency_b
        if latency_a > latency_b:
            return latency_a
        return latency_b

    def writeback() -> None:
        controller.total_requests = totals[0]
        g = 0
        for ch, channel in enumerate(channels):
            channel._data_bus_free = c_bus[ch]
            channel._last_activate = c_last[ch]
            channel._recent_activates = deque(c_recent[ch],
                                              maxlen=faw_window)
            channel.reads = c_reads[ch]
            channel.writes = c_writes[ch]
            channel.bytes_transferred = c_bytes[ch]
            for bank in channel.banks:
                open_row = b_open[g]
                bank.open_row = open_row
                bank.state = (BankState.ACTIVE if open_row >= 0
                              else BankState.IDLE)
                bank._next_activate = b_act[g]
                bank._next_column = b_col[g]
                bank._next_precharge = b_pre[g]
                bank.activations = b_acts[g]
                bank.row_hits = b_hits[g]
                bank.row_misses = b_miss[g]
                bank.row_conflicts = b_conf[g]
                g += 1

    return FlatDram(access, burst, read_pair, writeback)


__all__ = ["FlatDram", "flatten_controller"]
