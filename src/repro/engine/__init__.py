"""Vectorized batch engine for functional warming and bulk trace decode.

Public surface:

* :func:`repro.engine.warm_design` -- warm a design via the fused batch
  kernels (bit-identical to scalar warming) with automatic scalar
  fallback; returns which engine ran.
* :func:`repro.engine.batch_enabled` / :func:`set_batch_enabled` -- the
  ``REPRO_BATCH`` / ``--batch-warming`` controls.
* :mod:`repro.engine.trace_array` -- numpy structured-array trace decode
  (``decode_array``, ``records_to_array``, ``array_to_records``).
* :func:`repro.engine.select_kernel` -- kernel coverage probe (None means
  the composition warms through the scalar engine).
"""

from repro.engine.batch import batch_enabled, set_batch_enabled, warm_design
from repro.engine.kernels import select_kernel
from repro.engine.trace_array import (
    RECORD_DTYPE,
    array_to_records,
    decode_array,
    is_access_array,
    numpy_available,
    records_to_array,
)

__all__ = [
    "RECORD_DTYPE",
    "array_to_records",
    "batch_enabled",
    "decode_array",
    "is_access_array",
    "numpy_available",
    "records_to_array",
    "select_kernel",
    "set_batch_enabled",
    "warm_design",
]
