"""Bulk trace decode: packed records <-> numpy structured arrays.

The binary trace format (:mod:`repro.trace.binfmt`) packs each access into a
27-byte little-endian struct.  The scalar decode path materialises one
:class:`~repro.trace.record.MemoryAccess` namedtuple per record; for the
functional-warming hot path that per-record ``tuple.__new__`` dominates the
load time.  This module provides the vectorized alternative: a numpy
structured dtype laid out *exactly* like the packed record, so a whole
chunk decodes with a single ``np.frombuffer`` -- no per-record Python work
at all.

numpy is an optional dependency.  Everything degrades gracefully without
it: :func:`numpy_available` gates the callers, and :func:`require_numpy`
raises an error that names the ``--batch-warming`` flag and the
``REPRO_BATCH`` variable so the remedy is obvious.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.trace.record import AccessType, MemoryAccess

try:  # pragma: no cover - exercised via numpy_available() in tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None


#: Structured dtype mirroring ``binfmt.RECORD`` (``<QQQHB``, 27 bytes):
#: address u64 | pc u64 | timestamp u64 | core_id u16 | access_type u8.
RECORD_DTYPE = None
if _np is not None:
    RECORD_DTYPE = _np.dtype({
        "names": ["address", "pc", "timestamp", "core_id", "access_type"],
        "formats": ["<u8", "<u8", "<u8", "<u2", "u1"],
        "offsets": [0, 8, 16, 24, 26],
        "itemsize": 27,
    })

_TYPE_FROM_CODE = (AccessType.READ, AccessType.WRITE)


def numpy_available() -> bool:
    """True when numpy is importable (the batch decode paths work)."""
    return _np is not None


def require_numpy(context: str) -> None:
    """Raise a clear error when numpy is missing.

    The message names the batch-warming controls so a user who asked for
    array decoding explicitly knows how to fall back.
    """
    if _np is None:
        raise RuntimeError(
            f"{context} requires numpy, which is not installed; install "
            "numpy, or stay on the scalar path (--no-batch-warming / "
            "REPRO_BATCH=0), which needs no extra dependencies"
        )


def is_access_array(obj) -> bool:
    """True if ``obj`` is a numpy structured array of trace records."""
    return (_np is not None and isinstance(obj, _np.ndarray)
            and obj.dtype == RECORD_DTYPE)


def decode_array(blob) -> "object":
    """Decode packed 27-byte records into a structured array (zero copy).

    ``blob`` is any buffer whose length is a multiple of the record size
    (bytes, bytearray, memoryview).  One ``np.frombuffer`` replaces the
    per-record ``Struct.iter_unpack`` + ``tuple.__new__`` loop.
    """
    require_numpy("bulk record decode")
    return _np.frombuffer(blob, dtype=RECORD_DTYPE)


def records_to_array(records: Sequence[MemoryAccess]) -> "object":
    """Pack a sequence of :class:`MemoryAccess` into a structured array."""
    require_numpy("record-to-array conversion")
    arr = _np.empty(len(records), dtype=RECORD_DTYPE)
    if records:
        arr["address"] = [r.address for r in records]
        arr["pc"] = [r.pc for r in records]
        arr["timestamp"] = [r.timestamp for r in records]
        arr["core_id"] = [r.core_id for r in records]
        arr["access_type"] = [
            1 if r.access_type is AccessType.WRITE else 0 for r in records
        ]
    return arr


def array_to_records(arr) -> List[MemoryAccess]:
    """Expand a structured array back into :class:`MemoryAccess` records.

    Mirrors ``binfmt._decode_records`` so the result is indistinguishable
    from the scalar decode path.
    """
    tuple_new = tuple.__new__
    cls = MemoryAccess
    types = _TYPE_FROM_CODE
    return [
        tuple_new(cls, (r[0], r[1], types[r[4]], r[3], r[2]))
        for r in arr.tolist()
    ]


class AccessColumns:
    """Column-oriented view of one warm batch, ready for the fused kernels.

    Columns are plain Python lists (the kernels are fused Python loops over
    C-speed list iteration); when the source is a structured array the
    extraction itself is vectorized, including the predictor index hashes.
    """

    __slots__ = ("n", "addr", "blk", "pc", "wr", "core", "_arr")

    def __init__(self, n: int, addr: List[int], blk: List[int],
                 pc: List[int], wr: List[bool], core: List[int],
                 arr=None) -> None:
        self.n = n
        self.addr = addr
        self.blk = blk
        self.pc = pc
        self.wr = wr
        self.core = core
        self._arr = arr

    # ------------------------------------------------------------------ #
    def way_indices(self, blocks_per_page: int, index_bits: int) -> List[int]:
        """``fold_xor(page, index_bits)`` for every access (way predictor)."""
        if self._arr is not None:
            pages = self._arr["address"] >> _np.uint64(6)
            pages //= _np.uint64(blocks_per_page)
            return _fold_xor_vector(pages, index_bits)
        mask = (1 << index_bits) - 1
        out = []
        append = out.append
        for block in self.blk:
            value = block // blocks_per_page
            folded = 0
            while value:
                folded ^= value & mask
                value >>= index_bits
            append(folded)
        return out

    def mapi_indices(self, index_bits: int, entries_per_core: int) -> List[int]:
        """``fold_xor(pc >> 2, bits) % entries`` for every access (MAP-I)."""
        if self._arr is not None:
            values = self._arr["pc"] >> _np.uint64(2)
            folded = _fold_xor_vector_array(values, index_bits)
            return (folded % _np.uint64(entries_per_core)).tolist()
        mask = (1 << index_bits) - 1
        out = []
        append = out.append
        for pc in self.pc:
            value = pc >> 2
            folded = 0
            while value:
                folded ^= value & mask
                value >>= index_bits
            append(folded % entries_per_core)
        return out


def _fold_xor_vector_array(values, index_bits: int):
    """Vectorized :func:`repro.utils.hashing.fold_xor` over a uint64 array."""
    mask = _np.uint64((1 << index_bits) - 1)
    folded = _np.zeros(values.shape, dtype=_np.uint64)
    for shift in range(0, 64, index_bits):
        folded ^= (values >> _np.uint64(shift)) & mask
    return folded


def _fold_xor_vector(values, index_bits: int) -> List[int]:
    return _fold_xor_vector_array(values, index_bits).tolist()


def make_columns(accesses) -> Optional[AccessColumns]:
    """Build :class:`AccessColumns` from an array or a record sequence.

    Accepts a structured array (the bulk-decoded fast path), any sequence
    of :class:`MemoryAccess`, or an arbitrary iterable of records (which is
    materialised).  Returns ``None`` only for inputs it cannot interpret.
    """
    if is_access_array(accesses):
        arr = accesses
        addr = arr["address"].tolist()
        blk = (arr["address"] >> _np.uint64(6)).tolist()
        pc = arr["pc"].tolist()
        wr = (arr["access_type"] != 0).tolist()
        core = arr["core_id"].tolist()
        return AccessColumns(len(addr), addr, blk, pc, wr, core, arr)
    if not isinstance(accesses, (list, tuple)):
        accesses = list(accesses)
    if not accesses:
        return AccessColumns(0, [], [], [], [], [], None)
    first = accesses[0]
    if not isinstance(first, MemoryAccess):
        return None
    addr, pc, types, core, _ = (list(col) for col in zip(*accesses))
    write = AccessType.WRITE
    wr = [t is write for t in types]
    blk = [a >> 6 for a in addr]
    return AccessColumns(len(addr), addr, blk, pc, wr, core, None)


def as_records(accesses):
    """Coerce ``accesses`` to something ``warm_up`` (scalar) can replay."""
    if is_access_array(accesses):
        return array_to_records(accesses)
    return accesses


__all__ = [
    "AccessColumns",
    "RECORD_DTYPE",
    "array_to_records",
    "as_records",
    "decode_array",
    "is_access_array",
    "make_columns",
    "numpy_available",
    "records_to_array",
    "require_numpy",
]
