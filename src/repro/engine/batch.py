"""Batch functional warming: the entry point the simulation layers call.

:func:`warm_design` replays a warm stream into a design and guarantees the
post-warming state (``StateSnapshot``) is bit-identical to
``design.warm_up(records)`` followed by the implicit ``reset_stats()``
warming semantics -- whichever engine actually ran.  It dispatches to a
fused kernel (:mod:`repro.engine.kernels`) when the composition is covered
and batch warming is enabled, and falls back to the scalar engine
otherwise, reporting which engine ran so callers can tag telemetry.

Enablement: batch warming is on by default.  ``REPRO_BATCH=0`` (or
``false``/``no``/``off``) disables it process-wide; the CLI's
``--batch-warming/--no-batch-warming`` flags override the environment via
:func:`set_batch_enabled`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.engine.kernels import select_kernel
from repro.engine.trace_array import as_records, make_columns

_FALSY = ("0", "false", "no", "off")

# CLI override: None defers to the REPRO_BATCH environment variable.
_enabled_override: Optional[bool] = None


def batch_enabled() -> bool:
    """Whether batch warming may run (CLI override, then REPRO_BATCH)."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get("REPRO_BATCH", "1").strip().lower() not in _FALSY


def set_batch_enabled(enabled: Optional[bool]) -> None:
    """Force batch warming on/off; ``None`` defers to ``REPRO_BATCH``."""
    global _enabled_override
    _enabled_override = enabled


def warm_design(design, accesses) -> str:
    """Warm ``design`` with ``accesses``; returns ``"batch"`` or ``"scalar"``.

    ``accesses`` may be a numpy structured record array (see
    :mod:`repro.engine.trace_array`) or any iterable of ``MemoryAccess``.
    Either way the design ends up warmed *and* with statistics reset, the
    exact contract of the scalar warm-up path.
    """
    if batch_enabled():
        kernel = select_kernel(design)
        if kernel is not None:
            columns = make_columns(accesses)
            if columns is not None:
                if columns.n:
                    kernel(design, columns)
                design.reset_stats()
                return "batch"
    design.warm_up(as_records(accesses))
    return "scalar"


__all__ = ["batch_enabled", "set_batch_enabled", "warm_design"]
