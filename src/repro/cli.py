"""Command-line sweep runner: ``python -m repro`` (or the ``repro`` script).

Builds a :class:`repro.sim.spec.SweepSpec` from the command line, runs it
through the (optionally parallel) sweep executor, prints the result table,
and exports the :class:`repro.sim.resultset.ResultSet` as JSON (and
optionally CSV) so figures can be regenerated without re-simulating.

Examples::

    python -m repro                               # small default sweep
    python -m repro --designs unison alloy footprint \
                    --workloads "Web Search" "TPC-H Queries" \
                    --capacities 512MB 1GB 2GB --jobs 4
    python -m repro --list-designs
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.executor import run_sweep
from repro.sim.experiment import ExperimentConfig
from repro.sim.factory import design_names
from repro.sim.registry import DESIGNS
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.workloads.cloudsuite import ALL_WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run a DRAM-cache design sweep (Jevdjic et al., MICRO'14 "
                    "reproduction) and export the results.",
    )
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names (default: unison alloy; "
                             "see --list-designs)")
    parser.add_argument("--workloads", nargs="+", default=["Web Search"],
                        metavar="NAME",
                        help="workload names (default: 'Web Search'; "
                             "see --list-workloads)")
    parser.add_argument("--capacities", nargs="+", default=["256MB", "1GB"],
                        metavar="SIZE",
                        help="paper-scale capacities (default: 256MB 1GB)")
    parser.add_argument("--scale", type=int, default=2048,
                        help="capacity scale-down factor (default: 2048)")
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="accesses per trial, warm-up included "
                             "(default: 12000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores in the synthetic trace "
                             "(default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; 1 = serial, 0 = one per CPU "
                             "(default: 1)")
    parser.add_argument("--json", default="sweep_results.json", metavar="PATH",
                        help="JSON export path (default: sweep_results.json; "
                             "'-' disables)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="optional CSV export path")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result table")
    parser.add_argument("--list-designs", action="store_true",
                        help="list registered designs and exit")
    parser.add_argument("--list-workloads", action="store_true",
                        help="list available workloads and exit")
    return parser


def _list_designs() -> int:
    names = design_names()
    width = max(len(name) for name in names)
    for name in names:
        entry = DESIGNS.resolve(name)
        print(f"{name:<{width}}  {entry.description}")
    return 0


def _list_workloads() -> int:
    width = max(len(p.name) for p in ALL_WORKLOADS)
    for profile in ALL_WORKLOADS:
        print(f"{profile.name:<{width}}  working set {profile.working_set}, "
              f"{profile.l2_mpki:g} L2 MPKI")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_designs:
        return _list_designs()
    if args.list_workloads:
        return _list_workloads()
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    try:
        spec = SweepSpec(
            designs=args.designs,
            workloads=args.workloads,
            capacities=args.capacities,
            config=ExperimentConfig(
                scale=args.scale,
                num_accesses=args.accesses,
                num_cores=args.cores,
                seed=args.seed,
            ),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not args.quiet:
        workers_note = "serial" if args.jobs == 1 else (
            f"{args.jobs} workers" if args.jobs else "one worker per CPU")
        print(f"Sweep: {spec.describe()}")
        print(f"Executor: {workers_note}")
        print()

    def progress(index: int, total: int, trial: ExperimentSpec) -> None:
        if not args.quiet:
            print(f"[{index + 1}/{total}] {trial.describe()}", file=sys.stderr)

    results = run_sweep(spec, workers=args.jobs or None, progress=progress)

    if not args.quiet:
        print()
    print(results.table())

    if args.json != "-":
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    if args.csv is not None:
        results.to_csv(args.csv)
        if not args.quiet:
            print(f"CSV export: {args.csv}")
    return 0


def run() -> "None":
    """Console-script wrapper: ``main`` plus graceful SIGPIPE handling."""
    import os

    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro --list-designs | head``) closed
        # the pipe; suppress the shutdown-time flush error too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)


if __name__ == "__main__":  # pragma: no cover
    run()
