"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Two entry points share the program:

* **Sweeps** (the default, also available as ``repro sweep``): build a
  :class:`repro.sim.spec.SweepSpec` from the command line, run it through the
  (optionally parallel) sweep executor, print the result table, and export
  the :class:`repro.sim.resultset.ResultSet` as JSON (and optionally CSV) so
  figures can be regenerated without re-simulating.
* **Trace tools** (``repro trace ...``): generate, inspect, and convert
  trace files in any format the :mod:`repro.trace` subsystem understands,
  plus trace-store maintenance (``repro trace store gc``).
* **Sampled measurement** (``repro sample``): checkpointed windowed sampling
  (see :mod:`repro.sampling`) of several designs over the *same* measurement
  windows, with per-design confidence intervals and matched-pair deltas.
* **Design catalog** (``repro designs``): every registered design with its
  component breakdown -- tag organization, hit predictor, fetch policy,
  writeback policy -- for the spec-registered entries, plus the component
  kinds available for composing new designs (``--components``).

Examples::

    python -m repro                               # small default sweep
    python -m repro --designs unison alloy footprint \
                    --workloads "Web Search" "TPC-H Queries" \
                    --capacities 512MB 1GB 2GB --jobs 4
    python -m repro --list-designs

    python -m repro designs
    python -m repro designs --components
    python -m repro sample --designs unison alloy --workload "Web Search" \
                           --capacity 1GB --accesses 200000
    python -m repro trace gen --workload "Web Search" --accesses 100000 \
                              --out websearch.rptr
    python -m repro trace info websearch.rptr
    python -m repro trace convert llc_misses.csv llc_misses.rptr --codec zstd
    python -m repro trace store gc
    python -m repro trace formats
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.executor import run_sweep
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.factory import design_names
from repro.sim.registry import DESIGNS
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.workloads.cloudsuite import ALL_WORKLOADS, workload_by_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run a DRAM-cache design sweep (Jevdjic et al., MICRO'14 "
                    "reproduction) and export the results.",
    )
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names (default: unison alloy; "
                             "see --list-designs)")
    parser.add_argument("--workloads", nargs="+", default=["Web Search"],
                        metavar="NAME",
                        help="workload names (default: 'Web Search'; "
                             "see --list-workloads)")
    parser.add_argument("--capacities", nargs="+", default=["256MB", "1GB"],
                        metavar="SIZE",
                        help="paper-scale capacities (default: 256MB 1GB)")
    parser.add_argument("--scale", type=int, default=2048,
                        help="capacity scale-down factor (default: 2048)")
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="accesses per trial, warm-up included "
                             "(default: 12000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores in the synthetic trace "
                             "(default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; 1 = serial, 0 = one per CPU "
                             "(default: 1)")
    parser.add_argument("--json", default="sweep_results.json", metavar="PATH",
                        help="JSON export path (default: sweep_results.json; "
                             "'-' disables)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="optional CSV export path")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result table")
    parser.add_argument("--list-designs", action="store_true",
                        help="list registered designs and exit")
    parser.add_argument("--list-workloads", action="store_true",
                        help="list available workloads and exit")
    return parser


def _list_designs() -> int:
    names = design_names()
    width = max(len(name) for name in names)
    for name in names:
        entry = DESIGNS.resolve(name)
        print(f"{name:<{width}}  {entry.description}")
    return 0


def _list_workloads() -> int:
    width = max(len(p.name) for p in ALL_WORKLOADS)
    for profile in ALL_WORKLOADS:
        print(f"{profile.name:<{width}}  working set {profile.working_set}, "
              f"{profile.l2_mpki:g} L2 MPKI")
    return 0


# --------------------------------------------------------------------- #
# repro designs
# --------------------------------------------------------------------- #
def build_designs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro designs",
        description="List registered DRAM-cache designs and, for "
                    "spec-registered entries, their component breakdown.",
    )
    parser.add_argument("--components", action="store_true",
                        help="also list the registered component kinds "
                             "available for composing new designs")
    return parser


def designs_main(argv: List[str]) -> int:
    """Entry point of ``repro designs``."""
    args = build_designs_parser().parse_args(argv)
    names = design_names()
    width = max(len(name) for name in names)
    for name in names:
        entry = DESIGNS.resolve(name)
        print(f"{name:<{width}}  {entry.description}")
        if entry.spec is not None:
            print(f"{'':<{width}}    {entry.spec.describe_components()}")
    if args.components:
        from repro.dramcache.components import (
            FETCH_POLICIES,
            HIT_PREDICTORS,
            TAG_ORGANIZATIONS,
            WRITEBACK_POLICIES,
        )

        print()
        print("component kinds (DesignSpec building blocks):")
        for registry in (TAG_ORGANIZATIONS, HIT_PREDICTORS, FETCH_POLICIES,
                         WRITEBACK_POLICIES):
            kinds = " ".join(sorted(registry.kinds()))
            print(f"  {registry.role + ':':<18} {kinds}")
    return 0


# --------------------------------------------------------------------- #
# repro trace ...
# --------------------------------------------------------------------- #
def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Generate, inspect, and convert memory-access traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "gen", help="generate a synthetic workload trace file",
        description="Stream a synthetic workload trace to disk (chunked; "
                    "the trace never has to fit in memory).")
    gen.add_argument("--workload", default="Web Search", metavar="NAME",
                     help="workload name (default: 'Web Search')")
    gen.add_argument("--accesses", type=int, default=100_000,
                     help="number of accesses to generate (default: 100000)")
    gen.add_argument("--cores", type=int, default=16,
                     help="interleaved cores (default: 16)")
    gen.add_argument("--seed", type=int, default=1,
                     help="generator seed (default: 1)")
    gen.add_argument("--scale", type=int, default=1,
                     help="working-set scale-down factor, matching the "
                          "sweep executor's scaling (default: 1 = unscaled)")
    gen.add_argument("--out", "-o", required=True, metavar="PATH",
                     help="output trace file")
    gen.add_argument("--format", default="auto",
                     help="output format (default: auto-detect from suffix; "
                          ".rptr/.bin = binary, else text)")

    info = sub.add_parser(
        "info", help="describe trace files",
        description="Print format, core count, and access count for each "
                    "trace file (binary headers are read without "
                    "decompressing the payload).")
    info.add_argument("paths", nargs="+", metavar="PATH")
    info.add_argument("--count", action="store_true",
                      help="scan non-binary traces to count accesses "
                           "(may be slow for huge files)")

    convert = sub.add_parser(
        "convert", help="convert a trace between formats",
        description="Stream a trace from one format into another "
                    "(text/binary/ChampSim-style/CSV in, text/binary out).")
    convert.add_argument("src", metavar="SRC")
    convert.add_argument("dst", metavar="DST")
    convert.add_argument("--in-format", default="auto",
                         help="input format (default: auto-detect)")
    convert.add_argument("--out-format", default="auto",
                         help="output format (default: auto-detect from "
                              "DST suffix)")
    convert.add_argument("--limit", type=int, default=None, metavar="N",
                         help="convert only the first N accesses")
    convert.add_argument("--codec", default=None,
                         choices=["none", "gzip", "zstd"],
                         help="payload codec for binary output (default: "
                              "gzip; 'zstd' needs the zstandard package or "
                              "Python >= 3.14)")

    sub.add_parser("formats", help="list known trace formats",
                   description="List every registered trace format.")

    store = sub.add_parser(
        "store", help="inspect and maintain the on-disk trace store",
        description="The trace store caches every generated synthetic trace "
                    "(REPRO_TRACE_STORE selects or disables the directory).")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser(
        "info", help="print store location, entry count, and size")
    gc = store_sub.add_parser(
        "gc", help="collect garbage (stale temp files, orphaned chunk "
                   "indexes, LRU eviction to the size budget)")
    gc.add_argument("--max-bytes", default=None, metavar="SIZE",
                    help="evict least-recently-used entries down to SIZE "
                         "(e.g. 512MB; default: the store's budget, "
                         "REPRO_TRACE_STORE_BYTES or 2GB)")
    return parser


def _trace_gen(args: argparse.Namespace) -> int:
    from repro.trace.adapters import resolve_format

    try:
        profile = workload_by_name(args.workload)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.accesses <= 0 or args.cores <= 0 or args.scale <= 0:
        print("error: --accesses, --cores, and --scale must be positive",
              file=sys.stderr)
        return 2
    runner = ExperimentRunner(ExperimentConfig(
        scale=args.scale, num_accesses=args.accesses, num_cores=args.cores,
        seed=args.seed,
    ))
    fmt_name = None if args.format == "auto" else args.format
    try:
        fmt = resolve_format(fmt_name, args.out, for_writing=True)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = (access for chunk in runner.iter_trace_chunks(profile)
              for access in chunk)
    count = fmt.writer(args.out, stream, args.cores)
    print(f"wrote {count} accesses to {args.out} ({fmt.name})")
    return 0


def _trace_info(args: argparse.Namespace) -> int:
    from repro.trace.adapters import detect_format, open_trace
    from repro.trace.binfmt import read_header
    from repro.trace.errors import TraceFormatError
    from pathlib import Path

    status = 0
    for path in args.paths:
        if not Path(path).is_file():
            print(f"{path}: not a file", file=sys.stderr)
            status = 1
            continue
        fmt = detect_format(path)
        size = Path(path).stat().st_size
        if fmt == "binary":
            try:
                header = read_header(path)
            except TraceFormatError as error:
                print(f"{path}: corrupt binary trace: {error}",
                      file=sys.stderr)
                status = 1
                continue
            count = ("unknown" if header.access_count is None
                     else header.access_count)
            compression = header.codec
            print(f"{path}: format=binary v{header.version} "
                  f"compression={compression} cores={header.num_cores} "
                  f"accesses={count} bytes={size}")
        else:
            line = f"{path}: format={fmt} bytes={size}"
            if args.count:
                try:
                    total = sum(1 for _ in open_trace(path, fmt))
                except TraceFormatError as error:
                    print(f"{path}: {error}", file=sys.stderr)
                    status = 1
                    continue
                line += f" accesses={total}"
            print(line)
    return status


def _trace_convert(args: argparse.Namespace) -> int:
    from repro.trace.adapters import convert_trace
    from repro.trace.errors import TraceFormatError

    in_format = None if args.in_format == "auto" else args.in_format
    out_format = None if args.out_format == "auto" else args.out_format
    try:
        count = convert_trace(args.src, args.dst, in_format=in_format,
                              out_format=out_format, limit=args.limit,
                              codec=args.codec)
    except (TraceFormatError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"wrote {count} accesses to {args.dst}")
    return 0


def _trace_store(args: argparse.Namespace) -> int:
    from repro.trace.store import TraceStore, configured_root
    from repro.utils.units import format_size, parse_size

    root = configured_root()
    if root is None:
        print("trace store is disabled (REPRO_TRACE_STORE)", file=sys.stderr)
        return 1
    store = TraceStore(root=root)
    if args.store_command == "info":
        budget = ("unlimited" if store.max_bytes is None
                  else format_size(store.max_bytes))
        total = store.total_bytes()
        print(f"root:    {store.root}")
        print(f"entries: {len(store)}")
        print(f"bytes:   {total} ({format_size(total)})")
        print(f"budget:  {budget}")
        return 0
    try:
        max_bytes = (parse_size(args.max_bytes) if args.max_bytes is not None
                     else store.max_bytes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reclaimed = store.gc(max_bytes=max_bytes)
    print(f"reclaimed {reclaimed} bytes ({format_size(reclaimed)}); "
          f"{len(store)} entries remain ({format_size(store.total_bytes())})")
    return 0


def _trace_formats() -> int:
    from repro.trace.adapters import FORMATS

    width = max(len(name) for name in FORMATS)
    for name in sorted(FORMATS):
        fmt = FORMATS[name]
        mode = "read/write" if fmt.writable else "read-only"
        suffixes = " ".join(fmt.suffixes) or "(by content)"
        print(f"{name:<{width}}  {mode:<10}  {fmt.description}  "
              f"[{suffixes}]")
    return 0


def trace_main(argv: List[str]) -> int:
    """Entry point of the ``repro trace`` subcommands."""
    args = build_trace_parser().parse_args(argv)
    if args.command == "gen":
        return _trace_gen(args)
    if args.command == "info":
        return _trace_info(args)
    if args.command == "convert":
        return _trace_convert(args)
    if args.command == "store":
        return _trace_store(args)
    return _trace_formats()


# --------------------------------------------------------------------- #
# repro sample ...
# --------------------------------------------------------------------- #
def build_sample_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sample",
        description="Checkpointed windowed sampling: measure designs over "
                    "short, confidence-terminated windows of one trace "
                    "instead of replaying it whole.",
    )
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names to compare over the "
                             "same windows (default: unison alloy)")
    parser.add_argument("--workload", default="Web Search", metavar="NAME",
                        help="workload name, or a path to a trace file "
                             "(binary traces are windowed seekably)")
    parser.add_argument("--capacity", default="1GB", metavar="SIZE",
                        help="paper-scale capacity (default: 1GB)")
    parser.add_argument("--scale", type=int, default=512,
                        help="capacity scale-down factor (default: 512)")
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="trace length, warm-up region included "
                             "(default: 200000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores (default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--windows", type=int, default=None, metavar="N",
                        help="window budget (default: SamplingConfig's)")
    parser.add_argument("--window-accesses", type=int, default=None,
                        metavar="N", help="accesses measured per window")
    parser.add_argument("--warmup-accesses", type=int, default=None,
                        metavar="N",
                        help="per-window functional warming accesses")
    parser.add_argument("--checkpoint-accesses", type=int, default=None,
                        metavar="N",
                        help="accesses of the one-time warm checkpoint "
                             "prologue")
    parser.add_argument("--target-error", type=float, default=None,
                        metavar="FRAC",
                        help="target relative CI half-width (default: 0.02)")
    parser.add_argument("--placement", choices=["systematic", "random"],
                        default=None, help="window placement strategy")
    parser.add_argument("--sampling-seed", type=int, default=None,
                        help="placement/order seed (default: 0)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="optional ResultSet JSON export path")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result table")
    return parser


def sample_main(argv: List[str]) -> int:
    """Entry point of ``repro sample``."""
    from repro.sampling import SamplingConfig, WindowedSampler
    from repro.sim.spec import _coerce_workload

    args = build_sample_parser().parse_args(argv)
    overrides = {
        "max_windows": args.windows,
        "window_accesses": args.window_accesses,
        "warmup_accesses": args.warmup_accesses,
        "checkpoint_accesses": args.checkpoint_accesses,
        "target_relative_error": args.target_error,
        "placement": args.placement,
        "seed": args.sampling_seed,
    }
    if args.windows is not None:
        # A small explicit budget also lowers the adaptive-termination
        # minimum, which would otherwise exceed it.
        overrides["min_windows"] = min(SamplingConfig().min_windows,
                                       args.windows)
    try:
        sampling = SamplingConfig(
            **{k: v for k, v in overrides.items() if v is not None}
        )
        workload = _coerce_workload(args.workload)
        config = ExperimentConfig(
            scale=args.scale, num_accesses=args.accesses,
            num_cores=args.cores, seed=args.seed,
        )
        sampler = WindowedSampler(sampling, config=config)
        run = sampler.compare(args.designs, workload, args.capacity)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    results = run.to_resultset()
    if not args.quiet:
        plan = run.plan
        stopped = ("converged" if run.converged
                   else "window budget exhausted")
        print(f"Sampled {run.workload} @ {run.capacity}: "
              f"{run.windows_measured}/{len(plan.windows)} windows "
              f"({stopped}), {run.simulated_accesses} of "
              f"{plan.total_accesses} accesses simulated per design "
              f"({100 * run.sampled_fraction:.1f}%)")
        for label, sampled in run.designs.items():
            miss = sampled.interval("miss_ratio")
            speedup = sampled.interval("speedup_vs_no_cache")
            print(f"  {label:<12} miss {100 * miss.mean:5.2f}% "
                  f"+- {100 * miss.half_width:.2f} | "
                  f"speedup {speedup.mean:.3f} +- {speedup.half_width:.3f} "
                  f"(95% CI)")
        labels = list(run.designs)
        if len(labels) > 1:
            first = labels[0]
            print("Matched-pair deltas vs", first + ":")
            for other in labels[1:]:
                delta = run.delta("speedup_vs_no_cache", other, first)
                interval = delta.interval()
                print(f"  {other:<12} speedup {interval.mean:+.3f} "
                      f"+- {interval.half_width:.3f} (95% CI, "
                      f"{len(delta)} paired windows)")
        print()
    print(results.table())
    if args.json is not None:
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    return 0


# --------------------------------------------------------------------- #
# repro [sweep] ...
# --------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "sample":
        return sample_main(argv[1:])
    if argv and argv[0] == "designs":
        return designs_main(argv[1:])
    if argv and argv[0] == "sweep":
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_designs:
        return _list_designs()
    if args.list_workloads:
        return _list_workloads()
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    try:
        spec = SweepSpec(
            designs=args.designs,
            workloads=args.workloads,
            capacities=args.capacities,
            config=ExperimentConfig(
                scale=args.scale,
                num_accesses=args.accesses,
                num_cores=args.cores,
                seed=args.seed,
            ),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not args.quiet:
        workers_note = "serial" if args.jobs == 1 else (
            f"{args.jobs} workers" if args.jobs else "one worker per CPU")
        print(f"Sweep: {spec.describe()}")
        print(f"Executor: {workers_note}")
        print()

    def progress(index: int, total: int, trial: ExperimentSpec) -> None:
        if not args.quiet:
            print(f"[{index + 1}/{total}] {trial.describe()}", file=sys.stderr)

    results = run_sweep(spec, workers=args.jobs or None, progress=progress)

    if not args.quiet:
        print()
    print(results.table())

    if args.json != "-":
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    if args.csv is not None:
        results.to_csv(args.csv)
        if not args.quiet:
            print(f"CSV export: {args.csv}")
    return 0


def run() -> "None":
    """Console-script wrapper: ``main`` plus graceful SIGPIPE handling."""
    import os

    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro --list-designs | head``) closed
        # the pipe; suppress the shutdown-time flush error too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)


if __name__ == "__main__":  # pragma: no cover
    run()
