"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Two entry points share the program:

* **Sweeps** (the default, also available as ``repro sweep``): build a
  :class:`repro.sim.spec.SweepSpec` from the command line, run it through the
  (optionally parallel) sweep executor, print the result table, and export
  the :class:`repro.sim.resultset.ResultSet` as JSON (and optionally CSV) so
  figures can be regenerated without re-simulating.
* **Trace tools** (``repro trace ...``): generate, inspect, and convert
  trace files in any format the :mod:`repro.trace` subsystem understands,
  plus trace-store maintenance (``repro trace store gc``).
* **Sampled measurement** (``repro sample``): checkpointed windowed sampling
  (see :mod:`repro.sampling`) of several designs over the *same* measurement
  windows, with per-design confidence intervals and matched-pair deltas.
* **Design catalog** (``repro designs``): every registered design with its
  component breakdown -- tag organization, hit predictor, fetch policy,
  writeback policy -- for the spec-registered entries, plus the component
  kinds available for composing new designs (``--components``).
* **Durable sweeps** (``repro queue ...``): submit a sweep as idempotent
  on-disk jobs, run any number of crash-tolerant workers against the shared
  store (``repro queue work``, or the short alias ``repro work``), check
  progress (``repro queue status``), and resume interrupted sweeps
  (``repro queue resume``) -- see :mod:`repro.queue`.
* **Run telemetry** (``repro runs ...``, ``repro top``): query the run
  ledger that ``--telemetry`` (or ``REPRO_TELEMETRY=1``) runs record --
  per-phase wall-clock, accesses/sec, store and checkpoint hit rates,
  queue events, and live worker heartbeats -- see :mod:`repro.obs`.
* **Results service** (``repro serve``): a zero-dependency HTTP server
  over the archive, ledger, and queue -- JSON API (``/api/sweeps``,
  ``/api/runs``, ``/api/queue``), SVG paper figures with 95% CI error
  bars (``/api/figures/fig6``), and a live dashboard -- see
  :mod:`repro.serve`.

Examples::

    python -m repro                               # small default sweep
    python -m repro --designs unison alloy footprint \
                    --workloads "Web Search" "TPC-H Queries" \
                    --capacities 512MB 1GB 2GB --jobs 4
    python -m repro --list-designs

    python -m repro designs
    python -m repro designs --components
    python -m repro sample --designs unison alloy --workload "Web Search" \
                           --capacity 1GB --accesses 200000
    python -m repro trace gen --workload "Web Search" --accesses 100000 \
                              --out websearch.rptr
    python -m repro trace info websearch.rptr
    python -m repro trace convert llc_misses.csv llc_misses.rptr --codec zstd
    python -m repro trace store gc
    python -m repro trace formats
    python -m repro queue submit --designs unison alloy --capacities 512MB
    python -m repro queue work &
    python -m repro queue work &
    python -m repro queue status
    python -m repro queue status --json          # machine-readable, for CI
    python -m repro queue --telemetry resume <token>
    python -m repro runs list
    python -m repro runs show <run-id or sweep token>
    python -m repro runs compare <ref> <ref>
    python -m repro top
    python -m repro serve --port 8035
"""

from __future__ import annotations

import argparse
import json as _json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.sim.executor import run_sweep
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.factory import design_names
from repro.sim.registry import DESIGNS
from repro.sim.spec import ExperimentSpec, SweepSpec
from repro.workloads.cloudsuite import ALL_WORKLOADS, workload_by_name


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The opt-in observability switches shared by the run-ish commands."""
    parser.add_argument("--telemetry", action="store_true",
                        help="record spans/metrics to the run ledger and "
                             "JSONL manifests (same as REPRO_TELEMETRY=1; "
                             "inspect with 'repro runs')")
    parser.add_argument("--profile", action="store_true",
                        help="dump a cProfile pstats artifact per profiled "
                             "block (same as REPRO_PROFILE=1; implies "
                             "--telemetry)")


def _apply_telemetry_arguments(args: argparse.Namespace) -> None:
    """Translate --telemetry/--profile into the environment switches.

    Environment variables (not globals) so forked/spawned queue workers
    inherit the setting.
    """
    from repro.obs.core import ENV_TELEMETRY
    from repro.obs.profiling import ENV_PROFILE

    if getattr(args, "profile", False):
        os.environ[ENV_PROFILE] = "1"
        os.environ.setdefault(ENV_TELEMETRY, "1")
    if getattr(args, "telemetry", False):
        os.environ[ENV_TELEMETRY] = "1"


def _add_batch_arguments(parser: argparse.ArgumentParser) -> None:
    """The batch-warming switches shared by the run-ish commands."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--batch-warming", dest="batch_warming",
                       action="store_true", default=None,
                       help="warm designs through the vectorized batch "
                            "engine (the default when numpy is available; "
                            "same as REPRO_BATCH=1)")
    group.add_argument("--no-batch-warming", dest="batch_warming",
                       action="store_false",
                       help="force the scalar warming engine (same as "
                            "REPRO_BATCH=0; needs no numpy)")


def _apply_batch_arguments(args: argparse.Namespace) -> None:
    """Translate --batch-warming/--no-batch-warming into the batch switch.

    Both the in-process override and the REPRO_BATCH environment variable
    are set, so forked/spawned sweep and queue workers inherit the choice.
    """
    from repro.engine import set_batch_enabled

    value = getattr(args, "batch_warming", None)
    if value is not None:
        os.environ["REPRO_BATCH"] = "1" if value else "0"
        set_batch_enabled(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run a DRAM-cache design sweep (Jevdjic et al., MICRO'14 "
                    "reproduction) and export the results.",
    )
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names (default: unison alloy; "
                             "see --list-designs)")
    parser.add_argument("--workloads", nargs="+", default=["Web Search"],
                        metavar="NAME",
                        help="workload names (default: 'Web Search'; "
                             "see --list-workloads)")
    parser.add_argument("--capacities", nargs="+", default=["256MB", "1GB"],
                        metavar="SIZE",
                        help="paper-scale capacities (default: 256MB 1GB)")
    parser.add_argument("--scale", type=int, default=2048,
                        help="capacity scale-down factor (default: 2048)")
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="accesses per trial, warm-up included "
                             "(default: 12000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores in the synthetic trace "
                             "(default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; 1 = serial, 0 = one per CPU "
                             "(default: 1)")
    parser.add_argument("--json", default="sweep_results.json", metavar="PATH",
                        help="JSON export path (default: sweep_results.json; "
                             "'-' disables)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="optional CSV export path")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result table")
    parser.add_argument("--list-designs", action="store_true",
                        help="list registered designs and exit")
    parser.add_argument("--list-workloads", action="store_true",
                        help="list available workloads and exit")
    _add_telemetry_arguments(parser)
    _add_batch_arguments(parser)
    return parser


def _list_designs() -> int:
    names = design_names()
    width = max(len(name) for name in names)
    for name in names:
        entry = DESIGNS.resolve(name)
        print(f"{name:<{width}}  {entry.description}")
    return 0


def _list_workloads() -> int:
    width = max(len(p.name) for p in ALL_WORKLOADS)
    for profile in ALL_WORKLOADS:
        print(f"{profile.name:<{width}}  working set {profile.working_set}, "
              f"{profile.l2_mpki:g} L2 MPKI")
    return 0


# --------------------------------------------------------------------- #
# repro designs
# --------------------------------------------------------------------- #
def build_designs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro designs",
        description="List registered DRAM-cache designs and, for "
                    "spec-registered entries, their component breakdown.",
    )
    parser.add_argument("--components", action="store_true",
                        help="also list the registered component kinds "
                             "available for composing new designs")
    return parser


def designs_main(argv: List[str]) -> int:
    """Entry point of ``repro designs``."""
    args = build_designs_parser().parse_args(argv)
    names = design_names()
    width = max(len(name) for name in names)
    for name in names:
        entry = DESIGNS.resolve(name)
        print(f"{name:<{width}}  {entry.description}")
        if entry.spec is not None:
            print(f"{'':<{width}}    {entry.spec.describe_components()}")
    if args.components:
        from repro.dramcache.components import (
            FETCH_POLICIES,
            HIT_PREDICTORS,
            REPLACEMENT_POLICIES,
            TAG_ORGANIZATIONS,
            WRITEBACK_POLICIES,
        )

        print()
        print("component kinds (DesignSpec building blocks):")
        for registry in (TAG_ORGANIZATIONS, HIT_PREDICTORS, FETCH_POLICIES,
                         WRITEBACK_POLICIES, REPLACEMENT_POLICIES):
            kinds = " ".join(sorted(registry.kinds()))
            print(f"  {registry.role + ':':<18} {kinds}")
    return 0


# --------------------------------------------------------------------- #
# repro trace ...
# --------------------------------------------------------------------- #
def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Generate, inspect, and convert memory-access traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "gen", help="generate a synthetic workload trace file",
        description="Stream a synthetic workload trace to disk (chunked; "
                    "the trace never has to fit in memory).")
    gen.add_argument("--workload", default="Web Search", metavar="NAME",
                     help="workload name (default: 'Web Search')")
    gen.add_argument("--accesses", type=int, default=100_000,
                     help="number of accesses to generate (default: 100000)")
    gen.add_argument("--cores", type=int, default=16,
                     help="interleaved cores (default: 16)")
    gen.add_argument("--seed", type=int, default=1,
                     help="generator seed (default: 1)")
    gen.add_argument("--scale", type=int, default=1,
                     help="working-set scale-down factor, matching the "
                          "sweep executor's scaling (default: 1 = unscaled)")
    gen.add_argument("--out", "-o", required=True, metavar="PATH",
                     help="output trace file")
    gen.add_argument("--format", default="auto",
                     help="output format (default: auto-detect from suffix; "
                          ".rptr/.bin = binary, else text)")

    info = sub.add_parser(
        "info", help="describe trace files",
        description="Print format, core count, and access count for each "
                    "trace file (binary headers are read without "
                    "decompressing the payload).")
    info.add_argument("paths", nargs="+", metavar="PATH")
    info.add_argument("--count", action="store_true",
                      help="scan non-binary traces to count accesses "
                           "(may be slow for huge files)")

    convert = sub.add_parser(
        "convert", help="convert a trace between formats",
        description="Stream a trace from one format into another "
                    "(text/binary/ChampSim-style/CSV in, text/binary out).")
    convert.add_argument("src", metavar="SRC")
    convert.add_argument("dst", metavar="DST")
    convert.add_argument("--in-format", default="auto",
                         help="input format (default: auto-detect)")
    convert.add_argument("--out-format", default="auto",
                         help="output format (default: auto-detect from "
                              "DST suffix)")
    convert.add_argument("--limit", type=int, default=None, metavar="N",
                         help="convert only the first N accesses")
    convert.add_argument("--codec", default=None,
                         choices=["none", "gzip", "zstd"],
                         help="payload codec for binary output (default: "
                              "gzip; 'zstd' needs the zstandard package or "
                              "Python >= 3.14)")

    sub.add_parser("formats", help="list known trace formats",
                   description="List every registered trace format.")

    store = sub.add_parser(
        "store", help="inspect and maintain the on-disk trace store",
        description="The trace store caches every generated synthetic trace "
                    "(REPRO_TRACE_STORE selects or disables the directory).")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser(
        "info", help="print store location plus trace and checkpoint "
                     "entry counts and sizes")
    gc = store_sub.add_parser(
        "gc", help="collect garbage (stale temp files, orphaned chunk "
                   "indexes, combined trace+checkpoint LRU eviction to "
                   "the size budget)")
    gc.add_argument("--max-bytes", default=None, metavar="SIZE",
                    help="evict least-recently-used traces AND checkpoints "
                         "(one shared pool) down to SIZE (e.g. 512MB; "
                         "default: the store's budget, "
                         "REPRO_TRACE_STORE_BYTES or 2GB)")
    return parser


def _trace_gen(args: argparse.Namespace) -> int:
    from repro.trace.adapters import resolve_format

    try:
        profile = workload_by_name(args.workload)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.accesses <= 0 or args.cores <= 0 or args.scale <= 0:
        print("error: --accesses, --cores, and --scale must be positive",
              file=sys.stderr)
        return 2
    runner = ExperimentRunner(ExperimentConfig(
        scale=args.scale, num_accesses=args.accesses, num_cores=args.cores,
        seed=args.seed,
    ))
    fmt_name = None if args.format == "auto" else args.format
    try:
        fmt = resolve_format(fmt_name, args.out, for_writing=True)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = (access for chunk in runner.iter_trace_chunks(profile)
              for access in chunk)
    count = fmt.writer(args.out, stream, args.cores)
    print(f"wrote {count} accesses to {args.out} ({fmt.name})")
    return 0


def _trace_info(args: argparse.Namespace) -> int:
    from repro.trace.adapters import detect_format, open_trace
    from repro.trace.binfmt import read_header
    from repro.trace.errors import TraceFormatError
    from pathlib import Path

    status = 0
    for path in args.paths:
        if not Path(path).is_file():
            print(f"{path}: not a file", file=sys.stderr)
            status = 1
            continue
        fmt = detect_format(path)
        size = Path(path).stat().st_size
        if fmt == "binary":
            try:
                header = read_header(path)
            except TraceFormatError as error:
                print(f"{path}: corrupt binary trace: {error}",
                      file=sys.stderr)
                status = 1
                continue
            count = ("unknown" if header.access_count is None
                     else header.access_count)
            compression = header.codec
            print(f"{path}: format=binary v{header.version} "
                  f"compression={compression} cores={header.num_cores} "
                  f"accesses={count} bytes={size}")
        else:
            line = f"{path}: format={fmt} bytes={size}"
            if args.count:
                try:
                    total = sum(1 for _ in open_trace(path, fmt))
                except TraceFormatError as error:
                    print(f"{path}: {error}", file=sys.stderr)
                    status = 1
                    continue
                line += f" accesses={total}"
            print(line)
    return status


def _trace_convert(args: argparse.Namespace) -> int:
    from repro.trace.adapters import convert_trace
    from repro.trace.errors import TraceFormatError

    in_format = None if args.in_format == "auto" else args.in_format
    out_format = None if args.out_format == "auto" else args.out_format
    try:
        count = convert_trace(args.src, args.dst, in_format=in_format,
                              out_format=out_format, limit=args.limit,
                              codec=args.codec)
    except (TraceFormatError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"wrote {count} accesses to {args.dst}")
    return 0


def _trace_store(args: argparse.Namespace) -> int:
    from repro.sampling.checkpoints import CheckpointStore, shared_gc
    from repro.sampling.checkpoints import default_root as checkpoint_root
    from repro.trace.store import TraceStore, configured_root
    from repro.utils.units import format_size, parse_size

    root = configured_root()
    if root is None:
        print("trace store is disabled (REPRO_TRACE_STORE)", file=sys.stderr)
        return 1
    store = TraceStore(root=root)
    checkpoints = CheckpointStore(checkpoint_root())
    if args.store_command == "info":
        budget = ("unlimited" if store.max_bytes is None
                  else format_size(store.max_bytes))
        total = store.total_bytes()
        ckpt_total = checkpoints.total_bytes()
        print(f"root:        {store.root}")
        print(f"traces:      {len(store)} entries, {total} bytes "
              f"({format_size(total)})")
        print(f"checkpoints: {len(checkpoints)} entries, {ckpt_total} bytes "
              f"({format_size(ckpt_total)})")
        print(f"combined:    {total + ckpt_total} bytes "
              f"({format_size(total + ckpt_total)})")
        print(f"budget:      {budget} (shared across traces and checkpoints)")
        return 0
    try:
        max_bytes = (parse_size(args.max_bytes) if args.max_bytes is not None
                     else store.max_bytes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    freed = shared_gc(store, checkpoints, max_bytes)
    reclaimed = freed["trace_freed"] + freed["checkpoint_freed"]
    print(f"reclaimed {reclaimed} bytes ({format_size(reclaimed)}): "
          f"{format_size(freed['trace_freed'])} of traces, "
          f"{format_size(freed['checkpoint_freed'])} of checkpoints; "
          f"{len(store)} traces ({format_size(store.total_bytes())}) and "
          f"{len(checkpoints)} checkpoints "
          f"({format_size(checkpoints.total_bytes())}) remain")
    return 0


def _trace_formats() -> int:
    from repro.trace.adapters import FORMATS

    width = max(len(name) for name in FORMATS)
    for name in sorted(FORMATS):
        fmt = FORMATS[name]
        mode = "read/write" if fmt.writable else "read-only"
        suffixes = " ".join(fmt.suffixes) or "(by content)"
        print(f"{name:<{width}}  {mode:<10}  {fmt.description}  "
              f"[{suffixes}]")
    return 0


def trace_main(argv: List[str]) -> int:
    """Entry point of the ``repro trace`` subcommands."""
    args = build_trace_parser().parse_args(argv)
    if args.command == "gen":
        return _trace_gen(args)
    if args.command == "info":
        return _trace_info(args)
    if args.command == "convert":
        return _trace_convert(args)
    if args.command == "store":
        return _trace_store(args)
    return _trace_formats()


# --------------------------------------------------------------------- #
# repro sample ...
# --------------------------------------------------------------------- #
def build_sample_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sample",
        description="Checkpointed windowed sampling: measure designs over "
                    "short, confidence-terminated windows of one trace "
                    "instead of replaying it whole.",
    )
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names to compare over the "
                             "same windows (default: unison alloy)")
    parser.add_argument("--workload", default="Web Search", metavar="NAME",
                        help="workload name, or a path to a trace file "
                             "(binary traces are windowed seekably)")
    parser.add_argument("--capacity", default="1GB", metavar="SIZE",
                        help="paper-scale capacity (default: 1GB)")
    parser.add_argument("--scale", type=int, default=512,
                        help="capacity scale-down factor (default: 512)")
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="trace length, warm-up region included "
                             "(default: 200000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores (default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--windows", type=int, default=None, metavar="N",
                        help="window budget (default: SamplingConfig's)")
    parser.add_argument("--window-accesses", type=int, default=None,
                        metavar="N", help="accesses measured per window")
    parser.add_argument("--warmup-accesses", type=int, default=None,
                        metavar="N",
                        help="per-window functional warming accesses")
    parser.add_argument("--checkpoint-accesses", type=int, default=None,
                        metavar="N",
                        help="accesses of the one-time warm checkpoint "
                             "prologue")
    parser.add_argument("--target-error", type=float, default=None,
                        metavar="FRAC",
                        help="target relative CI half-width (default: 0.02)")
    parser.add_argument("--placement", choices=["systematic", "random"],
                        default=None, help="window placement strategy")
    parser.add_argument("--sampling-seed", type=int, default=None,
                        help="placement/order seed (default: 0)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="optional ResultSet JSON export path")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the result table")
    _add_telemetry_arguments(parser)
    _add_batch_arguments(parser)
    return parser


def sample_main(argv: List[str]) -> int:
    """Entry point of ``repro sample``."""
    from repro.sampling import SamplingConfig, WindowedSampler
    from repro.sim.spec import _coerce_workload

    args = build_sample_parser().parse_args(argv)
    _apply_telemetry_arguments(args)
    _apply_batch_arguments(args)
    overrides = {
        "max_windows": args.windows,
        "window_accesses": args.window_accesses,
        "warmup_accesses": args.warmup_accesses,
        "checkpoint_accesses": args.checkpoint_accesses,
        "target_relative_error": args.target_error,
        "placement": args.placement,
        "seed": args.sampling_seed,
    }
    if args.windows is not None:
        # A small explicit budget also lowers the adaptive-termination
        # minimum, which would otherwise exceed it.
        overrides["min_windows"] = min(SamplingConfig().min_windows,
                                       args.windows)
    try:
        sampling = SamplingConfig(
            **{k: v for k, v in overrides.items() if v is not None}
        )
        workload = _coerce_workload(args.workload)
        config = ExperimentConfig(
            scale=args.scale, num_accesses=args.accesses,
            num_cores=args.cores, seed=args.seed,
        )
        from repro.obs.core import start_run

        sampler = WindowedSampler(sampling, config=config)
        with start_run("trial", kind_detail="sample",
                       design=" ".join(args.designs),
                       workload=workload.name,
                       capacity=args.capacity):
            run = sampler.compare(args.designs, workload, args.capacity)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    results = run.to_resultset()
    if not args.quiet:
        plan = run.plan
        stopped = ("converged" if run.converged
                   else "window budget exhausted")
        print(f"Sampled {run.workload} @ {run.capacity}: "
              f"{run.windows_measured}/{len(plan.windows)} windows "
              f"({stopped}), {run.simulated_accesses} of "
              f"{plan.total_accesses} accesses simulated per design "
              f"({100 * run.sampled_fraction:.1f}%)")
        for label, sampled in run.designs.items():
            miss = sampled.interval("miss_ratio")
            speedup = sampled.interval("speedup_vs_no_cache")
            print(f"  {label:<12} miss {100 * miss.mean:5.2f}% "
                  f"+- {100 * miss.half_width:.2f} | "
                  f"speedup {speedup.mean:.3f} +- {speedup.half_width:.3f} "
                  f"(95% CI)")
        labels = list(run.designs)
        if len(labels) > 1:
            first = labels[0]
            print("Matched-pair deltas vs", first + ":")
            for other in labels[1:]:
                delta = run.delta("speedup_vs_no_cache", other, first)
                interval = delta.interval()
                print(f"  {other:<12} speedup {interval.mean:+.3f} "
                      f"+- {interval.half_width:.3f} (95% CI, "
                      f"{len(delta)} paired windows)")
        print()
    print(results.table())
    if args.json is not None:
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    return 0


# --------------------------------------------------------------------- #
# repro queue ...
# --------------------------------------------------------------------- #
def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-grid arguments shared by ``repro`` and ``repro queue submit``."""
    parser.add_argument("--designs", nargs="+", default=["unison", "alloy"],
                        metavar="NAME",
                        help="registered design names (default: unison alloy)")
    parser.add_argument("--workloads", nargs="+", default=["Web Search"],
                        metavar="NAME",
                        help="workload names (default: 'Web Search')")
    parser.add_argument("--capacities", nargs="+", default=["256MB", "1GB"],
                        metavar="SIZE",
                        help="paper-scale capacities (default: 256MB 1GB)")
    parser.add_argument("--scale", type=int, default=2048,
                        help="capacity scale-down factor (default: 2048)")
    parser.add_argument("--accesses", type=int, default=12_000,
                        help="accesses per trial (default: 12000)")
    parser.add_argument("--cores", type=int, default=4,
                        help="interleaved cores (default: 4)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload generator seed (default: 1)")
    parser.add_argument("--sampled", action="store_true",
                        help="run every trial through checkpointed windowed "
                             "sampling (cells decompose into window-batch "
                             "jobs)")
    parser.add_argument("--windows", type=int, default=None, metavar="N",
                        help="sampled-mode window budget")
    parser.add_argument("--window-accesses", type=int, default=None,
                        metavar="N", help="sampled-mode accesses per window")


def _queue_spec(args: argparse.Namespace) -> SweepSpec:
    sampling = None
    if args.sampled:
        from repro.sampling import SamplingConfig

        overrides = {
            "max_windows": args.windows,
            "window_accesses": args.window_accesses,
        }
        if args.windows is not None:
            overrides["min_windows"] = min(SamplingConfig().min_windows,
                                           args.windows)
        sampling = SamplingConfig(
            **{k: v for k, v in overrides.items() if v is not None}
        )
    return SweepSpec(
        designs=args.designs,
        workloads=args.workloads,
        capacities=args.capacities,
        config=ExperimentConfig(
            scale=args.scale, num_accesses=args.accesses,
            num_cores=args.cores, seed=args.seed,
        ),
        sampling=sampling,
    )


def build_queue_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro queue",
        description="Durable work-queue sweeps: idempotent on-disk jobs, "
                    "crash-resumable leased workers, and a persistent result "
                    "archive.",
    )
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="queue directory (default: REPRO_QUEUE_DIR, "
                             "else <trace store>/queue)")
    _add_telemetry_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="plan a sweep into durable jobs (idempotent)",
        description="Plan a sweep grid into idempotent jobs keyed by each "
                    "trial's full identity; re-submitting an existing sweep "
                    "adds no jobs.")
    _add_grid_arguments(submit)
    submit.add_argument("--window-batch", type=int, default=None, metavar="N",
                        help="windows per job for sampled trials (default: 4)")
    submit.add_argument("--max-attempts", type=int, default=None, metavar="N",
                        help="attempts before a job is failed (default: 3)")

    status = sub.add_parser(
        "status", help="report job states, attempts, and timing",
        description="Without a token: list every sweep in the store. With "
                    "one: per-state job counts plus timing/attempt totals.")
    status.add_argument("token", nargs="?", default=None, metavar="TOKEN")
    status.add_argument("--json", action="store_true",
                        help="machine-readable JSON output (for scripts/CI)")
    status.add_argument("--jobs", action="store_true",
                        help="also list every job row: state, kind, "
                             "attempts, lease owner, and run time")
    status.add_argument("--watch", action="store_true",
                        help="re-render every --interval seconds with live "
                             "worker heartbeats (Ctrl-C exits)")
    status.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                        help="refresh period for --watch (default: 2)")

    resume = sub.add_parser(
        "resume", help="run a submitted sweep to completion and print it",
        description="Reclaim dead workers' leases, execute whatever jobs "
                    "are not done (zero for an archived sweep), and print "
                    "the assembled result table.")
    resume.add_argument("token", metavar="TOKEN")
    resume.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; 1 = in-process, 0 = one per "
                             "CPU (default: 1)")
    resume.add_argument("--json", default=None, metavar="PATH",
                        help="optional ResultSet JSON export path")
    resume.add_argument("--quiet", action="store_true",
                        help="print only the result table")

    prune = sub.add_parser(
        "prune", help="drop job rows of archived sweeps (retention policy)",
        description="Delete the job-store rows of sweeps whose results are "
                    "fully archived; the result archive is never touched. "
                    "With a TOKEN: prune exactly that sweep. Without one: "
                    "apply the retention policy (--keep-days / "
                    "--keep-archived) across the store.")
    prune.add_argument("token", nargs="?", default=None, metavar="TOKEN",
                       help="prune only this sweep's job rows")
    prune.add_argument("--keep-days", type=float, default=7.0, metavar="D",
                       help="retain sweeps submitted within D days "
                            "(default: 7; 0 = age protects nothing)")
    prune.add_argument("--keep-archived", type=int, default=0, metavar="N",
                       help="additionally retain the N most recent archived "
                            "sweeps regardless of age (default: 0)")
    prune.add_argument("--json", action="store_true",
                       help="machine-readable JSON summary")

    work = sub.add_parser(
        "work", help="run a standalone worker loop on the shared store",
        description="Lease and execute jobs until the store drains.  Any "
                    "number of workers may run concurrently; losing one "
                    "(even to kill -9) costs only its in-flight job.")
    work.add_argument("--sweep", default=None, metavar="TOKEN",
                      help="only run jobs of this sweep (default: any)")
    work.add_argument("--max-jobs", type=int, default=None, metavar="N",
                      help="exit after N jobs (default: run until drained)")
    work.add_argument("--lease-seconds", type=float, default=300.0,
                      help="lease duration per job (default: 300)")
    work.add_argument("--no-drain", action="store_true",
                      help="exit on the first empty lease instead of "
                           "polling while other workers still hold jobs")
    work.add_argument("--throttle", type=float, default=0.0, metavar="SEC",
                      help="sleep after each job (testing/pacing)")
    return parser


def _queue_service(args: argparse.Namespace):
    from repro.queue import SweepService

    kwargs = {}
    if getattr(args, "max_attempts", None) is not None:
        kwargs["max_attempts"] = args.max_attempts
    if getattr(args, "window_batch", None) is not None:
        kwargs["window_batch"] = args.window_batch
    if getattr(args, "lease_seconds", None) is not None:
        kwargs["lease_seconds"] = args.lease_seconds
    return SweepService(queue_dir=args.queue_dir, **kwargs)


def _queue_submit(args: argparse.Namespace) -> int:
    service = _queue_service(args)
    spec = _queue_spec(args)
    outcome = service.submit(spec)
    print(f"sweep {outcome.token}")
    print(f"  {spec.describe()}")
    print(f"  {outcome.new_jobs} new jobs, {outcome.reused_jobs} already "
          f"present ({outcome.total_jobs} total for "
          f"{outcome.total_trials} trials)")
    print(f"  store: {service.db_path}")
    return 0


def _job_record(job) -> dict:
    """One job row as a plain dict (the fields JobStore records)."""
    return {
        "seq": job.seq,
        "kind": job.kind,
        "trial_index": job.trial_index,
        "part": job.part,
        "state": job.state,
        "attempts": job.attempts,
        "max_attempts": job.max_attempts,
        "lease_owner": job.lease_owner,
        "created_at": job.created_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "run_seconds": job.run_seconds,
        "error": ((job.error or "").strip().splitlines() or [None])[-1],
    }


def _archived_meta(service) -> dict:
    """Archive metadata by token (``ResultArchive.list_sweeps``), or {}."""
    if not service.archive_path.is_file():
        return {}
    with service.archive() as archive:
        return {str(meta["token"]): meta for meta in archive.list_sweeps()}


def _queue_status_data(store, token: Optional[str], include_jobs: bool,
                       archived: Optional[dict] = None) -> Optional[dict]:
    """The status report as data (one shape for --json and the renderer).

    ``archived`` (token -> ``ResultArchive.list_sweeps()`` dict) annotates
    each sweep with its durable record count; sweeps whose job rows were
    pruned after archiving still appear in the listing.
    """
    archived = archived or {}
    if token is None:
        sweeps = []
        for row in store.sweeps():
            counts = store.counts(row["token"])
            entry = {
                "token": row["token"],
                "description": row["description"],
                "counts": counts,
                "total": sum(counts.values()),
            }
            meta = archived.get(row["token"])
            if meta is not None:
                entry["archived"] = {"records": meta["records"],
                                     "total": meta["total"],
                                     "complete": meta["complete"]}
            sweeps.append(entry)
        present = {sweep["token"] for sweep in sweeps}
        for token_, meta in archived.items():
            if token_ in present:
                continue
            sweeps.append({
                "token": token_,
                "description": meta["description"],
                "counts": None,
                "total": None,
                "archived": {"records": meta["records"],
                             "total": meta["total"],
                             "complete": meta["complete"]},
            })
        pruned = sum(1 for sweep in sweeps if sweep["counts"] is None)
        return {"sweeps": sweeps, "pruned_sweeps": pruned}
    row = store.sweep_row(token)
    if row is None:
        return None
    counts = store.counts(token)
    data = {
        "token": token,
        "description": row["description"],
        "counts": counts,
        "total": sum(counts.values()),
        "timing": store.timing(token),
    }
    meta = archived.get(token)
    if meta is not None:
        data["archived"] = {"records": meta["records"],
                            "total": meta["total"],
                            "complete": meta["complete"]}
    if include_jobs:
        data["jobs"] = [_job_record(job) for job in store.jobs(token)]
    return data


def _print_queue_status(data: dict, include_jobs: bool) -> None:
    if "sweeps" in data:
        if not data["sweeps"]:
            print("no sweeps submitted")
            return
        for sweep in data["sweeps"]:
            if sweep["counts"] is None:
                jobs = "jobs pruned"
            else:
                jobs = f"{sweep['counts']['done']}/{sweep['total']} done"
            archived = sweep.get("archived")
            archive_text = ""
            if archived:
                archive_text = (f"  archived {archived['records']}/"
                                f"{archived['total']}")
            print(f"{sweep['token']}  {jobs}{archive_text}  "
                  f"{sweep['description']}")
        if data.get("pruned_sweeps"):
            print(f"{data['pruned_sweeps']} sweeps pruned from the job "
                  f"store (results remain in the archive)")
        return
    counts, timing = data["counts"], data["timing"]
    print(f"sweep {data['token']}: {data['description']}")
    for state in ("pending", "leased", "done", "failed"):
        print(f"  {state:<8} {counts[state]}")
    print(f"  attempts {timing['attempts']} over {timing['jobs_timed']} "
          f"timed jobs, {timing['total_seconds']:.2f}s total, "
          f"{timing['mean_seconds']:.2f}s mean, "
          f"{timing['longest_seconds']:.2f}s longest")
    archived = data.get("archived")
    if archived:
        state = " (complete)" if archived["complete"] else ""
        print(f"  archived {archived['records']}/{archived['total']} "
              f"records{state}")
    if counts["done"] == data["total"]:
        print(f"all {data['total']} jobs done")
    if include_jobs and data.get("jobs"):
        print()
        print(f"  {'seq':>4} {'kind':<8} {'state':<8} {'att':>3} "
              f"{'seconds':>8}  owner/error")
        for job in data["jobs"]:
            seconds = ("" if job["run_seconds"] is None
                       else f"{job['run_seconds']:.2f}")
            detail = job["lease_owner"] or ""
            if job["state"] == "failed" and job["error"]:
                detail = job["error"]
            print(f"  {job['seq']:>4} {job['kind']:<8} {job['state']:<8} "
                  f"{job['attempts']:>3} {seconds:>8}  {detail}")
    elif not include_jobs:
        failed = [job for job in data.get("jobs", [])
                  if job["state"] == "failed"]
        for job in failed[:5]:
            print(f"  failed job {job['seq']} (trial {job['trial_index']}): "
                  f"{job['error'] or 'unknown error'}")


def _heartbeat_lines(sweep: Optional[str] = None,
                     unfinished: Optional[int] = None) -> List[str]:
    """Render the run ledger's worker heartbeats (live operator view)."""
    from repro.obs.core import LEDGER_FILENAME, query_root
    from repro.obs.ledger import HEARTBEAT_STALE_SECONDS, RunLedger

    root = query_root()
    if root is None:
        return ["workers: no telemetry directory (enable the trace store "
                "or set REPRO_TELEMETRY_DIR)"]
    path = root / LEDGER_FILENAME
    if not path.is_file():
        return [f"workers: no run ledger yet at {path} "
                f"(start workers with --telemetry / REPRO_TELEMETRY=1)"]
    with RunLedger(path) as ledger:
        rows = ledger.heartbeats(sweep=sweep)
    if not rows:
        return ["workers: none active"]
    now = time.time()
    lines = ["workers:"]
    total_rate = 0.0
    for row in rows:
        age = now - row["updated_at"]
        stale = age > HEARTBEAT_STALE_SECONDS
        status = "stale" if stale else row["status"]
        if row["status"] == "running" and row["job_seq"] is not None:
            doing = f"{row['job_kind']} #{row['job_seq']}"
        else:
            doing = "-"
        rate = row["jobs_per_second"]
        if rate and not stale:
            total_rate += rate
        rate_text = f"{rate:.2f}/s" if rate else "-"
        sweep_text = (row["sweep"] or "")[:8]
        lines.append(
            f"  {row['owner']:<28} {status:<8} job={doing:<12} "
            f"done={row['jobs_done']:<4} rate={rate_text:<8} "
            f"sweep={sweep_text:<8} seen={age:.0f}s ago"
        )
    if unfinished and total_rate > 0:
        lines.append(f"  ETA: {unfinished} unfinished jobs / "
                     f"{total_rate:.2f} jobs/s ~= "
                     f"{unfinished / total_rate:.0f}s")
    return lines


def _queue_status(args: argparse.Namespace) -> int:
    service = _queue_service(args)

    def render() -> Optional[int]:
        archived = _archived_meta(service)
        with service.store() as store:
            data = _queue_status_data(
                store, args.token, include_jobs=args.jobs or args.token,
                archived=archived,
            )
            unfinished = (store.unfinished(args.token)
                          if args.token else store.unfinished())
        if data is None:
            print(f"error: unknown sweep token {args.token!r}",
                  file=sys.stderr)
            return 1
        if args.json:
            if not args.jobs:
                data.pop("jobs", None)
            print(_json.dumps(data, indent=2, sort_keys=True))
            return 0
        _print_queue_status(data, include_jobs=args.jobs)
        if args.watch:
            print()
            for line in _heartbeat_lines(sweep=args.token,
                                         unfinished=unfinished):
                print(line)
        return 0

    if not args.watch or args.json:
        return render() or 0
    # Clear the screen only on real terminals: piped to a file or a CI log
    # the escapes are control garbage, so emit a separator line instead.
    tty = sys.stdout.isatty()
    try:
        while True:
            if tty:
                sys.stdout.write("\033[2J\033[H")  # clear screen, home
            else:
                print("---")
            code = render()
            if code:
                return code
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _queue_resume(args: argparse.Namespace) -> int:
    service = _queue_service(args)

    def progress(index: int, total: int, trial: ExperimentSpec) -> None:
        if not args.quiet:
            print(f"[{index + 1}/{total}] {trial.describe()}",
                  file=sys.stderr)

    try:
        results = service.resume(args.token, workers=args.jobs or None,
                                 progress=progress)
    except (KeyError, RuntimeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(results.table())
    if args.json is not None:
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    return 0


def _queue_prune(args: argparse.Namespace) -> int:
    service = _queue_service(args)
    if args.token is not None:
        with service.archive() as archive:
            meta = archive.sweep_meta(args.token)
        if meta is None:
            print(f"error: no archived sweep {args.token!r}",
                  file=sys.stderr)
            return 1
        if not meta["complete"]:
            print(f"error: sweep {args.token!r} is not fully archived; "
                  f"its job rows are its resume state", file=sys.stderr)
            return 1
        deleted = service.prune(args.token)
        summary = {"pruned": [args.token], "jobs_deleted": deleted,
                   "kept_recent": 0, "kept_young": 0,
                   "skipped_unarchived": 0}
    else:
        summary = service.prune_retention(keep_days=args.keep_days,
                                          keep_archived=args.keep_archived)
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"pruned {len(summary['pruned'])} sweeps "
          f"({summary['jobs_deleted']} job rows); archive untouched")
    for token in summary["pruned"]:
        print(f"  {token}")
    kept = summary["kept_recent"] + summary["kept_young"]
    if kept or summary["skipped_unarchived"]:
        print(f"kept {kept} archived sweeps "
              f"({summary['kept_recent']} by --keep-archived, "
              f"{summary['kept_young']} within --keep-days), "
              f"skipped {summary['skipped_unarchived']} not fully archived")
    return 0


def _queue_work(args: argparse.Namespace) -> int:
    from repro.queue import work as queue_work

    service = _queue_service(args)
    executed = queue_work(
        service.db_path,
        sweep=args.sweep,
        lease_seconds=args.lease_seconds,
        max_jobs=args.max_jobs,
        drain=not args.no_drain,
        throttle=args.throttle,
        archive_path=service.archive_path,
    )
    print(f"executed {executed} jobs")
    return 0


def queue_main(argv: List[str]) -> int:
    """Entry point of the ``repro queue`` subcommands."""
    args = build_queue_parser().parse_args(argv)
    _apply_telemetry_arguments(args)
    try:
        if args.command == "submit":
            return _queue_submit(args)
        if args.command == "status":
            return _queue_status(args)
        if args.command == "resume":
            return _queue_resume(args)
        if args.command == "prune":
            return _queue_prune(args)
        return _queue_work(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# --------------------------------------------------------------------- #
# repro tune ...
# --------------------------------------------------------------------- #
def build_tune_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="Design-space autotuning: a seeded successive-halving "
                    "search over the composable component grid, run as "
                    "resumable queue sweeps of increasing CI fidelity, "
                    "ending in a CI-aware Pareto frontier against the "
                    "paper's designs.",
    )
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="queue directory (default: REPRO_QUEUE_DIR, "
                             "else <trace store>/queue)")
    _add_telemetry_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="plan a search and run it to completion",
        description="Draw candidates from the design space (seeded, "
                    "deterministic), then run every rung: each widens the "
                    "sampled window budget, tightens the CI target, and "
                    "prunes candidates whose CI is dominated beyond noise. "
                    "Idempotent and resumable: a killed search re-submitted "
                    "with the same flags re-runs zero finished jobs.")
    submit.add_argument("--workload", default="Web Search",
                        help='workload name (default: "Web Search")')
    submit.add_argument("--capacity", default="1GB",
                        help="cache capacity (default: 1GB)")
    submit.add_argument("--seed", type=int, default=1,
                        help="seed of the candidate draw and sampling")
    submit.add_argument("--candidates", type=int, default=36, metavar="N",
                        help="candidate compositions to draw (default: 36)")
    submit.add_argument("--rungs", type=int, default=3,
                        help="successive-halving rungs (default: 3)")
    submit.add_argument("--eta", type=int, default=2,
                        help="halving factor per rung (default: 2)")
    submit.add_argument("--scale", type=int, default=1024,
                        help="capacity scale-down factor (default: 1024)")
    submit.add_argument("--accesses", type=int, default=120_000,
                        help="trace length per trial (default: 120000)")
    submit.add_argument("--cores", type=int, default=16,
                        help="modeled core count (default: 16)")
    submit.add_argument("--window-accesses", type=int, default=2_000,
                        metavar="N", help="accesses per sampled window")
    submit.add_argument("--warmup-accesses", type=int, default=2_000,
                        metavar="N", help="per-window functional warming")
    submit.add_argument("--checkpoint-accesses", type=int, default=20_000,
                        metavar="N", help="warm-checkpoint prologue length")
    submit.add_argument("--min-windows", type=int, default=3, metavar="N",
                        help="windows before adaptive termination")
    submit.add_argument("--base-windows", type=int, default=4, metavar="N",
                        help="rung 0 window budget (x eta per rung)")
    submit.add_argument("--base-relative-error", type=float, default=0.10,
                        metavar="E", help="rung 0 CI target (/ eta per rung)")
    submit.add_argument("--no-baselines", action="store_true",
                        help="skip measuring the paper designs in the "
                             "final rung")
    submit.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per rung; 1 = in-process, "
                             "0 = one per CPU (default: 1)")
    submit.add_argument("--plan-only", action="store_true",
                        help="write the search state and print its token "
                             "without running any rung")

    status = sub.add_parser(
        "status", help="list searches, or one search's rung progress",
        description="Without a token: every persisted search. With one: "
                    "per-rung designs, fidelity, survivors, and results.")
    status.add_argument("token", nargs="?", default=None, metavar="TOKEN")
    status.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")

    resume = sub.add_parser(
        "resume", help="continue an interrupted search to completion",
        description="Reload the persisted state, re-register the candidate "
                    "designs, and drive the unfinished rungs; finished "
                    "jobs (and fully archived rungs) are never re-run.")
    resume.add_argument("token", metavar="TOKEN")
    resume.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per rung (default: 1)")

    frontier = sub.add_parser(
        "frontier", help="print (or export) a finished search's frontier",
        description="The CI-aware Pareto frontier of the final rung: "
                    "discovered hybrids and paper baselines on the "
                    "miss-ratio / speedup / SRAM-overhead axes.")
    frontier.add_argument("token", metavar="TOKEN")
    frontier.add_argument("--json", default=None, metavar="PATH",
                          help="write the frontier artifact JSON "
                               "('-' = stdout)")
    frontier.add_argument("--verify", action="store_true",
                          help="re-run the winning design by its registered "
                               "name and check it reproduces the archived "
                               "record bit-identically")
    return parser


def _tune_config(args: argparse.Namespace):
    from repro.search import TuneConfig

    return TuneConfig(
        workload=args.workload,
        capacity=args.capacity,
        seed=args.seed,
        num_candidates=args.candidates,
        rungs=args.rungs,
        eta=args.eta,
        scale=args.scale,
        num_accesses=args.accesses,
        num_cores=args.cores,
        window_accesses=args.window_accesses,
        warmup_accesses=args.warmup_accesses,
        checkpoint_accesses=args.checkpoint_accesses,
        min_windows=args.min_windows,
        base_windows=args.base_windows,
        base_relative_error=args.base_relative_error,
        include_baselines=not args.no_baselines,
    )


def _print_tune_state(state) -> None:
    print(f"search {state.token}: {state.status}, "
          f"{len(state.candidates)} candidates")
    for record in state.rungs:
        fidelity = (f"{record['max_windows']} windows @ "
                    f"{record['target_relative_error']:.3f} rel err")
        if record["status"] == "done":
            print(f"  rung {record['rung']}: {len(record['designs'])} "
                  f"designs, {fidelity} -> {len(record['survivors'])} "
                  f"survive, {len(record['pruned'])} pruned "
                  f"(sweep {record['sweep_token'][:12]})")
        else:
            print(f"  rung {record['rung']}: {len(record['designs'])} "
                  f"designs, {fidelity} -> {record['status']}")
    if state.winners:
        print(f"  winners: {' '.join(state.winners)}")


def _tune_submit(args: argparse.Namespace) -> int:
    from repro.search import TuneSearch

    search = TuneSearch(_tune_config(args), queue_dir=args.queue_dir)
    state = search.plan()
    print(f"search {state.token}")
    print(f"  space: {search.space.describe()}")
    print(f"  drawn: {len(state.candidates)} candidates, "
          f"{search.config.rungs} rungs (eta={search.config.eta})")
    print(f"  state: {search.state_path(state.token)}")
    if args.plan_only:
        return 0
    state = search.run(state, workers=args.jobs or None)
    print()
    _print_tune_state(state)
    return 0


def _tune_status(args: argparse.Namespace) -> int:
    from repro.search import list_searches, load_search

    if args.token is None:
        states = list_searches(args.queue_dir)
        if args.json:
            print(_json.dumps([state.to_json() for state in states],
                              indent=2, sort_keys=True))
            return 0
        if not states:
            print("no searches")
            return 0
        for state in states:
            done = sum(1 for r in state.rungs if r["status"] == "done")
            print(f"{state.token}  {state.status:<9} "
                  f"rungs {done}/{state.config.rungs}  "
                  f"{len(state.candidates)} candidates  "
                  f"{state.config.workload} @ {state.config.capacity}")
        return 0
    _, state = load_search(args.token, args.queue_dir)
    if args.json:
        print(_json.dumps(state.to_json(), indent=2, sort_keys=True))
        return 0
    _print_tune_state(state)
    return 0


def _tune_resume(args: argparse.Namespace) -> int:
    from repro.search import load_search

    search, state = load_search(args.token, args.queue_dir)
    state = search.run(state, workers=args.jobs or None)
    _print_tune_state(state)
    return 0


def _tune_frontier(args: argparse.Namespace) -> int:
    from repro.search import load_search

    search, state = load_search(args.token, args.queue_dir)
    artifact = state.frontier or search.build_frontier(state)
    if args.json == "-":
        print(_json.dumps(artifact, indent=2, sort_keys=True))
    else:
        width = max(len(d["name"]) for d in artifact["designs"])
        print(f"frontier of search {state.token} "
              f"({artifact['workload']} @ {artifact['capacity']}):")
        for design in artifact["designs"]:
            miss = design["miss_ratio"]
            speed = design["speedup"]
            mark = "*" if design["on_frontier"] else " "
            beats = (" beats: " + " ".join(design["dominates_baselines"])
                     if design["dominates_baselines"] else "")
            print(f" {mark} {design['name']:<{width}} "
                  f"[{design['kind']:<9}] "
                  f"miss {miss['mean']:.4f}±{miss['half_width']:.4f}  "
                  f"speedup {speed['mean']:.3f}±{speed['half_width']:.3f}  "
                  f"sram {design['sram_overhead_bytes'] / 1024:.1f}KB"
                  f"{beats}")
        print(f"  winners: {' '.join(artifact['winners']) or '(none)'}")
        if args.json is not None:
            Path(args.json).write_text(
                _json.dumps(artifact, indent=2, sort_keys=True))
            print(f"  artifact: {args.json}")
    if args.verify:
        report = search.verify_winner(state)
        verdict = "bit-identical" if report["identical"] else "MISMATCH"
        print(f"  verify {report['design']}: {verdict} "
              f"(miss {report['miss_ratio']:.6f} vs archived "
              f"{report['archived_miss_ratio']:.6f})")
        if not report["identical"]:
            return 1
    return 0


def tune_main(argv: List[str]) -> int:
    """Entry point of the ``repro tune`` subcommands."""
    args = build_tune_parser().parse_args(argv)
    _apply_telemetry_arguments(args)
    try:
        if args.command == "submit":
            return _tune_submit(args)
        if args.command == "status":
            return _tune_status(args)
        if args.command == "resume":
            return _tune_resume(args)
        return _tune_frontier(args)
    except (KeyError, RuntimeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# --------------------------------------------------------------------- #
# repro runs ...
# --------------------------------------------------------------------- #
def build_runs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="Query the telemetry run ledger recorded by --telemetry "
                    "/ REPRO_TELEMETRY=1 runs: per-phase wall-clock, "
                    "accesses/sec, store and checkpoint hit rates.",
    )
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="telemetry directory holding ledger.sqlite "
                             "(default: REPRO_TELEMETRY_DIR, else "
                             "<trace store>/telemetry)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="recent runs, newest first",
        description="List recorded runs: id, kind, status, wall-clock, and "
                    "the design/workload/capacity labels.")
    list_cmd.add_argument("--limit", type=int, default=20, metavar="N",
                          help="show at most N runs (default: 20)")
    list_cmd.add_argument("--sweep", default=None, metavar="TOKEN",
                          help="only runs of this sweep token (prefix ok)")
    list_cmd.add_argument("--kind", default=None,
                          choices=["trial", "windows", "assemble"],
                          help="only runs of this kind")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable JSON output")

    show = sub.add_parser(
        "show", help="one run, or every run of a sweep, in detail",
        description="REF is a run-id prefix or a sweep-token prefix; a "
                    "sweep reference aggregates phases and metrics over "
                    "all of its runs.")
    show.add_argument("ref", metavar="REF")
    show.add_argument("--events", type=int, default=10, metavar="N",
                      help="show at most N recent events (default: 10)")
    show.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")

    compare = sub.add_parser(
        "compare", help="two runs or sweeps side by side",
        description="Resolve both references like 'show' and print their "
                    "phase timings and derived metrics in two columns.")
    compare.add_argument("ref_a", metavar="REF_A")
    compare.add_argument("ref_b", metavar="REF_B")
    return parser


def _open_query_ledger(telemetry_dir: Optional[str]):
    """The read-side ledger, or ``(None, error-message)``."""
    from pathlib import Path

    from repro.obs.core import LEDGER_FILENAME, query_root
    from repro.obs.ledger import RunLedger

    root = Path(telemetry_dir) if telemetry_dir else query_root()
    if root is None:
        return None, ("no telemetry directory: set REPRO_TELEMETRY_DIR or "
                      "enable the trace store (REPRO_TRACE_STORE)")
    path = root / LEDGER_FILENAME
    if not path.is_file():
        return None, (f"no run ledger at {path} -- record one with "
                      f"--telemetry or REPRO_TELEMETRY=1")
    return RunLedger(path), None


def _run_row_data(row) -> dict:
    data = {key: row[key] for key in row.keys()}
    if data.get("labels"):
        data["labels"] = _json.loads(data["labels"])
    return data


def _format_run_line(row) -> str:
    from datetime import datetime

    started = datetime.fromtimestamp(row["started_at"]).strftime("%H:%M:%S")
    wall = ("..." if row["wall_seconds"] is None
            else f"{row['wall_seconds']:.2f}s")
    what = " ".join(filter(None, [row["design"], row["workload"],
                                  row["capacity"]])) or row["label"] or ""
    sweep = f" sweep={row['sweep'][:8]}" if row["sweep"] else ""
    return (f"{row['run_id']}  {row['kind']:<8} {row['status']:<6} "
            f"{started}  {wall:>8}  {what}{sweep}")


def _summary_lines(summary: dict) -> List[str]:
    from repro.obs.core import PHASE_ORDER

    lines = []
    wall = summary["wall_seconds"]
    lines.append(f"runs: {summary['runs']} ({summary['errors']} errors), "
                 f"wall-clock {wall:.2f}s")
    phases = summary["phases"]
    ordered = [name for name in PHASE_ORDER if name in phases]
    ordered += [name for name in sorted(phases) if name not in PHASE_ORDER]
    if ordered:
        lines.append("phases:")
    for name in ordered:
        seconds, count = phases[name]
        share = f" ({100 * seconds / wall:.0f}%)" if wall > 0 else ""
        lines.append(f"  {name:<12} {seconds:8.3f}s{share}  x{count}")
    metrics = summary["metrics"]
    if metrics:
        lines.append("metrics:")
    for name in sorted(metrics):
        value = metrics[name]
        text = f"{value:g}" if value == int(value) else f"{value:.4f}"
        lines.append(f"  {name:<22} {text}")
    for name in ("accesses_per_sec", "trace_store_hit_rate",
                 "checkpoint_hit_rate"):
        if name in summary:
            if name.endswith("rate"):
                lines.append(f"{name}: {100 * summary[name]:.1f}%")
            else:
                lines.append(f"{name}: {summary[name]:,.0f}")
    return lines


def _resolve_summary(ledger, ref: str):
    """(scope, rows, summary) for one user-typed reference."""
    from repro.obs.ledger import summarize

    scope, rows = ledger.resolve(ref)
    return scope, rows, summarize(ledger, rows)


def _runs_list(ledger, args: argparse.Namespace) -> int:
    rows = ledger.runs(limit=args.limit, sweep=args.sweep, kind=args.kind)
    if args.json:
        print(_json.dumps([_run_row_data(row) for row in rows], indent=2,
                          sort_keys=True))
        return 0
    if not rows:
        print("no recorded runs")
        return 0
    for row in rows:
        print(_format_run_line(row))
    return 0


def _runs_show(ledger, args: argparse.Namespace) -> int:
    scope, rows, summary = _resolve_summary(ledger, args.ref)
    if scope == "run":
        events = ledger.events_for(run_id=rows[0]["run_id"],
                                   limit=args.events)
        title = f"run {rows[0]['run_id']} ({rows[0]['kind']})"
    else:
        events = ledger.events_for(sweep=rows[0]["sweep"],
                                   limit=args.events)
        title = f"sweep {rows[0]['sweep']}"
    if args.json:
        summary = dict(summary)
        summary["scope"] = scope
        summary["runs_detail"] = [_run_row_data(row) for row in rows]
        summary["events"] = [
            {"ts": event["ts"], "kind": event["kind"],
             "detail": _json.loads(event["detail"])
             if event["detail"] else None}
            for event in events
        ]
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(title)
    if scope == "run":
        row = rows[0]
        what = " ".join(filter(None, [row["design"], row["workload"],
                                      row["capacity"]]))
        if what:
            print(f"  {what}")
        if row["error"]:
            print(f"  error: {row['error'].strip().splitlines()[-1]}")
    for line in _summary_lines(summary):
        print(f"  {line}")
    if events:
        print("  recent events:")
        for event in reversed(events):
            detail = ""
            if event["detail"]:
                fields = _json.loads(event["detail"])
                detail = " " + " ".join(f"{k}={v}"
                                        for k, v in sorted(fields.items()))
            print(f"    {event['kind']}{detail}")
    return 0


def _runs_compare(ledger, args: argparse.Namespace) -> int:
    from repro.obs.core import PHASE_ORDER

    sides = []
    for ref in (args.ref_a, args.ref_b):
        scope, rows, summary = _resolve_summary(ledger, ref)
        name = (rows[0]["run_id"] if scope == "run"
                else f"sweep {rows[0]['sweep'][:12]}")
        sides.append((name, summary))
    (name_a, sum_a), (name_b, sum_b) = sides
    width = 14
    print(f"{'':<{width}} {name_a:>20} {name_b:>20}")
    print(f"{'runs':<{width}} {sum_a['runs']:>20} {sum_b['runs']:>20}")
    print(f"{'wall_seconds':<{width}} {sum_a['wall_seconds']:>20.2f} "
          f"{sum_b['wall_seconds']:>20.2f}")
    names = [name for name in PHASE_ORDER
             if name in sum_a["phases"] or name in sum_b["phases"]]
    for name in names:
        a = sum_a["phases"].get(name, (0.0, 0))[0]
        b = sum_b["phases"].get(name, (0.0, 0))[0]
        print(f"{name:<{width}} {a:>19.3f}s {b:>19.3f}s")
    for name in ("accesses_per_sec", "trace_store_hit_rate",
                 "checkpoint_hit_rate"):
        if name in sum_a or name in sum_b:
            a, b = sum_a.get(name), sum_b.get(name)
            if name.endswith("rate"):
                text_a = "-" if a is None else f"{100 * a:.1f}%"
                text_b = "-" if b is None else f"{100 * b:.1f}%"
            else:
                text_a = "-" if a is None else f"{a:,.0f}"
                text_b = "-" if b is None else f"{b:,.0f}"
            print(f"{name:<{width}} {text_a:>20} {text_b:>20}")
    return 0


def runs_main(argv: List[str]) -> int:
    """Entry point of the ``repro runs`` subcommands."""
    args = build_runs_parser().parse_args(argv)
    ledger, error = _open_query_ledger(args.telemetry_dir)
    if ledger is None:
        print(f"error: {error}", file=sys.stderr)
        return 1
    with ledger:
        try:
            if args.command == "list":
                return _runs_list(ledger, args)
            if args.command == "show":
                return _runs_show(ledger, args)
            return _runs_compare(ledger, args)
        except (KeyError, ValueError) as error:
            message = (error.args[0] if error.args else error)
            print(f"error: {message}", file=sys.stderr)
            return 1


# --------------------------------------------------------------------- #
# repro top
# --------------------------------------------------------------------- #
def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live worker heartbeats from the run ledger: per-worker "
                    "status, current job, throughput, and a drain ETA when "
                    "the job store is reachable.",
    )
    parser.add_argument("--sweep", default=None, metavar="TOKEN",
                        help="only workers on this sweep token")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="queue directory for the ETA's unfinished-job "
                             "count (default: REPRO_QUEUE_DIR, else "
                             "<trace store>/queue)")
    parser.add_argument("--watch", action="store_true",
                        help="re-render every --interval seconds "
                             "(Ctrl-C exits)")
    parser.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                        help="refresh period for --watch (default: 2)")
    return parser


def _unfinished_jobs(queue_dir: Optional[str],
                     sweep: Optional[str]) -> Optional[int]:
    from repro.queue import SweepService

    try:
        service = SweepService(queue_dir=queue_dir)
    except (RuntimeError, ValueError):
        return None
    if not service.db_path.is_file():
        return None
    with service.store() as store:
        return store.unfinished(sweep)


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the result archive, run ledger, and work queue "
                    "over HTTP: a JSON API, SVG paper figures with 95% CI "
                    "error bars, and a live dashboard.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"port, 0 picks a free one "
                             f"(default {DEFAULT_PORT})")
    parser.add_argument("--root", default=None,
                        help="serve <root>/queue and <root>/telemetry "
                             "instead of the environment's queue dir and "
                             "telemetry root")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request log lines")
    return parser


def serve_main(argv: List[str]) -> int:
    """Entry point of ``repro serve``."""
    from repro.serve.server import serve

    args = build_serve_parser().parse_args(argv)
    try:
        return serve(host=args.host, port=args.port, root=args.root,
                     quiet=args.quiet)
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1


def top_main(argv: List[str]) -> int:
    """Entry point of ``repro top``."""
    args = build_top_parser().parse_args(argv)

    def render() -> None:
        unfinished = _unfinished_jobs(args.queue_dir, args.sweep)
        if unfinished is not None:
            print(f"queue: {unfinished} unfinished jobs")
        for line in _heartbeat_lines(sweep=args.sweep,
                                     unfinished=unfinished):
            print(line)

    if not args.watch:
        render()
        return 0
    tty = sys.stdout.isatty()  # no ANSI clears into pipes or CI logs
    try:
        while True:
            if tty:
                sys.stdout.write("\033[2J\033[H")  # clear screen, home
            else:
                print("---")
            render()
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


# --------------------------------------------------------------------- #
# repro [sweep] ...
# --------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "sample":
        return sample_main(argv[1:])
    if argv and argv[0] == "designs":
        return designs_main(argv[1:])
    if argv and argv[0] == "queue":
        return queue_main(argv[1:])
    if argv and argv[0] == "tune":
        return tune_main(argv[1:])
    if argv and argv[0] == "runs":
        return runs_main(argv[1:])
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "work":
        # `repro work` == `repro queue work`: the verb a fleet of standalone
        # worker shells actually types.
        return queue_main(["work"] + argv[1:])
    if argv and argv[0] == "sweep":
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_telemetry_arguments(args)
    _apply_batch_arguments(args)
    if args.list_designs:
        return _list_designs()
    if args.list_workloads:
        return _list_workloads()
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    try:
        spec = SweepSpec(
            designs=args.designs,
            workloads=args.workloads,
            capacities=args.capacities,
            config=ExperimentConfig(
                scale=args.scale,
                num_accesses=args.accesses,
                num_cores=args.cores,
                seed=args.seed,
            ),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not args.quiet:
        workers_note = "serial" if args.jobs == 1 else (
            f"{args.jobs} workers" if args.jobs else "one worker per CPU")
        print(f"Sweep: {spec.describe()}")
        print(f"Executor: {workers_note}")
        print()

    def progress(index: int, total: int, trial: ExperimentSpec) -> None:
        if not args.quiet:
            print(f"[{index + 1}/{total}] {trial.describe()}", file=sys.stderr)

    results = run_sweep(spec, workers=args.jobs or None, progress=progress)

    if not args.quiet:
        print()
    print(results.table())

    if args.json != "-":
        results.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON export: {args.json}")
    if args.csv is not None:
        results.to_csv(args.csv)
        if not args.quiet:
            print(f"CSV export: {args.csv}")
    return 0


def run() -> "None":
    """Console-script wrapper: ``main`` plus graceful SIGPIPE handling."""
    import os

    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro --list-designs | head``) closed
        # the pipe; suppress the shutdown-time flush error too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)


if __name__ == "__main__":  # pragma: no cover
    run()
