"""Crossbar interconnect model.

The evaluated CMP connects 16 cores to 4 L2 banks through a 16x4 crossbar
(Table III).  The model charges a fixed traversal latency plus a simple
contention term when several requests target the same output port in the same
cycle window; it is used by the full-system assembly and by the performance
model's constant L2-access component.
"""

from __future__ import annotations

from typing import Dict

from repro.stats.counters import StatGroup


class Crossbar:
    """A fixed-latency crossbar with per-output-port contention tracking."""

    def __init__(self, num_inputs: int = 16, num_outputs: int = 4,
                 traversal_latency: int = 4) -> None:
        if num_inputs <= 0 or num_outputs <= 0:
            raise ValueError("port counts must be positive")
        if traversal_latency < 0:
            raise ValueError("traversal_latency must be non-negative")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.traversal_latency = traversal_latency
        self._port_busy_until: Dict[int, int] = {}
        self.transfers = 0
        self.contended_transfers = 0

    def route(self, input_port: int, output_port: int, now: int = 0) -> int:
        """Route one flit; returns the latency including any port contention."""
        if not 0 <= input_port < self.num_inputs:
            raise ValueError(f"input_port {input_port} out of range")
        if not 0 <= output_port < self.num_outputs:
            raise ValueError(f"output_port {output_port} out of range")
        busy_until = self._port_busy_until.get(output_port, 0)
        wait = max(0, busy_until - now)
        if wait:
            self.contended_transfers += 1
        start = now + wait
        self._port_busy_until[output_port] = start + 1
        self.transfers += 1
        return wait + self.traversal_latency

    def output_port_for(self, address: int) -> int:
        """Bank selection: interleave L2 banks on 64-byte block addresses."""
        return (address // 64) % self.num_outputs

    def stats(self) -> StatGroup:
        """Transfer and contention statistics."""
        group = StatGroup("crossbar")
        group.set("transfers", self.transfers)
        group.set("contended_transfers", self.contended_transfers)
        group.set("traversal_latency", self.traversal_latency)
        return group
