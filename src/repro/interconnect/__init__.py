"""On-chip interconnect models."""

from repro.interconnect.crossbar import Crossbar

__all__ = ["Crossbar"]
