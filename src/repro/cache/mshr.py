"""Miss status holding registers (MSHRs).

MSHRs track outstanding misses so that secondary misses to an in-flight block
merge instead of issuing duplicate requests, and so the number of misses the
core can overlap (its memory-level parallelism) is bounded by the MSHR count.
The trace-driven front end uses this to derive the effective MLP fed to the
analytic performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class MshrEntry:
    """One outstanding miss."""

    block_address: int
    issue_time: int
    merged_requests: int = 0
    requestors: List[int] = field(default_factory=list)


class MshrFile:
    """A fixed-capacity file of MSHR entries."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self._entries: Dict[int, MshrEntry] = {}
        # Statistics
        self.allocations = 0
        self.merges = 0
        self.stalls = 0

    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of in-flight misses."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True if no new primary miss can be accepted."""
        return len(self._entries) >= self.num_entries

    def lookup(self, block_address: int) -> bool:
        """True if a miss to this block is already outstanding."""
        return block_address in self._entries

    # ------------------------------------------------------------------ #
    def allocate(self, block_address: int, now: int, requestor: int = 0) -> bool:
        """Register a primary miss.

        Returns True on success, False if the file is full (the requestor must
        stall); a secondary miss to an existing entry is merged and always
        succeeds.
        """
        entry = self._entries.get(block_address)
        if entry is not None:
            entry.merged_requests += 1
            entry.requestors.append(requestor)
            self.merges += 1
            return True
        if self.full:
            self.stalls += 1
            return False
        self._entries[block_address] = MshrEntry(
            block_address=block_address, issue_time=now, requestors=[requestor]
        )
        self.allocations += 1
        return True

    def release(self, block_address: int) -> MshrEntry:
        """Retire the entry when the fill returns; returns the entry."""
        if block_address not in self._entries:
            raise KeyError(f"no outstanding miss for block {block_address:#x}")
        return self._entries.pop(block_address)

    def outstanding_blocks(self) -> List[int]:
        """Block addresses of all in-flight misses."""
        return list(self._entries)
