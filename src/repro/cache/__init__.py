"""On-chip SRAM cache hierarchy.

The paper's CMP has split 64 KB L1 caches per core and a shared 4 MB 16-way
L2; the die-stacked DRAM cache only observes the L2 miss stream.  This
subpackage provides the generic set-associative cache model, replacement
policies, MSHRs, and a two-level hierarchy front-end that can filter a raw
access stream down to the L2-miss stream the DRAM cache models consume.
"""

from repro.cache.replacement import (
    LruPolicy,
    NruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.sram_cache import CacheAccessResult, SetAssociativeCache
from repro.cache.mshr import MshrFile
from repro.cache.hierarchy import CacheHierarchy

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "NruPolicy",
    "RandomPolicy",
    "make_policy",
    "SetAssociativeCache",
    "CacheAccessResult",
    "MshrFile",
    "CacheHierarchy",
]
