"""Generic set-associative SRAM cache model (functional, with hit latency).

Used for the L1 and L2 levels of the hierarchy.  The model is write-back /
write-allocate, which matches the paper's system (dirty L2 victims appear as
writes in the DRAM-cache request stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.config.system import SramCacheConfig
from repro.stats.counters import StatGroup


@dataclass
class _Line:
    """One cache line's bookkeeping state."""

    valid: bool = False
    dirty: bool = False
    tag: int = -1


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    latency_cycles: int
    #: Block address of a dirty victim written back as a result of the fill,
    #: or None if the access caused no dirty eviction.
    writeback_block: Optional[int] = None
    #: Block address of the victim (clean or dirty), or None.
    evicted_block: Optional[int] = None


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    config:
        Geometry and latency of the cache level.
    replacement:
        Replacement policy name understood by
        :func:`repro.cache.replacement.make_policy`.
    """

    def __init__(self, config: SramCacheConfig, replacement: str = "lru") -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.block_size = config.block_size
        self._lines: List[List[_Line]] = [
            [_Line() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(replacement, self.associativity) for _ in range(self.num_sets)
        ]
        # Statistics
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def _index_and_tag(self, block_address: int) -> "tuple[int, int]":
        return block_address % self.num_sets, block_address // self.num_sets

    def _lookup(self, set_index: int, tag: int) -> int:
        for way, line in enumerate(self._lines[set_index]):
            if line.valid and line.tag == tag:
                return way
        return -1

    # ------------------------------------------------------------------ #
    def contains(self, block_address: int) -> bool:
        """True if the block is present (no statistics side effects)."""
        set_index, tag = self._index_and_tag(block_address)
        return self._lookup(set_index, tag) >= 0

    def access(self, block_address: int, is_write: bool = False) -> CacheAccessResult:
        """Access a block; on a miss the block is allocated (write-allocate)."""
        if block_address < 0:
            raise ValueError("block_address must be non-negative")
        set_index, tag = self._index_and_tag(block_address)
        way = self._lookup(set_index, tag)
        policy = self._policies[set_index]

        if way >= 0:
            self.hits += 1
            line = self._lines[set_index][way]
            if is_write:
                line.dirty = True
            policy.on_access(way)
            return CacheAccessResult(hit=True, latency_cycles=self.config.hit_latency_cycles)

        self.misses += 1
        writeback_block, evicted_block = self._fill(set_index, tag, is_write)
        return CacheAccessResult(
            hit=False,
            latency_cycles=self.config.hit_latency_cycles,
            writeback_block=writeback_block,
            evicted_block=evicted_block,
        )

    def _fill(self, set_index: int, tag: int,
              is_write: bool) -> "tuple[Optional[int], Optional[int]]":
        policy = self._policies[set_index]
        lines = self._lines[set_index]
        victim_way = policy.victim([line.valid for line in lines])
        victim = lines[victim_way]

        writeback_block: Optional[int] = None
        evicted_block: Optional[int] = None
        if victim.valid:
            evicted_block = victim.tag * self.num_sets + set_index
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
                writeback_block = evicted_block

        victim.valid = True
        victim.dirty = is_write
        victim.tag = tag
        policy.on_fill(victim_way)
        return writeback_block, evicted_block

    def invalidate(self, block_address: int) -> bool:
        """Drop a block if present; returns True if it was found."""
        set_index, tag = self._index_and_tag(block_address)
        way = self._lookup(set_index, tag)
        if way < 0:
            return False
        self._lines[set_index][way] = _Line()
        return True

    # ------------------------------------------------------------------ #
    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Miss ratio (0.0 if no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        """Zero the statistics (warm-up boundary)."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.evictions = 0

    def stats(self) -> StatGroup:
        """Hit/miss/eviction statistics for this level."""
        group = StatGroup(self.config.name)
        group.set("hits", self.hits)
        group.set("misses", self.misses)
        group.set("accesses", self.accesses)
        group.set("miss_ratio", self.miss_ratio)
        group.set("writebacks", self.writebacks)
        group.set("evictions", self.evictions)
        return group
