"""Replacement policies for set-associative caches.

Policies operate on way indices within a single set and are instantiated once
per set.  The interface is deliberately small: notify on access and on fill,
and nominate a victim.
"""

from __future__ import annotations

import abc
import random
from typing import List


class ReplacementPolicy(abc.ABC):
    """Replacement state for one cache set."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.associativity = associativity

    @abc.abstractmethod
    def on_access(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """Record a fill into ``way``."""

    @abc.abstractmethod
    def victim(self, valid_ways: List[bool]) -> int:
        """Choose a way to evict.

        ``valid_ways[w]`` is True if way ``w`` currently holds valid data; an
        invalid way is always preferred over evicting valid data.
        """

    def _first_invalid(self, valid_ways: List[bool]) -> int:
        for way, valid in enumerate(valid_ways):
            if not valid:
                return way
        return -1


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement (the paper's page replacement policy)."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        # recency[way] = logical time of last touch; larger is more recent.
        self._recency = [0] * associativity
        self._clock = 0

    def on_access(self, way: int) -> None:
        self._clock += 1
        self._recency[way] = self._clock

    def on_fill(self, way: int) -> None:
        self.on_access(way)

    def victim(self, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid >= 0:
            return invalid
        oldest_way = 0
        oldest_time = self._recency[0]
        for way in range(1, self.associativity):
            if self._recency[way] < oldest_time:
                oldest_time = self._recency[way]
                oldest_way = way
        return oldest_way

    def recency_order(self) -> List[int]:
        """Ways ordered from most- to least-recently used (for inspection)."""
        return sorted(range(self.associativity),
                      key=lambda w: self._recency[w], reverse=True)


class NruPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way, cleared when all are set."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._referenced = [False] * associativity

    def _maybe_reset(self) -> None:
        if all(self._referenced):
            self._referenced = [False] * self.associativity

    def on_access(self, way: int) -> None:
        self._referenced[way] = True
        self._maybe_reset()

    def on_fill(self, way: int) -> None:
        self.on_access(way)

    def victim(self, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid >= 0:
            return invalid
        for way in range(self.associativity):
            if not self._referenced[way]:
                return way
        return 0


class RripPolicy(ReplacementPolicy):
    """Static RRIP (SRRIP) with 2-bit re-reference prediction values.

    Fills insert at a *long* re-reference interval (RRPV = max - 1), hits
    promote to *near-immediate* (RRPV = 0), and the victim scan walks the
    ways looking for RRPV = max, aging every way when none qualifies --
    the deterministic SRRIP-HP variant of Jaleel et al. (ISCA 2010).
    """

    MAX_RRPV = 3  # 2-bit counters

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._rrpv = [self.MAX_RRPV] * associativity

    def on_access(self, way: int) -> None:
        self._rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        self._rrpv[way] = self.MAX_RRPV - 1

    def victim(self, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid >= 0:
            return invalid
        while True:
            for way in range(self.associativity):
                if self._rrpv[way] >= self.MAX_RRPV:
                    return way
            for way in range(self.associativity):
                self._rrpv[way] += 1


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a deterministic per-set generator."""

    def __init__(self, associativity: int, seed: int = 0) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def on_access(self, way: int) -> None:  # random keeps no access state
        return None

    def on_fill(self, way: int) -> None:
        return None

    def victim(self, valid_ways: List[bool]) -> int:
        invalid = self._first_invalid(valid_ways)
        if invalid >= 0:
            return invalid
        return self._rng.randrange(self.associativity)


_POLICIES = {
    "lru": LruPolicy,
    "nru": NruPolicy,
    "random": RandomPolicy,
    "rrip": RripPolicy,
}


def make_policy(name: str, associativity: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``, ``nru``, ``random``,
    ``rrip``)."""
    key = name.lower()
    if key not in _POLICIES:
        raise ValueError(f"unknown replacement policy {name!r}; options: {sorted(_POLICIES)}")
    return _POLICIES[key](associativity)
