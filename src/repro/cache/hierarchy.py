"""Two-level SRAM cache hierarchy front end.

The hierarchy takes a raw per-core access stream, filters it through private
L1 data caches and the shared L2, and emits the L2-miss stream (demand misses
plus dirty writebacks) that the die-stacked DRAM cache observes.  The
synthetic workload generators already model post-L2 statistics, so the main
experiments drive the DRAM cache directly; the hierarchy is used by examples,
by tests, and by users who want to replay their own raw traces.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.cache.sram_cache import SetAssociativeCache
from repro.config.system import SystemConfig
from repro.stats.counters import StatGroup
from repro.trace.record import AccessType, MemoryAccess


class CacheHierarchy:
    """Private L1D caches per core plus a shared L2."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self.l1d: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1d) for _ in range(self.config.num_cores)
        ]
        self.l2 = SetAssociativeCache(self.config.l2)
        self.requests = 0

    # ------------------------------------------------------------------ #
    def access(self, access: MemoryAccess) -> List[MemoryAccess]:
        """Run one access through the hierarchy.

        Returns the list of requests that escape the L2 (zero, one, or two
        entries: a demand miss and/or a dirty writeback), preserving the PC
        and core of the originating access so the DRAM cache's footprint
        predictor sees the same correlation information it would in hardware.
        """
        if access.core_id >= self.config.num_cores:
            raise ValueError(
                f"core_id {access.core_id} out of range for "
                f"{self.config.num_cores}-core system"
            )
        self.requests += 1
        block = access.block_address
        outgoing: List[MemoryAccess] = []

        l1 = self.l1d[access.core_id]
        l1_result = l1.access(block, is_write=access.is_write)
        if l1_result.hit:
            return outgoing
        if l1_result.writeback_block is not None:
            # L1 dirty victim written into the L2 (allocate on writeback).
            l2_wb = self.l2.access(l1_result.writeback_block, is_write=True)
            if l2_wb.writeback_block is not None:
                outgoing.append(self._writeback(access, l2_wb.writeback_block))

        l2_result = self.l2.access(block, is_write=False)
        if not l2_result.hit:
            outgoing.append(access.block_aligned())
            if l2_result.writeback_block is not None:
                outgoing.append(self._writeback(access, l2_result.writeback_block))
        return outgoing

    @staticmethod
    def _writeback(origin: MemoryAccess, victim_block: int) -> MemoryAccess:
        from repro.trace.record import BLOCK_SIZE

        return MemoryAccess(
            address=victim_block * BLOCK_SIZE,
            pc=origin.pc,
            access_type=AccessType.WRITE,
            core_id=origin.core_id,
            timestamp=origin.timestamp,
        )

    # ------------------------------------------------------------------ #
    def filter_stream(self, accesses: Iterable[MemoryAccess]) -> Iterator[MemoryAccess]:
        """Lazily transform a raw access stream into the L2-miss stream."""
        for access in accesses:
            for escaped in self.access(access):
                yield escaped

    def stats(self) -> StatGroup:
        """Aggregated hierarchy statistics."""
        group = StatGroup("hierarchy")
        group.set("requests", self.requests)
        l1_hits = sum(c.hits for c in self.l1d)
        l1_misses = sum(c.misses for c in self.l1d)
        group.set("l1d.hits", l1_hits)
        group.set("l1d.misses", l1_misses)
        group.merge_child(self.l2.stats())
        return group
