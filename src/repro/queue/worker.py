"""Worker loop: lease jobs from a :class:`JobStore`, run them, stream results.

A worker is any process that calls :func:`work` on a shared job store --
the in-process drain of ``SweepService.run(workers=1)``, the forked
processes of ``workers=N``, or completely independent ``repro queue work``
commands started by hand on the same machine.  All coordination happens
through the SQLite file: there is no master process, so adding a worker is
just starting one and losing a worker costs only the job it was holding.

The loop is deliberately boring:

1. Reclaim orphaned leases (dead local PIDs immediately, expired leases
   otherwise), so a worker started after a ``kill -9`` makes the lost jobs
   runnable before its first lease attempt.
2. Lease one job, preferring the trace group of the previous job so a
   worker that paid to materialize one trace keeps replaying it.
3. Execute the pickled payload -- a whole trial via
   :func:`repro.sim.executor.run_trial` or a batch of sampled measurement
   windows via :func:`repro.sim.executor.run_trial_windows`.
4. Report ``complete`` (owner-guarded, so a stolen lease makes the late
   completion a harmless no-op) or ``fail`` (retries with backoff until the
   job's attempts are exhausted).  Whole-trial results also stream into the
   result archive immediately, making them durable before the sweep ends.
"""

from __future__ import annotations

import pickle
import time
import traceback
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.obs.core import emit_event, job_context
from repro.obs.heartbeat import worker_heartbeat
from repro.queue.jobstore import Job, JobStore, default_owner

PathLike = Union[str, Path]

#: How long an idle draining worker sleeps before re-polling the store.
DEFAULT_POLL_SECONDS = 0.2


def execute_job(payload: bytes) -> bytes:
    """Run one job payload; returns the pickled result blob.

    Payloads are self-contained ``{"kind": ..., "trial": ExperimentSpec,
    ...}`` pickles, so any process with the package importable can execute
    any job -- workers need no sweep-level context.
    """
    from repro.sim.executor import run_trial, run_trial_windows

    data = pickle.loads(payload)
    kind = data["kind"]
    if kind == "trial":
        result = run_trial(data["trial"])
    elif kind == "windows":
        result = run_trial_windows(data["trial"], data["indices"])
    else:
        raise ValueError(f"unknown job kind {kind!r}")
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def _archive_trial_result(archive_path: Optional[PathLike], job: Job,
                          result_blob: bytes) -> None:
    if archive_path is None or job.kind != "trial":
        return
    from repro.queue.archive import ResultArchive

    with ResultArchive(archive_path) as archive:
        archive.put(job.sweep, job.trial_index, pickle.loads(result_blob))


def work(db_path: PathLike,
         owner: Optional[str] = None,
         sweep: Optional[str] = None,
         lease_seconds: float = 300.0,
         max_jobs: Optional[int] = None,
         poll_seconds: float = DEFAULT_POLL_SECONDS,
         drain: bool = True,
         throttle: float = 0.0,
         archive_path: Optional[PathLike] = None,
         on_job: Optional[Callable[[Job], None]] = None) -> int:
    """Lease and run jobs until there is nothing left; returns jobs run.

    With ``drain`` (the default) the worker keeps polling while *other*
    workers still hold unfinished jobs -- those jobs may fail and need a
    retry -- and exits once every job of its scope is done or failed.
    Without it, the worker exits on the first empty lease.  ``throttle``
    sleeps after each job (test pacing); ``max_jobs`` bounds the loop.
    """
    owner = default_owner() if owner is None else owner
    executed = 0
    last_group: Optional[str] = None
    heartbeat = worker_heartbeat(owner, sweep=sweep)
    try:
        with JobStore(db_path) as store:
            store.recover(sweep=sweep)
            while max_jobs is None or executed < max_jobs:
                job = store.lease(owner, lease_seconds, sweep=sweep,
                                  prefer_group=last_group)
                if job is None:
                    if not drain or store.unfinished(sweep) == 0:
                        break
                    heartbeat.idle()
                    time.sleep(poll_seconds)
                    store.recover(sweep=sweep)
                    continue
                last_group = job.trace_group
                heartbeat.leased(job)
                ok = True
                # Runs the job opens (trial / window-batch telemetry) are
                # correlated to this sweep, job, and worker in the ledger.
                with job_context(sweep=job.sweep, job_seq=job.seq,
                                 worker=owner):
                    try:
                        result_blob = execute_job(job.payload)
                    except Exception:
                        ok = False
                        store.fail(job.sweep, job.seq,
                                   traceback.format_exc(limit=20), owner)
                    else:
                        if store.complete(job.sweep, job.seq, result_blob,
                                          owner):
                            _archive_trial_result(archive_path, job,
                                                  result_blob)
                        else:
                            # The lease expired mid-run and another worker
                            # reclaimed (and will redo) the job; our
                            # deterministic result is discarded.  Silent
                            # until now -- record it so stolen-lease no-ops
                            # are diagnosable.
                            emit_event("lease_theft", sweep=job.sweep,
                                       seq=job.seq, owner=owner,
                                       attempts=job.attempts)
                heartbeat.finished(ok)
                executed += 1
                if on_job is not None:
                    on_job(job)
                if throttle > 0:
                    time.sleep(throttle)
    finally:
        heartbeat.exited()
    return executed


__all__ = ["DEFAULT_POLL_SECONDS", "execute_job", "work"]
