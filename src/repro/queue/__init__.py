"""Durable work-queue sweep service.

Sweeps become idempotent jobs in a SQLite-backed :class:`JobStore`;
:class:`SweepService` plans, runs, resumes, and assembles them; worker
loops (:func:`work`) lease and execute jobs from any process; finished
sweeps persist in the :class:`ResultArchive`.  See ``README.md`` ("Durable
sweeps") and ``examples/queue_sweep_tour.py``.
"""

from repro.queue.archive import ARCHIVE_SCHEMA_VERSION, ResultArchive
from repro.queue.jobstore import (
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    FAILED,
    Job,
    JobStore,
    LEASED,
    PENDING,
    PlannedJob,
    SCHEMA_VERSION,
    STATES,
    default_owner,
)
from repro.queue.service import (
    DEFAULT_WINDOW_BATCH,
    ENV_QUEUE_DIR,
    SubmitOutcome,
    SweepPlan,
    SweepService,
    default_queue_dir,
    plan_sweep,
)
from repro.queue.worker import execute_job, work

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_WINDOW_BATCH",
    "DONE",
    "ENV_QUEUE_DIR",
    "FAILED",
    "Job",
    "JobStore",
    "LEASED",
    "PENDING",
    "PlannedJob",
    "ResultArchive",
    "SCHEMA_VERSION",
    "STATES",
    "SubmitOutcome",
    "SweepPlan",
    "SweepService",
    "default_owner",
    "default_queue_dir",
    "execute_job",
    "plan_sweep",
    "work",
]
