"""SQLite-backed durable job store for sweep execution.

A :class:`JobStore` is the on-disk heart of the work-queue architecture:
every sweep cell (and every sampled-window batch) becomes one
schema-versioned row that survives worker crashes, process kills, and
machine reboots.  The row's lifecycle is::

    pending --lease--> leased --complete--> done
       ^                  |
       |                  +--fail (attempts < max)--> pending (backoff)
       |                  +--fail (attempts = max)--> failed
       +--recover (lease expired / owner dead)-------+

Design points:

* **Idempotent submission.**  Jobs are keyed by the trial's full identity
  (:meth:`repro.sim.spec.ExperimentSpec.identity`: design spec token, trace
  identity, build parameters, model behavior version) so re-submitting a
  sweep inserts only rows that do not already exist -- a completed sweep
  re-submits as zero new jobs, and its archived results are reused as-is.
* **Crash-safe leasing.**  A worker *leases* a job for a bounded time;
  completing the job requires still holding the lease.  A worker that dies
  mid-job simply lets the lease expire (or is detected as a dead local
  process), after which :meth:`recover` returns the job to ``pending`` --
  so a ``kill -9`` costs only the jobs that were in flight.
* **Concurrency without a server.**  SQLite in WAL mode with immediate
  transactions gives atomic lease handoff between any number of worker
  processes sharing the database file; there is no coordinator process to
  run or crash.
* **Observability.**  Rows carry attempt counts, lease owners, and
  created/started/finished timestamps plus the measured run time, so
  ``repro queue status`` can report what ran where, how often, and for how
  long.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.core import emit_event

PathLike = Union[str, Path]

#: Bump on incompatible changes to the tables below.
SCHEMA_VERSION = 1

#: Job states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, LEASED, DONE, FAILED)

#: States in which a job will never run again.
TERMINAL_STATES = (DONE, FAILED)

#: Default number of times a job may be attempted before it is failed.
DEFAULT_MAX_ATTEMPTS = 3

#: Base delay before a failed job becomes leasable again; doubled per
#: attempt (1st retry after BACKOFF, 2nd after 2*BACKOFF, ...).
RETRY_BACKOFF_SECONDS = 1.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    token       TEXT PRIMARY KEY,
    description TEXT NOT NULL,
    spec        BLOB,
    total       INTEGER NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    sweep        TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    key          TEXT NOT NULL,
    trial_index  INTEGER NOT NULL,
    part         INTEGER NOT NULL,
    kind         TEXT NOT NULL,
    trace_group  TEXT NOT NULL,
    payload      BLOB NOT NULL,
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    lease_owner  TEXT,
    lease_expiry REAL NOT NULL DEFAULT 0,
    result       BLOB,
    error        TEXT,
    created_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    run_seconds  REAL,
    PRIMARY KEY (sweep, seq)
);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_by_key ON jobs (sweep, key);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, lease_expiry);
"""


def default_owner() -> str:
    """A lease-owner identity naming this host and process.

    The ``host:pid`` prefix lets :meth:`JobStore.recover` detect leases held
    by processes that no longer exist on the local machine (a SIGKILLed
    worker) without waiting for the lease to time out; the random suffix
    keeps two worker loops in one process distinguishable.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{os.urandom(3).hex()}"


def _owner_is_dead(owner: Optional[str]) -> bool:
    """True when ``owner`` names a local process that provably exited."""
    if not owner:
        return False
    parts = owner.split(":")
    if len(parts) < 2 or parts[0] != socket.gethostname():
        return False  # a different host: only lease expiry can decide
    try:
        pid = int(parts[1])
    except ValueError:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except (PermissionError, OSError):
        return False
    return False


@dataclass(frozen=True)
class Job:
    """One job row (a sweep cell or a sampled-window batch)."""

    sweep: str
    seq: int
    key: str
    #: Index of the trial in ``SweepSpec.trials()`` this job belongs to.
    trial_index: int
    #: Ordinal among the jobs of one trial (0 for whole-trial jobs).
    part: int
    #: ``"trial"`` (one full sweep cell) or ``"windows"`` (a batch of
    #: sampled measurement windows of one cell).
    kind: str
    #: Trace-affinity group: jobs sharing a group replay the same trace.
    trace_group: str
    payload: bytes
    state: str
    attempts: int
    max_attempts: int
    lease_owner: Optional[str]
    lease_expiry: float
    result: Optional[bytes]
    error: Optional[str]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    run_seconds: Optional[float]


@dataclass(frozen=True)
class PlannedJob:
    """A job as produced by the planner, before it has a row."""

    key: str
    trial_index: int
    part: int
    kind: str
    trace_group: str
    payload: bytes


def _job_from_row(row: sqlite3.Row) -> Job:
    return Job(**{name: row[name] for name in Job.__dataclass_fields__})


class JobStore:
    """Durable queue of sweep jobs in one SQLite file."""

    def __init__(self, path: PathLike, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly:
            # Query-only open for status readers (``repro serve``/``top``):
            # no write locks, no schema creation.  Read-only WAL opens can
            # raise OperationalError when the -shm file is missing; callers
            # fall back to a writable connection.
            if not self.path.is_file():
                raise FileNotFoundError(f"no job store at {self.path}")
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=30.0
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.isolation_level = None
            self._conn.execute("PRAGMA busy_timeout=30000")
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.isolation_level = None  # explicit transactions only
        self._conn.execute("PRAGMA busy_timeout=30000")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass  # e.g. a filesystem without WAL support; default journal
        self._init_schema()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        # executescript() commits any open transaction, so it runs outside
        # _txn(); the version check-and-set below is the transactional part.
        self._conn.executescript(_SCHEMA)
        with self._txn():
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise ValueError(
                    f"job store {self.path} has schema v{row['value']}, this "
                    f"build expects v{SCHEMA_VERSION}; use a fresh --db path"
                )

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """An IMMEDIATE transaction (write lock taken up front)."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, token: str, description: str, spec_blob: Optional[bytes],
               jobs: Sequence[PlannedJob],
               max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Insert a sweep and its jobs; returns the number of *new* jobs.

        Idempotent: rows that already exist (same sweep token and job key)
        are left untouched in whatever state they reached, so re-submitting
        a finished sweep inserts nothing and re-submitting an interrupted
        one only fills in rows a previous submit never created.
        """
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        now = time.time()
        new = 0
        with self._txn():
            self._conn.execute(
                "INSERT OR IGNORE INTO sweeps "
                "(token, description, spec, total, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (token, description, spec_blob, len(jobs), now),
            )
            for seq, job in enumerate(jobs):
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO jobs (sweep, seq, key, trial_index,"
                    " part, kind, trace_group, payload, state, attempts,"
                    " max_attempts, lease_expiry, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?, 0, ?)",
                    (token, seq, job.key, job.trial_index, job.part, job.kind,
                     job.trace_group, job.payload, PENDING, max_attempts, now),
                )
                new += cursor.rowcount
        return new

    def sweep_row(self, token: str) -> Optional[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM sweeps WHERE token = ?", (token,)
        ).fetchone()

    def sweeps(self) -> List[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM sweeps ORDER BY created_at"
        ).fetchall()

    # ------------------------------------------------------------------ #
    # Leasing
    # ------------------------------------------------------------------ #
    def lease(self, owner: str, lease_seconds: float,
              sweep: Optional[str] = None,
              prefer_group: Optional[str] = None,
              now: Optional[float] = None) -> Optional[Job]:
        """Atomically claim one runnable job, or ``None`` when there is none.

        Runnable means ``pending`` past its backoff time, or ``leased`` with
        an expired lease (the previous owner is presumed dead), with attempts
        remaining.  ``prefer_group`` implements trace-affine placement: a
        worker that just replayed one trace asks for more jobs on the same
        trace before touching a new one.
        """
        now = time.time() if now is None else now
        eligible = (
            "((state = ? AND lease_expiry <= ?) OR"
            " (state = ? AND lease_expiry <= ?)) AND attempts < max_attempts"
        )
        params: List[object] = [PENDING, now, LEASED, now]
        if sweep is not None:
            eligible += " AND sweep = ?"
            params.append(sweep)
        with self._txn():
            row = None
            if prefer_group is not None:
                row = self._conn.execute(
                    f"SELECT * FROM jobs WHERE {eligible} AND trace_group = ?"
                    " ORDER BY sweep, seq LIMIT 1",
                    params + [prefer_group],
                ).fetchone()
            if row is None:
                row = self._conn.execute(
                    f"SELECT * FROM jobs WHERE {eligible}"
                    " ORDER BY sweep, seq LIMIT 1",
                    params,
                ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = attempts + 1,"
                " lease_owner = ?, lease_expiry = ?, started_at = ?,"
                " error = NULL WHERE sweep = ? AND seq = ?",
                (LEASED, owner, now + lease_seconds, now,
                 row["sweep"], row["seq"]),
            )
            fresh = self._conn.execute(
                "SELECT * FROM jobs WHERE sweep = ? AND seq = ?",
                (row["sweep"], row["seq"]),
            ).fetchone()
        return _job_from_row(fresh)

    def complete(self, sweep: str, seq: int, result: bytes, owner: str,
                 now: Optional[float] = None) -> bool:
        """Mark a leased job done; returns False if the lease was lost.

        The owner guard makes completion idempotent under lease theft: when
        a slow worker finishes a job whose expired lease another worker
        already reclaimed, the late completion is a no-op (both computed the
        same deterministic result anyway).
        """
        now = time.time() if now is None else now
        with self._txn():
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = NULL,"
                " finished_at = ?, run_seconds = ? - started_at,"
                " lease_owner = NULL, lease_expiry = 0"
                " WHERE sweep = ? AND seq = ? AND state = ?"
                " AND lease_owner = ?",
                (DONE, result, now, now, sweep, seq, LEASED, owner),
            )
            return cursor.rowcount == 1

    def fail(self, sweep: str, seq: int, error: str, owner: str,
             now: Optional[float] = None) -> bool:
        """Record a failed attempt; retries with backoff until exhausted."""
        now = time.time() if now is None else now
        event = None
        with self._txn():
            row = self._conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE sweep = ? AND seq = ? AND state = ?"
                " AND lease_owner = ?",
                (sweep, seq, LEASED, owner),
            ).fetchone()
            if row is None:
                return False
            if row["attempts"] >= row["max_attempts"]:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, finished_at = ?,"
                    " lease_owner = NULL, lease_expiry = 0"
                    " WHERE sweep = ? AND seq = ?",
                    (FAILED, error, now, sweep, seq),
                )
                event = ("job_failed", {"seq": seq, "owner": owner,
                                        "attempts": row["attempts"],
                                        "error": error})
            else:
                backoff = RETRY_BACKOFF_SECONDS * (2 ** (row["attempts"] - 1))
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, lease_owner = NULL,"
                    " lease_expiry = ? WHERE sweep = ? AND seq = ?",
                    (PENDING, error, now + backoff, sweep, seq),
                )
                event = ("job_backoff", {"seq": seq, "owner": owner,
                                         "attempts": row["attempts"],
                                         "backoff_seconds": backoff,
                                         "error": error})
        # Event emission (log + ledger) happens outside the transaction so
        # the job store's write lock is never held across a ledger write.
        if event is not None:
            emit_event(event[0], sweep=sweep, **event[1])
        return True

    def recover(self, sweep: Optional[str] = None,
                now: Optional[float] = None,
                reclaim_dead: bool = True) -> int:
        """Return crashed workers' jobs to the queue; returns the count.

        Two signals mark a leased job as orphaned: an expired lease (works
        across hosts, costs the lease timeout) and -- with ``reclaim_dead``
        -- a lease owner that names a local process which no longer exists
        (immediate, the ``kill -9`` recovery path).  Jobs with attempts left
        go back to ``pending``; exhausted ones are failed.
        """
        now = time.time() if now is None else now
        where = "state = ?"
        params: List[object] = [LEASED]
        if sweep is not None:
            where += " AND sweep = ?"
            params.append(sweep)
        reclaimed = 0
        events = []
        with self._txn():
            rows = self._conn.execute(
                f"SELECT sweep, seq, attempts, max_attempts, lease_owner,"
                f" lease_expiry FROM jobs WHERE {where}", params,
            ).fetchall()
            for row in rows:
                expired = row["lease_expiry"] <= now
                dead = reclaim_dead and _owner_is_dead(row["lease_owner"])
                if not (expired or dead):
                    continue
                if row["attempts"] >= row["max_attempts"]:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, error = ?,"
                        " finished_at = ?, lease_owner = NULL,"
                        " lease_expiry = 0 WHERE sweep = ? AND seq = ?",
                        (FAILED,
                         f"lease lost after {row['attempts']} attempts",
                         now, row["sweep"], row["seq"]),
                    )
                else:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, lease_owner = NULL,"
                        " lease_expiry = 0 WHERE sweep = ? AND seq = ?",
                        (PENDING, row["sweep"], row["seq"]),
                    )
                events.append((row["sweep"], {
                    "seq": row["seq"], "owner": row["lease_owner"],
                    "attempts": row["attempts"],
                    "reason": "dead_owner" if dead else "expired",
                }))
                reclaimed += 1
        for sweep_token, detail in events:
            emit_event("lease_reclaimed", sweep=sweep_token, **detail)
        return reclaimed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counts(self, sweep: Optional[str] = None) -> Dict[str, int]:
        """Jobs per state (every state present, zero-filled)."""
        where, params = ("WHERE sweep = ?", (sweep,)) if sweep else ("", ())
        rows = self._conn.execute(
            f"SELECT state, COUNT(*) AS n FROM jobs {where} GROUP BY state",
            params,
        ).fetchall()
        counts = {state: 0 for state in STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def unfinished(self, sweep: Optional[str] = None) -> int:
        """Jobs that are neither done nor failed."""
        counts = self.counts(sweep)
        return counts[PENDING] + counts[LEASED]

    def jobs(self, sweep: str) -> List[Job]:
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE sweep = ? ORDER BY seq", (sweep,)
        ).fetchall()
        return [_job_from_row(row) for row in rows]

    def job(self, sweep: str, seq: int) -> Optional[Job]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE sweep = ? AND seq = ?", (sweep, seq)
        ).fetchone()
        return None if row is None else _job_from_row(row)

    def done_jobs(self, sweep: str) -> List[Job]:
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE sweep = ? AND state = ? ORDER BY seq",
            (sweep, DONE),
        ).fetchall()
        return [_job_from_row(row) for row in rows]

    def failed_jobs(self, sweep: str) -> List[Job]:
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE sweep = ? AND state = ? ORDER BY seq",
            (sweep, FAILED),
        ).fetchall()
        return [_job_from_row(row) for row in rows]

    def timing(self, sweep: str) -> Dict[str, float]:
        """Aggregate observability numbers for one sweep's finished jobs."""
        row = self._conn.execute(
            "SELECT COUNT(run_seconds) AS n, SUM(run_seconds) AS total,"
            " AVG(run_seconds) AS mean, MAX(run_seconds) AS longest,"
            " SUM(attempts) AS attempts FROM jobs"
            " WHERE sweep = ? AND run_seconds IS NOT NULL",
            (sweep,),
        ).fetchone()
        return {
            "jobs_timed": row["n"] or 0,
            "total_seconds": row["total"] or 0.0,
            "mean_seconds": row["mean"] or 0.0,
            "longest_seconds": row["longest"] or 0.0,
            "attempts": row["attempts"] or 0,
        }


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "DONE",
    "FAILED",
    "Job",
    "JobStore",
    "LEASED",
    "PENDING",
    "PlannedJob",
    "RETRY_BACKOFF_SECONDS",
    "SCHEMA_VERSION",
    "STATES",
    "TERMINAL_STATES",
    "default_owner",
]
