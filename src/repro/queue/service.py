"""SweepService: plan, run, resume, and archive durable sweeps.

The service is the glue between the declarative layer
(:class:`~repro.sim.spec.SweepSpec`), the durable queue
(:class:`~repro.queue.jobstore.JobStore`), the worker loops
(:mod:`repro.queue.worker`), and the persistent
:class:`~repro.queue.archive.ResultArchive`:

1. **Plan.**  Every trial becomes one idempotent job -- or, for sampled
   trials, one job per batch of measurement windows, so a single expensive
   cell parallelizes across workers.  Jobs are keyed by the trial's full
   identity (:meth:`~repro.sim.spec.ExperimentSpec.identity`) and grouped by
   trace for affinity scheduling (the :func:`group_trials_by_trace` logic
   the in-memory executor already uses).
2. **Run.**  Workers -- in-process, forked, or entirely separate ``repro
   queue work`` processes on the same store -- lease jobs, execute them, and
   stream results back.  A worker killed mid-job costs only that job's
   lease.
3. **Assemble.**  Finished rows reassemble in exact grid order into a
   :class:`~repro.sim.resultset.ResultSet` that is bit-identical to the
   serial ``SweepExecutor(workers=1)`` run -- sampled trials replay the
   adaptive stopper over their window batches and discard speculative
   windows past the termination point.
4. **Archive.**  Every assembled sweep (and every trial as it finishes) is
   written to the schema-versioned result archive, so re-running a sweep
   whose token is already archived costs zero simulation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.obs.core import start_run
from repro.queue.archive import ResultArchive
from repro.queue.jobstore import (
    DEFAULT_MAX_ATTEMPTS,
    FAILED,
    JobStore,
    PlannedJob,
)
from repro.sim.executor import (
    assemble_sampled_trial,
    group_trials_by_trace,
    sampled_window_plan,
)
from repro.sim.resultset import ResultSet
from repro.sim.spec import ExperimentSpec, SweepSpec

PathLike = Union[str, Path]

#: Environment variable overriding the queue directory (job store +
#: result archive live side by side in it).
ENV_QUEUE_DIR = "REPRO_QUEUE_DIR"

#: Windows measured per window-batch job.  Small enough that a sampled
#: trial spreads over several workers, large enough that per-job overhead
#: (lease round-trip, checkpoint restore) stays amortized.
DEFAULT_WINDOW_BATCH = 4

JOB_STORE_FILENAME = "jobs.sqlite"
ARCHIVE_FILENAME = "archive.sqlite"


def default_queue_dir() -> Optional[Path]:
    """The queue directory: ``REPRO_QUEUE_DIR``, else next to the traces.

    Placing it inside the trace store root means the same
    ``REPRO_TRACE_STORE`` switch that isolates or relocates trace caching
    (tests point it at a temp directory) governs the queue too; ``None``
    when the trace store is disabled and no explicit directory is set.
    """
    value = os.environ.get(ENV_QUEUE_DIR, "").strip()
    if value:
        return Path(value)
    from repro.trace.store import configured_root

    root = configured_root()
    return None if root is None else root / "queue"


def _require_queue_dir(queue_dir: Optional[PathLike]) -> Path:
    path = Path(queue_dir) if queue_dir is not None else default_queue_dir()
    if path is None:
        raise ValueError(
            "no queue directory: the trace store is disabled "
            "(REPRO_TRACE_STORE) and neither REPRO_QUEUE_DIR nor an "
            "explicit path was given"
        )
    return path


def _chunk(values: Sequence[int], size: int) -> List[List[int]]:
    return [list(values[start:start + size])
            for start in range(0, len(values), size)]


def _trace_groups(trials: Sequence[ExperimentSpec]) -> Dict[int, str]:
    """Per-trial trace-affinity label: jobs in one group replay one trace.

    Built on the executor's :func:`group_trials_by_trace` partition (the
    same one that drives trace-affine batch scheduling in the in-memory
    pool), with a durable label per group: the hashed generator-versioned
    trace token, so labels stay stable across processes and sessions.
    """
    from repro.sampling.checkpoints import trace_token

    labels: Dict[int, str] = {}
    for group in group_trials_by_trace(trials):
        token = trace_token(trials[group[0]].workload,
                            trials[group[0]].config)
        label = hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]
        for index in group:
            labels[index] = label
    return labels


def _job_key(trial: ExperimentSpec, kind: str,
             indices: Optional[Sequence[int]] = None) -> str:
    payload = trial.identity() + f"|kind={kind}"
    if indices is not None:
        payload += f"|windows={tuple(indices)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepPlan:
    """A sweep compiled into durable jobs."""

    token: str
    spec: SweepSpec
    jobs: "List[PlannedJob]"

    @property
    def total_jobs(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class SubmitOutcome:
    """What :meth:`SweepService.submit` did."""

    token: str
    new_jobs: int
    total_jobs: int
    total_trials: int

    @property
    def reused_jobs(self) -> int:
        return self.total_jobs - self.new_jobs


def plan_sweep(spec: SweepSpec,
               window_batch: int = DEFAULT_WINDOW_BATCH) -> SweepPlan:
    """Compile a sweep into its job list and deterministic token.

    Full-replay trials become one job each.  Sampled trials whose window
    plan is computable up front split into one job per ``window_batch``
    consecutive windows of the measurement order (so an early-terminating
    assembly consumes the first jobs and discards the speculative tail);
    sampled trials that cannot be pre-planned fall back to one whole-trial
    job.  The sweep token hashes the ordered job keys, so the same spec
    always resubmits to the same sweep -- and any change to a design, trace,
    or parameter yields a new token instead of colliding with stale rows.
    """
    if window_batch < 0:
        raise ValueError("window_batch must be non-negative")
    jobs: List[PlannedJob] = []
    trials = spec.trials()
    groups = _trace_groups(trials)
    for trial_index, trial in enumerate(trials):
        group = groups[trial_index]
        plan = sampled_window_plan(trial) if window_batch else None
        if plan is not None:
            for part, indices in enumerate(_chunk(plan.order, window_batch)):
                payload = pickle.dumps(
                    {"kind": "windows", "trial": trial, "indices": indices},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                jobs.append(PlannedJob(
                    key=_job_key(trial, "windows", indices),
                    trial_index=trial_index, part=part, kind="windows",
                    trace_group=group, payload=payload,
                ))
        else:
            payload = pickle.dumps(
                {"kind": "trial", "trial": trial},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            jobs.append(PlannedJob(
                key=_job_key(trial, "trial"),
                trial_index=trial_index, part=0, kind="trial",
                trace_group=group, payload=payload,
            ))
    token = hashlib.sha256(
        "|".join(job.key for job in jobs).encode("utf-8")
    ).hexdigest()[:32]
    return SweepPlan(token=token, spec=spec, jobs=jobs)


class SweepService:
    """Durable sweep execution over a shared job store and archive."""

    def __init__(self, queue_dir: Optional[PathLike] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 lease_seconds: float = 300.0,
                 window_batch: int = DEFAULT_WINDOW_BATCH) -> None:
        self.queue_dir = _require_queue_dir(queue_dir)
        self.db_path = self.queue_dir / JOB_STORE_FILENAME
        self.archive_path = self.queue_dir / ARCHIVE_FILENAME
        self.max_attempts = max_attempts
        self.lease_seconds = lease_seconds
        self.window_batch = window_batch

    def store(self) -> JobStore:
        return JobStore(self.db_path)

    def archive(self) -> ResultArchive:
        return ResultArchive(self.archive_path)

    # ------------------------------------------------------------------ #
    def submit(self, spec: SweepSpec) -> SubmitOutcome:
        """Plan a sweep into the job store (idempotent); returns what's new."""
        plan = plan_sweep(spec, window_batch=self.window_batch)
        spec_blob = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        with self.store() as store:
            new = store.submit(plan.token, spec.describe(), spec_blob,
                               plan.jobs, max_attempts=self.max_attempts)
        with self.archive() as archive:
            archive.register(plan.token, spec.describe(), len(spec.trials()))
        return SubmitOutcome(token=plan.token, new_jobs=new,
                             total_jobs=plan.total_jobs,
                             total_trials=len(spec.trials()))

    def load_spec(self, token: str) -> SweepSpec:
        """The SweepSpec a token was submitted with (stored pickled)."""
        with self.store() as store:
            row = store.sweep_row(token)
        if row is None:
            raise KeyError(f"unknown sweep token {token!r}")
        if row["spec"] is None:
            raise ValueError(f"sweep {token} was submitted without its spec")
        return pickle.loads(row["spec"])

    def status(self, token: str) -> Dict[str, int]:
        with self.store() as store:
            return store.counts(token)

    # ------------------------------------------------------------------ #
    def assemble(self, spec: SweepSpec,
                 token: Optional[str] = None) -> ResultSet:
        """Reassemble a finished sweep's jobs in exact grid order.

        Raises ``RuntimeError`` while jobs are outstanding or failed.  Trial
        results and aggregated sampled results are streamed into the archive
        as a side effect, and the archived copy is authoritative: a token
        whose archive row set is already complete assembles straight from
        the archive without touching job payloads.
        """
        plan = plan_sweep(spec, window_batch=self.window_batch)
        if token is not None and token != plan.token:
            raise ValueError(
                f"token {token} does not match the spec's plan ({plan.token})"
            )
        with self.archive() as archive:
            archived = archive.get(plan.token)
        if archived is not None:
            return archived

        trials = spec.trials()
        with self.store() as store:
            counts = store.counts(plan.token)
            if counts[FAILED]:
                failures = store.failed_jobs(plan.token)
                detail = "; ".join(
                    f"job {job.seq} (trial {job.trial_index}): {job.error}"
                    for job in failures[:3]
                )
                raise RuntimeError(
                    f"sweep {plan.token} has {counts[FAILED]} permanently "
                    f"failed jobs: {detail}"
                )
            done = store.done_jobs(plan.token)
            if len(done) != plan.total_jobs:
                raise RuntimeError(
                    f"sweep {plan.token} is incomplete: {len(done)} of "
                    f"{plan.total_jobs} jobs done"
                )

        by_trial: Dict[int, List] = {}
        for job in done:
            by_trial.setdefault(job.trial_index, []).append(job)
        results = []
        with start_run("assemble", sweep=plan.token,
                       trials=len(trials)) as obs_run, \
                self.archive() as archive:
            for trial_index, trial in enumerate(trials):
                jobs = by_trial.get(trial_index, [])
                if not jobs:
                    raise RuntimeError(
                        f"trial {trial_index} has no finished jobs"
                    )
                if jobs[0].kind == "trial":
                    with obs_run.span("assemble"):
                        result = pickle.loads(jobs[0].result)
                else:
                    measurements: Dict[int, object] = {}
                    for job in jobs:
                        measurements.update(pickle.loads(job.result))
                    # assemble_sampled_trial attributes its stopper replay
                    # to this run's "assemble" phase via obs.current().
                    result = assemble_sampled_trial(trial, measurements)
                archive.put(plan.token, trial_index, result)
                results.append(result)
            archive.mark_complete(plan.token)
        return ResultSet(results)

    # ------------------------------------------------------------------ #
    def run(self, spec: Optional[SweepSpec] = None,
            token: Optional[str] = None,
            workers: Optional[int] = 1,
            progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
            ) -> ResultSet:
        """Submit (idempotently), execute to completion, and assemble.

        This is also the *resume* path: re-running the same spec -- or a
        bare token recorded earlier -- picks up whatever the job store
        already holds, reclaims leases of dead workers, executes only the
        jobs that are not done, and reassembles.  A fully archived sweep
        runs zero jobs.
        """
        if spec is None:
            if token is None:
                raise ValueError("run needs a spec or a token")
            spec = self.load_spec(token)
        outcome = self.submit(spec)

        with self.archive() as archive:
            archived = archive.get(outcome.token)
        if archived is not None:
            self._fire_progress_all(spec, progress)
            return archived

        with self.store() as store:
            store.recover(sweep=outcome.token)
            unfinished = store.unfinished(outcome.token)
        if unfinished:
            self._execute(outcome.token, spec, workers, progress)
        else:
            self._fire_progress_all(spec, progress)
        return self.assemble(spec, token=outcome.token)

    # Resume by token alone (the CLI's ``repro queue resume TOKEN``).
    def resume(self, token: str, workers: Optional[int] = 1,
               progress: Optional[Callable[[int, int, ExperimentSpec], None]] = None,
               ) -> ResultSet:
        return self.run(spec=None, token=token, workers=workers,
                        progress=progress)

    # ------------------------------------------------------------------ #
    def _fire_progress_all(self, spec: SweepSpec, progress) -> None:
        if progress is None:
            return
        trials = spec.trials()
        for index, trial in enumerate(trials):
            progress(index, len(trials), trial)

    def _execute(self, token: str, spec: SweepSpec,
                 workers: Optional[int], progress) -> None:
        from repro.queue.worker import work

        if workers is None:
            workers = os.cpu_count() or 1
        trials = spec.trials()
        reporter = _TrialProgress(spec, progress)
        if workers <= 1:
            work(self.db_path, sweep=token,
                 lease_seconds=self.lease_seconds,
                 archive_path=self.archive_path,
                 on_job=lambda job: reporter.poll(self))
            reporter.poll(self)
            return

        import multiprocessing

        processes = [
            multiprocessing.Process(
                target=work,
                args=(self.db_path,),
                kwargs={
                    "sweep": token,
                    "lease_seconds": self.lease_seconds,
                    "archive_path": self.archive_path,
                },
                daemon=True,
            )
            for _ in range(min(workers, max(1, len(trials))))
        ]
        for process in processes:
            process.start()
        try:
            while any(process.is_alive() for process in processes):
                reporter.poll(self)
                time.sleep(0.1)
        finally:
            for process in processes:
                process.join(timeout=30.0)
                if process.is_alive():
                    process.terminate()
        reporter.poll(self)

    def prune(self, token: str) -> int:
        """Drop a sweep's job rows (the archive keeps its results)."""
        with self.store() as store:
            with store._txn() as conn:
                cursor = conn.execute(
                    "DELETE FROM jobs WHERE sweep = ?", (token,)
                )
                conn.execute("DELETE FROM sweeps WHERE token = ?", (token,))
            return cursor.rowcount

    def prune_retention(self, keep_days: float = 7.0,
                        keep_archived: int = 0,
                        now: Optional[float] = None) -> Dict[str, object]:
        """Retention prune: drop job rows of old, fully archived sweeps.

        A sweep's job rows are transient scaffolding once its results are
        archived; this removes exactly that scaffolding and nothing else:

        * only sweeps whose archive row set is **complete** are eligible --
          an unfinished sweep's jobs are its resume state and are never
          touched;
        * ``keep_days`` retains sweeps submitted within the window (0 means
          "age does not protect anything");
        * ``keep_archived`` additionally retains the N most recently
          submitted archived sweeps regardless of age.

        The result archive itself is never modified.  Returns a summary
        dict: pruned tokens, job rows deleted, and what was kept and why.
        """
        if keep_days < 0:
            raise ValueError("keep_days must be non-negative")
        if keep_archived < 0:
            raise ValueError("keep_archived must be non-negative")
        now = time.time() if now is None else now
        cutoff = now - keep_days * 86400.0
        with self.archive() as archive:
            complete = {meta["token"] for meta in archive.list_sweeps()
                        if meta["complete"]}
        with self.store() as store:
            rows = store.sweeps()
        archived_rows = [row for row in rows if row["token"] in complete]
        recent_protected = {
            row["token"]
            for row in sorted(archived_rows, key=lambda r: r["created_at"],
                              reverse=True)[:keep_archived]
        }
        pruned: List[str] = []
        jobs_deleted = 0
        kept_recent = kept_young = 0
        skipped_unarchived = 0
        for row in rows:
            token = row["token"]
            if token not in complete:
                skipped_unarchived += 1
                continue
            if token in recent_protected:
                kept_recent += 1
                continue
            if row["created_at"] > cutoff:
                kept_young += 1
                continue
            jobs_deleted += self.prune(token)
            pruned.append(token)
        return {
            "pruned": pruned,
            "jobs_deleted": jobs_deleted,
            "kept_recent": kept_recent,
            "kept_young": kept_young,
            "skipped_unarchived": skipped_unarchived,
        }


class _TrialProgress:
    """Fires the per-trial progress callback as trials finish."""

    def __init__(self, spec: SweepSpec, progress) -> None:
        self.trials = spec.trials()
        self.progress = progress
        self.plan = plan_sweep(spec)
        self.parts: Dict[int, int] = {}
        for job in self.plan.jobs:
            self.parts[job.trial_index] = self.parts.get(job.trial_index,
                                                         0) + 1
        self.reported: set = set()

    def poll(self, service: SweepService) -> None:
        if self.progress is None:
            return
        with service.store() as store:
            done = store.done_jobs(self.plan.token)
        finished: Dict[int, int] = {}
        for job in done:
            finished[job.trial_index] = finished.get(job.trial_index, 0) + 1
        for index in sorted(finished):
            if index in self.reported:
                continue
            if finished[index] == self.parts.get(index):
                self.reported.add(index)
                self.progress(index, len(self.trials), self.trials[index])


__all__ = [
    "ARCHIVE_FILENAME",
    "DEFAULT_WINDOW_BATCH",
    "ENV_QUEUE_DIR",
    "JOB_STORE_FILENAME",
    "SubmitOutcome",
    "SweepPlan",
    "SweepService",
    "default_queue_dir",
    "plan_sweep",
]
