"""Persistent, schema-versioned archive of sweep results.

Every finished trial streams its :class:`~repro.sim.experiment.ExperimentResult`
into this SQLite archive as workers complete jobs, so a sweep's results are
durable *while it runs*, not only after a final export -- and every archived
sweep can be re-read as a bit-identical
:class:`~repro.sim.resultset.ResultSet` without re-simulating anything
(floats round-trip exactly through the JSON records, the same guarantee
``ResultSet.to_json`` makes).

The archive lives next to the job store (``<trace store>/queue/`` by
default), keyed by the sweep's spec token, which makes it the durable
complement of the :class:`~repro.queue.jobstore.JobStore`: the job store can
be pruned once a sweep is archived, and a re-submitted sweep whose token is
already archived costs zero simulation.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.experiment import ExperimentResult
from repro.sim.resultset import ResultSet

PathLike = Union[str, Path]

#: Bump on incompatible changes to the archive tables.
ARCHIVE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    token        TEXT PRIMARY KEY,
    description  TEXT NOT NULL,
    total        INTEGER NOT NULL,
    created_at   REAL NOT NULL,
    completed_at REAL
);
CREATE TABLE IF NOT EXISTS results (
    sweep       TEXT NOT NULL,
    trial_index INTEGER NOT NULL,
    record      TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (sweep, trial_index)
);
"""


class ResultArchive:
    """Archived :class:`ResultSet` rows keyed by sweep token."""

    def __init__(self, path: PathLike, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly:
            # A read-only connection never takes write locks, so readers
            # (e.g. ``repro serve``) cannot stall concurrent workers.  WAL
            # databases whose -shm file is missing refuse read-only opens
            # with SQLITE_CANTOPEN; callers should catch OperationalError
            # and fall back to a writable connection.
            if not self.path.is_file():
                raise FileNotFoundError(f"no result archive at {self.path}")
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=30.0
            )
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA busy_timeout=30000")
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and int(row["value"]) != ARCHIVE_SCHEMA_VERSION:
                raise ValueError(
                    f"result archive {self.path} has schema v{row['value']}, "
                    f"this build expects v{ARCHIVE_SCHEMA_VERSION}"
                )
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA busy_timeout=30000")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(ARCHIVE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != ARCHIVE_SCHEMA_VERSION:
                raise ValueError(
                    f"result archive {self.path} has schema v{row['value']}, "
                    f"this build expects v{ARCHIVE_SCHEMA_VERSION}"
                )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def register(self, token: str, description: str, total: int) -> None:
        """Record a sweep's shape (idempotent)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO sweeps"
                " (token, description, total, created_at) VALUES (?, ?, ?, ?)",
                (token, description, total, time.time()),
            )

    def put(self, token: str, trial_index: int,
            result: ExperimentResult) -> None:
        """Stream one trial's result into the archive (idempotent).

        Deterministic execution means a replaced row always holds the same
        record, so REPLACE semantics are safe under concurrent workers.
        """
        record = json.dumps(asdict(result), sort_keys=True)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (sweep, trial_index, record, created_at) VALUES (?, ?, ?, ?)",
                (token, trial_index, record, time.time()),
            )

    def mark_complete(self, token: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE sweeps SET completed_at = ? WHERE token = ?"
                " AND completed_at IS NULL",
                (time.time(), token),
            )

    # ------------------------------------------------------------------ #
    def count(self, token: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM results WHERE sweep = ?", (token,)
        ).fetchone()
        return row["n"]

    def total(self, token: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT total FROM sweeps WHERE token = ?", (token,)
        ).fetchone()
        return None if row is None else row["total"]

    def get(self, token: str) -> Optional[ResultSet]:
        """The archived ResultSet, or ``None`` unless every trial is present.

        Rows are returned in trial order, so the assembled set is
        bit-identical to the one a serial in-memory sweep produces.
        """
        total = self.total(token)
        rows = self._conn.execute(
            "SELECT record FROM results WHERE sweep = ? ORDER BY trial_index",
            (token,),
        ).fetchall()
        if total is None or len(rows) != total:
            return None
        return ResultSet.from_records(
            json.loads(row["record"]) for row in rows
        )

    def records(self, token: str) -> List[dict]:
        """All archived result records of ``token``, in trial order.

        Unlike :meth:`get` this does not require the sweep to be complete,
        so live readers (the dashboard, ``repro serve``) can render partial
        sweeps while workers are still draining the queue.
        """
        rows = self._conn.execute(
            "SELECT record FROM results WHERE sweep = ? ORDER BY trial_index",
            (token,),
        ).fetchall()
        return [json.loads(row["record"]) for row in rows]

    def tokens(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT token FROM sweeps ORDER BY created_at"
        ).fetchall()
        return [row["token"] for row in rows]

    def sweeps(self) -> List[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM sweeps ORDER BY created_at"
        ).fetchall()

    def list_sweeps(self) -> List[Dict[str, object]]:
        """One metadata dict per archived sweep, oldest first.

        Each dict carries ``token``, ``description`` (the spec label),
        ``total`` (planned trials), ``records`` (archived so far),
        ``created_at``, ``completed_at`` (``None`` while incomplete), and
        ``complete``.  This replaces callers poking at the sweeps table or
        globbing the archive directory.
        """
        rows = self._conn.execute(
            "SELECT s.token, s.description, s.total, s.created_at,"
            "       s.completed_at,"
            "       (SELECT COUNT(*) FROM results r WHERE r.sweep = s.token)"
            "       AS records"
            " FROM sweeps s ORDER BY s.created_at, s.token"
        ).fetchall()
        return [self._sweep_dict(row) for row in rows]

    def sweep_meta(self, token: str) -> Optional[Dict[str, object]]:
        """Metadata dict of one sweep (see :meth:`list_sweeps`), or ``None``."""
        row = self._conn.execute(
            "SELECT s.token, s.description, s.total, s.created_at,"
            "       s.completed_at,"
            "       (SELECT COUNT(*) FROM results r WHERE r.sweep = s.token)"
            "       AS records"
            " FROM sweeps s WHERE s.token = ?",
            (token,),
        ).fetchone()
        return None if row is None else self._sweep_dict(row)

    @staticmethod
    def _sweep_dict(row: sqlite3.Row) -> Dict[str, object]:
        return {
            "token": row["token"],
            "description": row["description"],
            "total": row["total"],
            "records": row["records"],
            "created_at": row["created_at"],
            "completed_at": row["completed_at"],
            "complete": row["records"] >= row["total"] and row["total"] > 0,
        }


__all__ = ["ARCHIVE_SCHEMA_VERSION", "ResultArchive"]
