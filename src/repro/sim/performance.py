"""Analytic performance model.

The paper measures performance as user instructions per total cycles (a
throughput proxy for server workloads) from cycle-level sampled simulation.
This reproduction replaces that with a first-order analytic model -- the same
model the paper's own reasoning uses when it attributes performance
differences to DRAM-cache hit ratio and hit/miss latency:

``cycles per instruction = 1/base_ipc + (L2 MPKI / 1000) * (L_request / MLP)``

where ``L_request`` is the average DRAM-cache request latency measured by the
cache models (hit and miss paths weighted by the measured hit ratio) plus the
constant interconnect + L2 components, and MLP is the memory-level parallelism
the out-of-order cores can sustain.  Speedups are reported relative to a
system with no DRAM cache (all requests go off-chip), so the ideal cache lands
where the paper's "Ideal" bars do: at the speedup of making every L2 miss a
stacked-DRAM hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.system import SystemConfig
from repro.dramcache.stats import DramCacheStats
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class PerformanceEstimate:
    """Result of the analytic model for one design/workload pair."""

    cycles_per_instruction: float
    user_ipc: float
    average_request_latency: float
    memory_cpi_component: float

    @property
    def memory_boundedness(self) -> float:
        """Fraction of execution time spent waiting on DRAM-cache requests."""
        if self.cycles_per_instruction == 0:
            return 0.0
        return self.memory_cpi_component / self.cycles_per_instruction


class PerformanceModel:
    """Converts measured cache behaviour into throughput estimates."""

    def __init__(self, config: Optional[SystemConfig] = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()

    # ------------------------------------------------------------------ #
    def request_overhead_cycles(self) -> int:
        """Constant per-request cycles outside the DRAM cache (crossbar + L2)."""
        return (self.config.interconnect_latency_cycles
                + self.config.l2.hit_latency_cycles)

    def estimate(self, stats: DramCacheStats,
                 profile: WorkloadProfile) -> PerformanceEstimate:
        """Performance estimate for a design's measured statistics."""
        core = self.config.core
        request_latency = stats.average_access_latency + self.request_overhead_cycles()
        accesses_per_instruction = profile.l2_mpki / 1000.0
        memory_cpi = accesses_per_instruction * request_latency / max(1.0, core.mlp)
        base_cpi = 1.0 / core.base_ipc
        cpi = base_cpi + memory_cpi
        return PerformanceEstimate(
            cycles_per_instruction=cpi,
            user_ipc=1.0 / cpi,
            average_request_latency=request_latency,
            memory_cpi_component=memory_cpi,
        )

    def speedup(self, stats: DramCacheStats, baseline_stats: DramCacheStats,
                profile: WorkloadProfile) -> float:
        """Speedup of ``stats`` over ``baseline_stats`` for the same workload."""
        design = self.estimate(stats, profile)
        baseline = self.estimate(baseline_stats, profile)
        if design.cycles_per_instruction == 0:
            return 0.0
        return baseline.cycles_per_instruction / design.cycles_per_instruction

    # ------------------------------------------------------------------ #
    def offchip_baseline_stats(self, num_accesses: int = 1000,
                               average_offchip_latency: Optional[float] = None) -> DramCacheStats:
        """Synthesize the no-DRAM-cache baseline analytically.

        Useful when a caller has a design's measured statistics but did not
        run the :class:`repro.baselines.no_cache.NoDramCache` model on the
        same trace; every access is charged the configured off-chip latency.
        """
        latency = (average_offchip_latency
                   if average_offchip_latency is not None
                   else self.config.offchip_latency_cycles)
        stats = DramCacheStats(name="no_cache_analytic")
        stats.misses = num_accesses
        stats.total_miss_latency = int(latency * num_accesses)
        stats.offchip_demand_blocks = num_accesses
        return stats
