"""Design registry: pluggable construction of DRAM cache designs.

Every design family registers a *builder* under one or more public names with
the :func:`register_design` decorator, typically at the bottom of the module
that defines the design class::

    @register_design("alloy", description="direct-mapped TAD cache")
    def _build_alloy(ctx: DesignBuildContext) -> AlloyCache:
        return AlloyCache(AlloyCacheConfig(capacity=ctx.scaled_capacity_bytes),
                          num_cores=ctx.num_cores)

The registry replaces the old hard-coded ``if/elif`` chain in
:mod:`repro.sim.factory`: ``make_design`` is now a thin lookup, and new
designs (in this repository or in downstream code) become available to every
sweep, benchmark, and the ``python -m repro`` CLI simply by registering.

Builders receive a :class:`DesignBuildContext` carrying both the *paper*
capacity (which sizes latency parameters such as the Footprint Cache SRAM tag
latency or the Unison way-predictor index) and the *scaled* capacity actually
simulated, plus any keyword defaults supplied at registration time (used by
the Unison variants to share one builder).

This module is intentionally a leaf: it imports nothing from the design
modules, so designs can import it without circularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, TYPE_CHECKING

from repro.config.cache_configs import scaled_capacity
from repro.utils.units import parse_size, SizeLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.dramcache.base import DramCacheModel


@dataclass(frozen=True)
class DesignBuildContext:
    """Everything a design builder needs to construct one design instance."""

    #: The *paper* capacity in bytes (sizes capacity-dependent latencies).
    paper_capacity_bytes: int
    #: The scaled-down capacity in bytes actually simulated.
    scaled_capacity_bytes: int
    #: Capacity scale-down factor (``paper / scale``, row-rounded).
    scale: int
    #: Core count (sizes per-core structures such as Alloy's miss predictor).
    num_cores: int
    #: Optional associativity override; ``None`` means the variant's default.
    associativity: Optional[int] = None


#: A builder constructs one design instance from a build context.  Extra
#: keyword arguments are the defaults captured at registration time.
DesignBuilder = Callable[..., "DramCacheModel"]


@dataclass(frozen=True)
class DesignEntry:
    """One registered design variant."""

    name: str
    builder: DesignBuilder
    description: str = ""
    #: Whether the design accepts an ``associativity`` override.
    supports_associativity: bool = False
    #: Keyword defaults forwarded to the builder (variant parameters).
    params: Mapping[str, Any] = field(default_factory=dict)
    #: The declarative :class:`repro.dramcache.spec.DesignSpec` this entry
    #: was registered from, if any (``None`` for plain builder functions).
    #: Spec entries expose their component breakdown to ``repro designs``
    #: and a stable identity token to the checkpoint store.
    spec: Optional[Any] = None

    def build(self, context: DesignBuildContext) -> "DramCacheModel":
        return self.builder(context, **dict(self.params))

    def token(self) -> str:
        """Stable identity of this entry's construction *recipe*.

        Used (together with capacity/scale/cores) to key on-disk warm-state
        checkpoints: changing a spec component or parameter -- or swapping
        in a differently-named builder -- changes the token.  It cannot see
        *implementation* edits inside an unchanged recipe (a bug fix in a
        component, a builder body edit); those must bump
        :data:`repro.dramcache.base.MODEL_BEHAVIOR_VERSION`, which the
        checkpoint store keys on alongside this token.
        """
        if self.spec is not None:
            return self.spec.token()
        builder = self.builder
        params = ",".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return (f"builder:{getattr(builder, '__module__', '?')}."
                f"{getattr(builder, '__qualname__', repr(builder))}({params})")


class DesignRegistry:
    """Name -> :class:`DesignEntry` mapping with construction helpers."""

    def __init__(self) -> None:
        self._entries: Dict[str, DesignEntry] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, builder: DesignBuilder, *,
                 description: str = "",
                 supports_associativity: bool = False,
                 replace: bool = False,
                 **params: Any) -> DesignEntry:
        """Register ``builder`` under ``name`` (case-insensitive lookup)."""
        key = name.lower()
        if not replace and key in self._entries:
            raise ValueError(f"design {name!r} is already registered")
        entry = DesignEntry(
            name=key,
            builder=builder,
            description=description,
            supports_associativity=supports_associativity,
            params=dict(params),
        )
        self._entries[key] = entry
        return entry

    def register_spec(self, spec: Any, *, replace: bool = False) -> DesignEntry:
        """Register a declarative design spec under its own name.

        ``spec`` is duck-typed (a :class:`repro.dramcache.spec.DesignSpec`;
        this module stays a leaf and never imports it): it must carry
        ``name``, ``description``, ``supports_associativity``, a
        ``build(context)`` method, and a ``token()`` identity.  Spec entries
        and builder entries are resolved and built uniformly.
        """
        key = spec.name.lower()
        if not replace and key in self._entries:
            raise ValueError(f"design {spec.name!r} is already registered")
        entry = DesignEntry(
            name=key,
            builder=spec.build,
            description=spec.description,
            supports_associativity=spec.supports_associativity,
            params={},
            spec=spec,
        )
        self._entries[key] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def resolve(self, name: str) -> DesignEntry:
        """Return the entry for ``name`` or raise a helpful ``ValueError``."""
        entry = self._entries.get(name.lower())
        if entry is None:
            raise ValueError(
                f"unknown design {name!r}; options: {self.names()}"
            )
        return entry

    def names(self) -> "tuple[str, ...]":
        """All registered names, in registration order."""
        return tuple(self._entries)

    def describe(self) -> "list[tuple[str, str]]":
        """(name, description) pairs for listings (CLI ``--list-designs``)."""
        return [(e.name, e.description) for e in self._entries.values()]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self, name: str, capacity: SizeLike, scale: int = 1,
              num_cores: int = 16,
              associativity: Optional[int] = None) -> "DramCacheModel":
        """Construct design ``name`` at a (possibly scaled-down) capacity."""
        entry = self.resolve(name)
        if associativity is not None and not entry.supports_associativity:
            raise ValueError(
                f"design {name!r} does not take an associativity override "
                f"(its geometry is fixed); only designs with "
                f"supports_associativity=True accept one"
            )
        paper_capacity = parse_size(capacity)
        context = DesignBuildContext(
            paper_capacity_bytes=paper_capacity,
            scaled_capacity_bytes=scaled_capacity(paper_capacity, scale),
            scale=scale,
            num_cores=num_cores,
            associativity=associativity,
        )
        return entry.build(context)


#: The process-wide default registry used by ``make_design`` and the sweeps.
DESIGNS = DesignRegistry()


def register_design(name: str, *, description: str = "",
                    supports_associativity: bool = False,
                    registry: Optional[DesignRegistry] = None,
                    **params: Any) -> Callable[[DesignBuilder], DesignBuilder]:
    """Decorator registering a builder in ``registry`` (default: global).

    Stackable: apply it several times to one builder to register multiple
    variants with different keyword defaults (see the Unison variants).
    """

    def decorator(builder: DesignBuilder) -> DesignBuilder:
        (registry if registry is not None else DESIGNS).register(
            name, builder,
            description=description,
            supports_associativity=supports_associativity,
            **params,
        )
        return builder

    return decorator


__all__ = [
    "DesignBuildContext",
    "DesignBuilder",
    "DesignEntry",
    "DesignRegistry",
    "DESIGNS",
    "register_design",
]
