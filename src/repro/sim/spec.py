"""Declarative experiment descriptions.

An :class:`ExperimentSpec` names one trial -- one (design, workload, capacity)
cell plus the run configuration -- and a :class:`SweepSpec` names a whole
grid: ``designs x workloads x capacities x overrides``.  Both validate at
construction time (unknown designs, unknown workloads, unparsable capacities,
and illegal overrides all fail *before* any simulation runs), so a multi-hour
sweep can never die on a typo in its last cell.

Specs are plain frozen dataclasses: picklable (the parallel executor ships
them to worker processes), hashable-free-of-surprises, and independent of any
runner state.  Execution lives in :mod:`repro.sim.executor`.

Example::

    from repro import SweepSpec, ExperimentConfig, run_sweep

    spec = SweepSpec(
        designs=("unison", "alloy"),
        workloads=("Web Search", "Data Serving"),
        capacities=("512MB", "1GB"),
        config=ExperimentConfig(scale=1024, num_accesses=30_000),
    )
    results = run_sweep(spec, workers=4)
    print(results.table())
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.config.system import SystemConfig
from repro.sampling.windows import SamplingConfig
from repro.sim.experiment import ExperimentConfig, Workload
from repro.sim.registry import DESIGNS
from repro.sim.factory import unison_design_for_ways  # also ensures registration
from repro.utils.units import format_size, parse_size, SizeLike
from repro.workloads.cloudsuite import workload_by_name
from repro.workloads.profile import WorkloadProfile
from repro.workloads.tracefile import TraceFileWorkload

#: A workload may be a profile, a trace-file workload, a paper name
#: ("Web Search"), or a trace-file reference ("trace:/path/to/file.rptr" --
#: a bare path to an existing trace file also works).
WorkloadLike = Union[WorkloadProfile, TraceFileWorkload, str]

#: Override keys that do not map onto :class:`ExperimentConfig` fields.
_TRIAL_OVERRIDE_KEYS = ("associativity", "label", "sampling")


def _coerce_sampling(sampling) -> Optional[SamplingConfig]:
    """Accept a :class:`SamplingConfig`, a kwargs mapping, or ``None``."""
    if sampling is None or isinstance(sampling, SamplingConfig):
        return sampling
    if isinstance(sampling, Mapping):
        return SamplingConfig(**sampling)
    raise ValueError(
        f"sampling must be a SamplingConfig, a mapping of its fields, or "
        f"None; got {sampling!r}"
    )


def _coerce_workload(workload: WorkloadLike) -> Workload:
    if isinstance(workload, (WorkloadProfile, TraceFileWorkload)):
        return workload
    if workload.startswith("trace:"):
        return TraceFileWorkload(path=workload[len("trace:"):])
    try:
        return workload_by_name(workload)
    except KeyError as exc:
        # Not a known workload name: accept a bare path to an existing
        # trace file, otherwise report the name error.
        if Path(workload).is_file():
            return TraceFileWorkload(path=workload)
        raise ValueError(exc.args[0]) from None


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-specified trial, validated at construction."""

    design: str
    workload: Workload
    #: Paper capacity, normalized to its canonical string form ("1GB").
    capacity: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    #: Optional associativity override (Unison variants only).
    associativity: Optional[int] = None
    #: Name recorded in the result; defaults to ``design``.
    label: Optional[str] = None
    #: Optional architectural configuration; ``None`` means the paper's.
    system: Optional[SystemConfig] = None
    #: ``None`` = full replay; a :class:`SamplingConfig` switches the trial
    #: to checkpointed windowed sampling (see :mod:`repro.sampling`).
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        entry = DESIGNS.resolve(self.design)  # raises for unknown designs
        object.__setattr__(self, "design", entry.name)
        object.__setattr__(self, "workload", _coerce_workload(self.workload))
        object.__setattr__(
            self, "capacity", format_size(parse_size(self.capacity))
        )
        object.__setattr__(self, "sampling", _coerce_sampling(self.sampling))
        if self.associativity is not None:
            if not entry.supports_associativity:
                raise ValueError(
                    f"design {self.design!r} does not take an associativity "
                    f"override"
                )
            if self.associativity <= 0:
                raise ValueError("associativity must be positive")

    @property
    def result_label(self) -> str:
        """The design name this trial reports under."""
        return self.label or self.design

    def identity(self) -> str:
        """The canonical identity string of everything this trial computes.

        Combines the design's registry token (its full component recipe),
        the trace identity (profile fields + generator version for synthetic
        workloads, path/size/mtime for files), every build and run parameter,
        and the model behavior version.  Two trials with equal identities are
        guaranteed to produce bit-identical results, so the work queue uses
        a hash of this string as the idempotency key of the trial's jobs --
        and any change to a design, a workload, the generator, or the model
        implementation yields new keys instead of reusing stale results.
        """
        from repro.dramcache.base import MODEL_BEHAVIOR_VERSION
        from repro.sampling.checkpoints import trace_token

        system = "default" if self.system is None else repr(self.system)
        return "|".join([
            f"model=v{MODEL_BEHAVIOR_VERSION}",
            f"design={DESIGNS.resolve(self.design).token()}",
            f"trace={trace_token(self.workload, self.config)}",
            f"capacity={self.capacity}",
            f"config={self.config!r}",
            f"associativity={self.associativity}",
            f"label={self.label}",
            f"system={system}",
            f"sampling={self.sampling!r}",
        ])

    def describe(self) -> str:
        """Compact one-line description for logs and progress output."""
        mode = "" if self.sampling is None else (
            f", sampled <= {self.sampling.max_windows} windows"
        )
        return (f"{self.result_label} / {self.workload.name} @ {self.capacity} "
                f"(scale 1/{self.config.scale}, seed {self.config.seed}{mode})")


_CONFIG_FIELDS = tuple(f.name for f in fields(ExperimentConfig))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid: designs x workloads x capacities x overrides.

    ``overrides`` is an extra grid axis of keyword dictionaries.  Each
    dictionary may set per-trial knobs (``associativity``, ``label``) and/or
    any :class:`ExperimentConfig` field (``seed``, ``scale``,
    ``num_accesses``, ...); one empty dictionary -- the default -- means the
    plain grid.  The full trial list is materialized and validated when the
    spec is constructed.
    """

    designs: Sequence[str]
    workloads: Sequence[WorkloadLike]
    capacities: Sequence[SizeLike]
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    overrides: Sequence[Mapping[str, object]] = (
        # one no-op override == the plain designs x workloads x capacities grid
        {},
    )
    system: Optional[SystemConfig] = None
    #: Default measurement mode of every trial: ``None`` = full replay, a
    #: :class:`SamplingConfig` = windowed sampling.  Individual overrides may
    #: set their own ``sampling`` (including ``None`` to force full replay),
    #: so one grid can compare sampled against full cells directly.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sampling", _coerce_sampling(self.sampling))
        for axis in ("designs", "workloads", "capacities", "overrides"):
            if not tuple(getattr(self, axis)):
                raise ValueError(f"SweepSpec.{axis} must not be empty")
        # Normalize design names through the registry (also validates them
        # eagerly, and keeps ``spec.designs`` usable as ResultSet filter keys
        # regardless of the caller's capitalization).
        object.__setattr__(
            self, "designs",
            tuple(DESIGNS.resolve(d).name for d in self.designs),
        )
        object.__setattr__(
            self, "workloads",
            tuple(_coerce_workload(w) for w in self.workloads),
        )
        object.__setattr__(
            self, "capacities",
            tuple(format_size(parse_size(c)) for c in self.capacities),
        )
        object.__setattr__(
            self, "overrides", tuple(dict(o) for o in self.overrides)
        )
        for override in self.overrides:
            unknown = [k for k in override
                       if k not in _TRIAL_OVERRIDE_KEYS
                       and k not in _CONFIG_FIELDS]
            if unknown:
                raise ValueError(
                    f"unknown override keys {unknown}; allowed: "
                    f"{list(_TRIAL_OVERRIDE_KEYS) + list(_CONFIG_FIELDS)}"
                )
        # Materialize eagerly: every cell is validated here, at construction.
        object.__setattr__(self, "_trials", self._build_trials())

    # ------------------------------------------------------------------ #
    def _build_trials(self) -> Tuple[ExperimentSpec, ...]:
        trials = []
        for design in self.designs:
            for workload in self.workloads:
                for capacity in self.capacities:
                    for override in self.overrides:
                        trials.append(self._trial(design, workload, capacity,
                                                  override))
        return tuple(trials)

    def _trial(self, design: str, workload: Workload, capacity: str,
               override: Mapping[str, object]) -> ExperimentSpec:
        config_kwargs = {k: v for k, v in override.items()
                         if k in _CONFIG_FIELDS}
        config = (replace(self.config, **config_kwargs) if config_kwargs
                  else self.config)
        sampling = _coerce_sampling(override.get("sampling", self.sampling))
        associativity = override.get("associativity")
        label = override.get("label")
        if label is None and associativity is not None:
            if design == "unison":
                # Canonical Figure 5 names (unison-dm/unison/unison-32way)
                # so overridden and plain grids report consistently.
                label = unison_design_for_ways(associativity)[1]
            else:
                label = f"{design}-{associativity}way"
        return ExperimentSpec(
            design=design,
            workload=workload,
            capacity=capacity,
            config=config,
            associativity=associativity,
            label=label,
            system=self.system,
            sampling=sampling,
        )

    # ------------------------------------------------------------------ #
    def trials(self) -> Tuple[ExperimentSpec, ...]:
        """All cells of the grid, in deterministic nested order."""
        return self._trials

    def __len__(self) -> int:
        return len(self._trials)

    def describe(self) -> str:
        """Human-readable summary of the grid shape."""
        return (
            f"{len(self.designs)} designs x {len(self.workloads)} workloads "
            f"x {len(self.capacities)} capacities x "
            f"{len(self.overrides)} overrides = {len(self)} trials "
            f"(scale 1/{self.config.scale}, "
            f"{self.config.num_accesses} accesses each)"
        )


__all__ = ["ExperimentSpec", "SweepSpec", "Workload", "WorkloadLike"]
