"""Experiment runner.

The runner reproduces the paper's methodology at laptop scale:

1. build a DRAM cache design for a given *paper* capacity, structurally
   identical to the paper's configuration but with the number of sets scaled
   down by ``scale`` (the synthetic workload's working set is scaled by the
   same factor, so capacity-to-working-set ratios -- and therefore hit-ratio
   trends -- are preserved);
2. replay a warm-up portion of the workload (the paper uses two thirds of
   each trace for warm-up), reset statistics, and measure the remainder;
3. report a uniform :class:`ExperimentResult` containing the miss ratio,
   latencies, predictor accuracies, off-chip traffic, row activations, and
   the speedup over a no-DRAM-cache system computed by the analytic
   performance model.

This is the single-trial layer.  Grids of trials are declared with
:class:`repro.sim.spec.SweepSpec` and executed -- serially or across worker
processes, with trace/baseline reuse -- by :mod:`repro.sim.executor`; the
benchmarks and examples build on those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.baselines.no_cache import NoDramCache
from repro.config.system import SystemConfig
from repro.obs.core import current as obs_current
from repro.dramcache.base import DramCacheModel
from repro.dramcache.stats import DramCacheStats
from repro.sim.factory import make_design, unison_design_for_ways
from repro.sim.performance import PerformanceModel
from repro.trace.pipeline import FileSource
from repro.trace.record import MemoryAccess
from repro.utils.units import format_size, parse_size, SizeLike
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profile import WorkloadProfile
from repro.workloads.tracefile import TraceFileWorkload

#: Anything an experiment can replay: a synthetic profile or a trace file.
Workload = Union[WorkloadProfile, TraceFileWorkload]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run."""

    #: Capacity scale-down factor (structure and working set shrink together).
    scale: int = 128
    #: Total accesses replayed (warm-up plus measurement).
    num_accesses: int = 240_000
    #: Fraction of the trace used for warm-up (the paper uses two thirds).
    warmup_fraction: float = 2.0 / 3.0
    #: Number of interleaved cores in the synthetic trace.
    num_cores: int = 16
    #: Workload generator seed.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")


@dataclass
class ExperimentResult:
    """Uniform record of one (design, workload, capacity) measurement."""

    design: str
    workload: str
    capacity: str
    scale: int
    accesses_measured: int

    miss_ratio: float
    hit_ratio: float
    average_hit_latency: float
    average_miss_latency: float
    average_access_latency: float

    offchip_blocks_per_access: float
    offchip_demand_blocks: int
    offchip_prefetch_blocks: int
    offchip_writeback_blocks: int
    offchip_row_activations: int
    stacked_row_activations: int

    footprint_accuracy: Optional[float] = None
    footprint_overfetch: Optional[float] = None
    way_prediction_accuracy: Optional[float] = None
    miss_prediction_accuracy: Optional[float] = None
    miss_predictor_overfetch: Optional[float] = None

    speedup_vs_no_cache: Optional[float] = None
    user_ipc: Optional[float] = None

    extra: Dict[str, float] = field(default_factory=dict)

    #: Optional-metric fields that designs populate through
    #: :meth:`repro.dramcache.base.DramCacheModel.extra_metrics`.
    METRIC_FIELDS = (
        "footprint_accuracy",
        "footprint_overfetch",
        "way_prediction_accuracy",
        "miss_prediction_accuracy",
        "miss_predictor_overfetch",
    )

    @property
    def miss_ratio_percent(self) -> float:
        """Miss ratio in percent, as plotted in Figures 5 and 6."""
        return 100.0 * self.miss_ratio


class ExperimentRunner:
    """Builds designs, replays workloads, and produces :class:`ExperimentResult`."""

    def __init__(self, config: Optional[ExperimentConfig] = None,
                 system: Optional[SystemConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self.system = system or SystemConfig()
        self.performance = PerformanceModel(self.system)

    # ------------------------------------------------------------------ #
    # Trace construction
    # ------------------------------------------------------------------ #
    def scaled_profile(self, profile: WorkloadProfile) -> WorkloadProfile:
        """The profile with its working set scaled down by ``config.scale``."""
        return profile.scaled(
            max(profile.region_size * 64,
                profile.working_set_bytes // self.config.scale)
        )

    def iter_trace_chunks(self, profile: WorkloadProfile,
                          ) -> Iterator[List[MemoryAccess]]:
        """Generate the scaled workload trace as a stream of chunks.

        This is the streaming core of :meth:`build_trace`: the trace store
        writes these chunks to disk as they are produced, so a trace never
        has to be fully materialized just to be persisted.
        """
        workload = SyntheticWorkload(
            self.scaled_profile(profile),
            num_cores=self.config.num_cores,
            seed=self.config.seed,
        )
        return workload.iter_chunks(self.config.num_accesses)

    def build_trace(self, profile: Workload) -> List[MemoryAccess]:
        """Materialize the workload trace for this experiment.

        Synthetic profiles are generated at the scaled working set; trace
        file workloads are streamed from disk, truncated to
        ``config.num_accesses``.
        """
        if isinstance(profile, TraceFileWorkload):
            source = FileSource(profile.path, fmt=profile.format or None)
            return source.limit(self.config.num_accesses).materialize()
        trace: List[MemoryAccess] = []
        for chunk in self.iter_trace_chunks(profile):
            trace.extend(chunk)
        return trace

    def split_trace(self, trace: Sequence[MemoryAccess]) -> "tuple[Sequence[MemoryAccess], Sequence[MemoryAccess]]":
        """Split a trace into its (warm-up, measurement) portions."""
        split = int(len(trace) * self.config.warmup_fraction)
        return trace[:split], trace[split:]

    # Backwards-compatible alias (pre-sweep-API name).
    _split = split_trace

    # ------------------------------------------------------------------ #
    # Running designs
    # ------------------------------------------------------------------ #
    def run_design(self, design_name: str, profile: Workload,
                   capacity: SizeLike,
                   trace: Optional[Sequence[MemoryAccess]] = None,
                   associativity: Optional[int] = None,
                   label: Optional[str] = None,
                   baseline_stats: Optional[DramCacheStats] = None,
                   ) -> ExperimentResult:
        """Run one design over one workload at one (paper) capacity.

        ``label`` overrides the design name recorded in the result (used when
        a variant is built from a base entry with overrides, e.g.
        ``unison-8way``).  ``baseline_stats`` injects a pre-computed no-cache
        baseline over the same measurement window, letting sweep executors
        replay the baseline once per trace instead of once per cell.
        """
        obs_run = obs_current()
        if trace is None:
            with obs_run.span("trace_load"):
                trace = self.build_trace(profile)
        warmup, measure = self.split_trace(trace)

        design = make_design(
            design_name, capacity, scale=self.config.scale,
            num_cores=self.config.num_cores, associativity=associativity,
        )
        with obs_run.span("warmup") as warm_span:
            engine = design.warm_up_array(warmup)
            warm_span.add("engine_" + engine, 1)
            if engine == "batch":
                warm_span.add("batch_accesses", len(warmup))
        activations_before = (design.memory.row_activations,
                              design.stacked.row_activations)
        with obs_run.span("measure"):
            design.run(measure)
        obs_run.counter("accesses", len(measure))
        obs_run.counter("warmup_accesses", len(warmup))

        if baseline_stats is None:
            with obs_run.span("baseline"):
                baseline_stats = self.no_cache_baseline(measure)
        speedup = self.performance.speedup(
            design.cache_stats, baseline_stats, profile
        )
        estimate = self.performance.estimate(design.cache_stats, profile)

        return self._result_from(
            design, label or design_name, profile, capacity, len(measure),
            activations_before, speedup, estimate.user_ipc,
        )

    def no_cache_baseline(self, measure: Iterable[MemoryAccess]) -> DramCacheStats:
        """Replay ``measure`` through a no-DRAM-cache system (speedup baseline)."""
        baseline = NoDramCache()
        baseline.run(measure)
        return baseline.cache_stats

    def _result_from(self, design: DramCacheModel, design_name: str,
                     profile: WorkloadProfile, capacity: SizeLike,
                     measured: int,
                     activations_before: "tuple[int, int]",
                     speedup: Optional[float],
                     user_ipc: Optional[float]) -> ExperimentResult:
        stats = design.cache_stats
        offchip_act = design.memory.row_activations - activations_before[0]
        stacked_act = design.stacked.row_activations - activations_before[1]

        result = ExperimentResult(
            design=design_name,
            workload=profile.name,
            capacity=format_size(parse_size(capacity)),
            scale=self.config.scale,
            accesses_measured=measured,
            miss_ratio=stats.miss_ratio,
            hit_ratio=stats.hit_ratio,
            average_hit_latency=stats.average_hit_latency,
            average_miss_latency=stats.average_miss_latency,
            average_access_latency=stats.average_access_latency,
            offchip_blocks_per_access=stats.offchip_blocks_per_access,
            offchip_demand_blocks=stats.offchip_demand_blocks,
            offchip_prefetch_blocks=stats.offchip_prefetch_blocks,
            offchip_writeback_blocks=stats.offchip_writeback_blocks,
            offchip_row_activations=offchip_act,
            stacked_row_activations=stacked_act,
            speedup_vs_no_cache=speedup,
            user_ipc=user_ipc,
        )

        for key, value in design.extra_metrics().items():
            if key in ExperimentResult.METRIC_FIELDS:
                setattr(result, key, value)
            else:
                result.extra[key] = float(value)
        return result

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def compare_designs(self, design_names: Sequence[str],
                        profile: WorkloadProfile, capacity: SizeLike,
                        ) -> Dict[str, ExperimentResult]:
        """Run several designs over the *same* trace (fair comparison)."""
        trace = self.build_trace(profile)
        return {
            name: self.run_design(name, profile, capacity, trace=trace)
            for name in design_names
        }

    def sweep_capacities(self, design_name: str, profile: WorkloadProfile,
                         capacities: Sequence[SizeLike],
                         ) -> List[ExperimentResult]:
        """Run one design across a range of capacities (one trace per capacity)."""
        return [
            self.run_design(design_name, profile, capacity)
            for capacity in capacities
        ]

    def associativity_sweep(self, profile: WorkloadProfile, capacity: SizeLike,
                            associativities: Sequence[int] = (1, 4, 32),
                            ) -> Dict[int, ExperimentResult]:
        """Unison Cache miss ratio versus associativity (Figure 5)."""
        trace = self.build_trace(profile)
        results: Dict[int, ExperimentResult] = {}
        for ways in associativities:
            name, label = unison_design_for_ways(ways)
            results[ways] = self.run_design(
                name, profile, capacity, trace=trace, associativity=ways,
                label=label,
            )
        return results
